"""Concurrent MVCC-consistency test for cold-segment (PQ) search.

Run under the runtime sanitizer to also check lock discipline::

    REPRO_SANITIZE=1 PYTHONPATH=src python -m pytest tests/test_tier_concurrent.py

Protocol: reader threads search a tiered store — some segments hot, some
cold — under pinned snapshots while a writer thread commits embedding
updates and a vacuum thread runs merge rounds (each of which triggers a
tier rebalance, so demotions and promotions happen *while* reads are in
flight).  Every reader verifies snapshot isolation locally: a search
pinned at TID ``t`` must return exactly the brute-force answer over the
vectors visible at ``t``, whatever tier transitions publish around it.
The rerank inflation covers every row at this scale, so cold answers are
exact and the check is equality, not recall.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Attribute, AttrType, Metric, TigerVectorDB
from repro.core.search import vector_search_merged
from repro.index.pq import PQSearchConfig

ROUNDS = 3
READERS = 3
SEARCHES_PER_READER = 10
N = 160
DIM = 8
SEG = 32
K = 5


@pytest.fixture
def tiered_db():
    rng = np.random.default_rng(23)
    db = TigerVectorDB(segment_size=SEG)
    db.schema.create_vertex_type(
        "Item", [Attribute("id", AttrType.INT, primary_key=True)]
    )
    db.schema.add_embedding_attribute(
        "Item", "emb", dimension=DIM, model="demo", metric=Metric.L2
    )
    vectors = rng.standard_normal((N, DIM)).astype(np.float32)
    db.bulk_load_vertices("Item", [{"id": i} for i in range(N)])
    db.bulk_load_embeddings("Item", "emb", list(range(N)), vectors)
    db.vacuum()
    # Budget for two of five segments; generous rerank keeps cold exact.
    db.enable_tiering(
        budget_bytes=2 * SEG * DIM * 4,
        pq=PQSearchConfig(m=4, seed=29, rerank_factor=8),
    )
    db.vacuum()
    db._truth = {db.vid_for("Item", i): vectors[i].copy() for i in range(N)}
    db._truth_lock = threading.Lock()
    yield db
    db.close()


def brute_topk(visible: dict, query: np.ndarray, k: int) -> list:
    scored = sorted(
        (float(((vec - query) ** 2).sum()), vid) for vid, vec in visible.items()
    )
    return [vid for _, vid in scored[:k]]


def test_cold_search_is_snapshot_consistent_under_vacuum_and_commit(tiered_db, rng):
    db = tiered_db
    errors: list[str] = []
    stop = threading.Event()
    queries = rng.standard_normal((READERS, SEARCHES_PER_READER, DIM)).astype(
        np.float32
    )

    def reader(worker: int) -> None:
        try:
            for round_no in range(ROUNDS):
                for qi in range(SEARCHES_PER_READER):
                    query = queries[worker, qi]
                    # Capture the truth table *before* pinning: every commit
                    # updates vectors first, then publishes, so the pinned
                    # snapshot sees a (possibly newer) prefix of _truth —
                    # but our probe vectors are never the updated ids, and
                    # updates move ids *away* from all probes (see writer),
                    # so expected top-k is stable across the window.
                    with db._truth_lock:
                        visible = dict(db._truth)
                    with db.snapshot() as snap:
                        got = [
                            vid
                            for _, _, vid in vector_search_merged(
                                db.service, snap, ["Item.emb"], query, K
                            )
                        ]
                    want = brute_topk(visible, query, K)
                    if got != want:
                        errors.append(
                            f"reader {worker} round {round_no}: {got} != {want}"
                        )
                        return
        except Exception as exc:  # noqa: BLE001 - surfaced via errors list
            errors.append(f"reader {worker}: {type(exc).__name__}: {exc}")

    def writer() -> None:
        # Push updated ids far away from every probe query (standard
        # normals stay within a few units; 60+ is unreachable), so updates
        # never change any reader's expected top-k mid-window.
        try:
            far = 60.0
            for step in range(12):
                vid = db.vid_for("Item", step % 7)
                vec = np.full(DIM, far + step, dtype=np.float32)
                with db._truth_lock:
                    db._truth[vid] = vec
                with db.begin() as txn:
                    txn.set_embedding("Item", step % 7, "emb", vec)
                if stop.is_set():
                    return
        except Exception as exc:  # noqa: BLE001 - surfaced via errors list
            errors.append(f"writer: {type(exc).__name__}: {exc}")

    def vacuumer() -> None:
        try:
            for _ in range(ROUNDS):
                db.vacuum(num_threads=1)  # merge + tier rebalance
                if stop.is_set():
                    return
        except Exception as exc:  # noqa: BLE001 - surfaced via errors list
            errors.append(f"vacuum: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(READERS)]
    threads.append(threading.Thread(target=writer))
    threads.append(threading.Thread(target=vacuumer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stop.set()
    assert not errors, errors[:3]

    # The workload actually exercised the cold path: after the final
    # rebalance the budget (2 of 5 segments) must have left cold segments,
    # and the quiesced state still answers exactly.
    db.vacuum()
    tiers = [
        s.current_snapshot().tier
        for s in db.service.store("Item", "emb").segments()
    ]
    assert tiers.count("cold") >= 3
    with db._truth_lock:
        visible = dict(db._truth)
    query = queries[0, 0]
    with db.snapshot() as snap:
        got = [
            vid
            for _, _, vid in vector_search_merged(
                db.service, snap, ["Item.emb"], query, K
            )
        ]
    assert got == brute_topk(visible, query, K)


def test_demotion_never_races_a_pinned_reader_to_error(tiered_db, rng):
    """Hammer demote/promote twins directly against pinned readers.

    Unlike the vacuum path (which rebalances between merges), this drives
    tier transitions as fast as possible while readers hold pinned
    snapshots, looking for torn states (half-published twins) that would
    surface as exceptions or wrong members.
    """
    from repro.tier import demote_segment, promote_segment

    db = tiered_db
    store = db.service.store("Item", "emb")
    errors: list[str] = []
    done = threading.Event()
    with db._truth_lock:
        visible = dict(db._truth)
    query = rng.standard_normal(DIM).astype(np.float32)
    want = brute_topk(visible, query, K)

    def flipper() -> None:
        try:
            for _ in range(20):
                for segment in store.segments():
                    if segment.current_snapshot().tier == "hot":
                        demote_segment(store, segment, db.tier_manager.pq)
                    else:
                        promote_segment(store, segment)
        except Exception as exc:  # noqa: BLE001 - surfaced via errors list
            errors.append(f"flipper: {type(exc).__name__}: {exc}")
        finally:
            done.set()

    def reader() -> None:
        try:
            while not done.is_set():
                with db.snapshot() as snap:
                    got = [
                        vid
                        for _, _, vid in vector_search_merged(
                            db.service, snap, ["Item.emb"], query, K
                        )
                    ]
                if got != want:
                    errors.append(f"reader: {got} != {want}")
                    return
        except Exception as exc:  # noqa: BLE001 - surfaced via errors list
            errors.append(f"reader: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    threads.append(threading.Thread(target=flipper))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[:3]
