"""Tests for graph pattern matching (frontier and binding modes)."""

import pytest

from repro import Attribute, AttrType, GraphSchema, VertexSet
from repro.errors import GSQLSemanticError
from repro.graph.pattern import (
    EdgeHop,
    NodePattern,
    PathPattern,
    match_bindings,
    match_frontier,
)
from repro.graph.storage import GraphStore


@pytest.fixture
def store():
    schema = GraphSchema()
    schema.create_vertex_type(
        "Person",
        [Attribute("id", AttrType.INT, primary_key=True), Attribute("name", AttrType.STRING)],
    )
    schema.create_vertex_type(
        "Post",
        [Attribute("id", AttrType.INT, primary_key=True), Attribute("lang", AttrType.STRING)],
    )
    schema.create_edge_type("knows", "Person", "Person", directed=False)
    schema.create_edge_type("hasCreator", "Post", "Person")
    store = GraphStore(schema, segment_size=8)
    with store.begin() as txn:
        for i in range(6):
            txn.upsert_vertex("Person", i, {"name": f"p{i}"})
        # chain: 0-1-2-3-4-5
        for i in range(5):
            txn.add_edge("knows", i, i + 1)
        for i in range(12):
            txn.upsert_vertex("Post", i, {"lang": "en" if i % 2 else "fr"})
            txn.add_edge("hasCreator", i, i % 6)
    return store


def vids(store, vertex_type, pks):
    return {(vertex_type, store.vid_for_pk(vertex_type, pk)) for pk in pks}


class TestFrontier:
    def test_single_node_scan(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern([NodePattern("s", "Person")])
            out = match_frontier(snap, store.schema, pattern)
            assert out["s"].members() == vids(store, "Person", range(6))

    def test_one_hop(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern(
                [NodePattern("s", "Person"), NodePattern("t", "Person")],
                [EdgeHop("knows")],
            )
            filters = {"s": lambda vid, row: row["name"] == "p0"}
            out = match_frontier(snap, store.schema, pattern, node_filters=filters)
            assert out["t"].members() == vids(store, "Person", [1])

    def test_repeat_hops(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern(
                [NodePattern("s", "Person"), NodePattern("t", "Person")],
                [EdgeHop("knows", repeat=2)],
            )
            filters = {"s": lambda vid, row: row["name"] == "p0"}
            out = match_frontier(snap, store.schema, pattern, node_filters=filters)
            # 2 hops from p0 on an undirected chain: {0, 2}
            assert out["t"].members() == vids(store, "Person", [0, 2])

    def test_reverse_direction(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern(
                [NodePattern("p", "Person"), NodePattern("m", "Post")],
                [EdgeHop("hasCreator", direction="in")],
            )
            filters = {"p": lambda vid, row: row["name"] == "p2"}
            out = match_frontier(snap, store.schema, pattern, node_filters=filters)
            assert out["m"].members() == vids(store, "Post", [2, 8])

    def test_target_filter(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern(
                [NodePattern("p", "Person"), NodePattern("m", "Post")],
                [EdgeHop("hasCreator", direction="in")],
            )
            filters = {
                "p": lambda vid, row: row["name"] == "p1",
                "m": lambda vid, row: row["lang"] == "en",
            }
            out = match_frontier(snap, store.schema, pattern, node_filters=filters)
            assert out["m"].members() == vids(store, "Post", [1, 7])

    def test_vertex_set_label(self, store):
        with store.snapshot() as snap:
            seed = VertexSet(vids(store, "Person", [0, 3]), name="Seed")
            pattern = PathPattern(
                [NodePattern("s", "Seed"), NodePattern("t", "Person")],
                [EdgeHop("knows")],
            )
            out = match_frontier(
                snap, store.schema, pattern,
                resolve_set=lambda name: seed if name == "Seed" else None,
            )
            assert out["t"].members() == vids(store, "Person", [1, 2, 4])

    def test_empty_frontier_short_circuits(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern(
                [NodePattern("s", "Person"), NodePattern("t", "Person")],
                [EdgeHop("knows")],
            )
            filters = {"s": lambda vid, row: False}
            out = match_frontier(snap, store.schema, pattern, node_filters=filters)
            assert len(out["t"]) == 0

    def test_unlabeled_intermediate_inferred(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern(
                [NodePattern("s", "Person"), NodePattern(), NodePattern("t", "Post")],
                [EdgeHop("knows"), EdgeHop("hasCreator", direction="in")],
            )
            filters = {"s": lambda vid, row: row["name"] == "p0"}
            out = match_frontier(snap, store.schema, pattern, node_filters=filters)
            # neighbor of p0 is p1; posts by p1: 1, 7
            assert out["t"].members() == vids(store, "Post", [1, 7])


class TestBindings:
    def test_enumerates_paths(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern(
                [NodePattern("p", "Person"), NodePattern("m", "Post")],
                [EdgeHop("hasCreator", direction="in")],
            )
            rows = list(match_bindings(snap, store.schema, pattern))
            assert len(rows) == 12  # every post binds once
            assert all(set(r) == {"p", "m"} for r in rows)

    def test_limit(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern(
                [NodePattern("p", "Person"), NodePattern("m", "Post")],
                [EdgeHop("hasCreator", direction="in")],
            )
            rows = list(match_bindings(snap, store.schema, pattern, limit=3))
            assert len(rows) == 3

    def test_multi_hop_bindings(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern(
                [
                    NodePattern("a", "Post"),
                    NodePattern("u", "Person"),
                    NodePattern("b", "Post"),
                ],
                [EdgeHop("hasCreator"), EdgeHop("hasCreator", direction="in")],
            )
            filters = {"u": lambda vid, row: row["name"] == "p0"}
            rows = list(match_bindings(snap, store.schema, pattern, node_filters=filters))
            # p0 authored posts 0 and 6 -> 2x2 ordered pairs
            assert len(rows) == 4

    def test_bindings_match_frontier_targets(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern(
                [NodePattern("s", "Person"), NodePattern("t", "Person")],
                [EdgeHop("knows", repeat=3)],
            )
            frontier = match_frontier(snap, store.schema, pattern)["t"].members()
            bound = {
                row["t"] for row in match_bindings(snap, store.schema, pattern)
            }
            assert bound == frontier


class TestValidation:
    def test_pattern_shape_checked(self):
        with pytest.raises(GSQLSemanticError):
            PathPattern([NodePattern("a", "X")], [EdgeHop("e")])

    def test_bad_direction(self):
        with pytest.raises(GSQLSemanticError):
            EdgeHop("e", direction="sideways")

    def test_bad_repeat(self):
        with pytest.raises(GSQLSemanticError):
            EdgeHop("e", repeat=0)

    def test_first_node_needs_type(self, store):
        with store.snapshot() as snap:
            pattern = PathPattern([NodePattern("s", None)])
            with pytest.raises(GSQLSemanticError):
                match_frontier(snap, store.schema, pattern)
