"""Tests for GSQL execution: all the query shapes from the paper's Sec. 5."""

import numpy as np
import pytest

from repro import RankedVertexSet, VertexSet
from repro.errors import GSQLSemanticError
from repro.types import batch_distances, Metric


class TestPureVectorSearch:
    def test_paper_query_51(self, loaded_post_db):
        """Sec 5.1: SELECT s FROM (s:Post) ORDER BY VECTOR_DIST ... LIMIT k."""
        db = loaded_post_db
        q = db._test_vectors[30]
        r = db.run_gsql(
            "SELECT s FROM (s:Post) "
            "ORDER BY VECTOR_DIST(s.content_emb, query_vector) LIMIT k;",
            query_vector=q.tolist(), k=5,
        )
        assert isinstance(r.result, RankedVertexSet)
        assert len(r.result) == 5
        best_member, best_dist = r.result.ranking[0]
        assert best_member == ("Post", db.vid_for("Post", 30))
        assert best_dist == pytest.approx(0.0, abs=1e-3)

    def test_plan_matches_paper(self, loaded_post_db):
        plan = loaded_post_db.gsql.explain(
            "SELECT s FROM (s:Post) "
            "ORDER BY VECTOR_DIST(s.content_emb, query_vector) LIMIT k;"
        )
        assert plan == "EmbeddingAction[Top k, {s.content_emb}, query_vector]"

    def test_matches_exact_search(self, loaded_post_db):
        db = loaded_post_db
        q = np.zeros(16, dtype=np.float32)
        r = db.run_gsql(
            "SELECT s FROM (s:Post) "
            "ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT 10;",
            qv=q.tolist(),
        )
        dists = batch_distances(q, db._test_vectors, Metric.L2)
        exact = {int(i) for i in np.argsort(dists)[:10]}
        got = {int(db.pk_for("Post", vid)) for (_, vid), _ in r.result.ranking}
        assert len(got & exact) >= 9


class TestFilteredVectorSearch:
    def test_paper_query_52(self, loaded_post_db):
        """Sec 5.2: attribute filter + top-k (pre-filter approach)."""
        db = loaded_post_db
        r = db.run_gsql(
            'SELECT s FROM (s:Post) WHERE s.language = "en" '
            "ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT 8;",
            qv=db._test_vectors[3].tolist(),
        )
        pks = [db.pk_for("Post", vid) for (_, vid), _ in r.result.ranking]
        assert len(pks) == 8
        assert all(pk % 2 == 1 for pk in pks)  # "en" posts are odd pks

    def test_plan_shows_prefilter(self, loaded_post_db):
        plan = loaded_post_db.gsql.explain(
            'SELECT s FROM (s:Post) WHERE s.language = "en" '
            "ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT 8;"
        )
        lines = plan.splitlines()
        assert lines[0].startswith("EmbeddingAction[Top 8")
        assert "VertexAction[Post:s {s.language = 'en'}]" in lines[1]

    def test_numeric_filter(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql(
            "SELECT s FROM (s:Post) WHERE s.length > 250 "
            "ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT 5;",
            qv=db._test_vectors[0].tolist(),
        )
        pks = [db.pk_for("Post", vid) for (_, vid), _ in r.result.ranking]
        assert all(pk > 150 for pk in pks)  # length = 100 + pk

    def test_empty_filter_result(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql(
            'SELECT s FROM (s:Post) WHERE s.language = "zz" '
            "ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT 5;",
            qv=db._test_vectors[0].tolist(),
        )
        assert len(r.result) == 0


class TestRangeSearch:
    def test_paper_range_query(self, loaded_post_db):
        db = loaded_post_db
        q = db._test_vectors[12]
        r = db.run_gsql(
            "SELECT s FROM (s:Post) "
            "WHERE VECTOR_DIST(s.content_emb, qv) < threshold;",
            qv=q.tolist(), threshold=8.0,
        )
        dists = dict(r.result.ranking)
        assert all(d < 8.0 for d in dists.values())
        assert ("Post", db.vid_for("Post", 12)) in r.result

    def test_range_with_attribute_filter(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql(
            'SELECT s FROM (s:Post) WHERE s.language = "fr" AND '
            "VECTOR_DIST(s.content_emb, qv) < 20.0;",
            qv=db._test_vectors[2].tolist(),
        )
        pks = [db.pk_for("Post", vid) for (_, vid), _ in r.result.ranking]
        assert all(pk % 2 == 0 for pk in pks)


class TestGraphPatternVectorSearch:
    def test_paper_query_53(self, loaded_post_db):
        """Sec 5.3: vector search constrained by a 2-hop graph pattern."""
        db = loaded_post_db
        r = db.run_gsql(
            "SELECT t FROM (s:Person) - [:knows] -> (:Person) "
            "<- [:hasCreator] - (t:Post) "
            'WHERE s.firstName = "P0" AND t.length > 120 '
            "ORDER BY VECTOR_DIST(t.content_emb, qv) LIMIT 5;",
            qv=db._test_vectors[50].tolist(),
        )
        # P0 knows P1 (undirected chain); posts by P1 have pk % 5 == 1
        pks = [db.pk_for("Post", vid) for (_, vid), _ in r.result.ranking]
        assert pks
        assert all(pk % 5 == 1 and pk > 20 for pk in pks)
        assert r.metrics["num_candidates"] > 0
        assert "vector_seconds" in r.metrics

    def test_multi_hop_expands_candidates(self, loaded_post_db):
        db = loaded_post_db
        counts = []
        for hops in (1, 2):
            r = db.run_gsql(
                f"SELECT t FROM (s:Person) - [:knows*{hops}] -> (:Person) "
                "<- [:hasCreator] - (t:Post) "
                'WHERE s.firstName = "P0" '
                "ORDER BY VECTOR_DIST(t.content_emb, qv) LIMIT 3;",
                qv=db._test_vectors[0].tolist(),
            )
            counts.append(r.metrics["num_candidates"])
        assert counts[0] <= counts[1]


class TestSimilarityJoin:
    def test_paper_query_54(self, loaded_post_db):
        """Sec 5.4: top-k closest (s, t) pairs over a graph pattern."""
        db = loaded_post_db
        r = db.run_gsql(
            "SELECT s, t FROM (s:Post) - [:hasCreator] -> (u:Person) "
            "<- [:hasCreator] - (t:Post) "
            'WHERE u.firstName = "P2" '
            "ORDER BY VECTOR_DIST(s.content_emb, t.content_emb) LIMIT 4;"
        )
        rows = r.result
        assert len(rows) == 4
        assert all(row["s"].pk % 5 == 2 and row["t"].pk % 5 == 2 for row in rows)
        dists = [row["distance"] for row in rows]
        assert dists == sorted(dists)
        assert all(row["s"] != row["t"] for row in rows)

    def test_join_is_exact(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql(
            "SELECT s, t FROM (s:Post) - [:hasCreator] -> (u:Person) "
            "<- [:hasCreator] - (t:Post) "
            'WHERE u.firstName = "P1" '
            "ORDER BY VECTOR_DIST(s.content_emb, t.content_emb) LIMIT 1;"
        )
        # brute-force the same answer
        pks = [pk for pk in range(200) if pk % 5 == 1]
        vecs = db._test_vectors
        best = min(
            (float(batch_distances(vecs[a], vecs[b].reshape(1, -1), Metric.L2)[0]), a, b)
            for a in pks for b in pks if a != b
        )
        row = r.result[0]
        assert {row["s"].pk, row["t"].pk} == {best[1], best[2]}
        assert row["distance"] == pytest.approx(best[0], rel=1e-3)


class TestGraphBlocks:
    def test_plain_block_returns_vertex_set(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql('SELECT p FROM (p:Person) WHERE p.firstName = "P3";')
        assert isinstance(r.result, VertexSet)
        assert r.result.members() == {("Person", db.vid_for("Person", 3))}

    def test_order_by_attribute_limit(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql("SELECT s FROM (s:Post) ORDER BY s.length DESC LIMIT 3;")
        pks = sorted(db.pk_for("Post", vid) for _, vid in r.result)
        assert pks == [197, 198, 199]

    def test_unknown_alias_rejected(self, loaded_post_db):
        with pytest.raises(GSQLSemanticError):
            loaded_post_db.run_gsql("SELECT zz FROM (s:Post);")

    def test_unknown_label_rejected(self, loaded_post_db):
        with pytest.raises(GSQLSemanticError):
            loaded_post_db.run_gsql("SELECT s FROM (s:Nope);")

    def test_unknown_embedding_rejected(self, loaded_post_db):
        with pytest.raises(GSQLSemanticError):
            loaded_post_db.run_gsql(
                "SELECT s FROM (s:Post) "
                "ORDER BY VECTOR_DIST(s.nope, qv) LIMIT 1;", qv=[0.0] * 16
            )
