"""Tests for multiple embedding attributes per vertex (paper Sec. 4.1).

"Each graph vertex can have one or more embedding attributes alongside
other attributes" — e.g. a text embedding and an image embedding on the
same node, managed and searched independently.
"""

import numpy as np
import pytest

from repro import Attribute, AttrType, Metric, TigerVectorDB


@pytest.fixture
def db(rng):
    db = TigerVectorDB(segment_size=32)
    db.schema.create_vertex_type(
        "Product",
        [Attribute("id", AttrType.INT, primary_key=True), Attribute("name", AttrType.STRING)],
    )
    db.schema.add_embedding_attribute(
        "Product", "text_emb", dimension=8, model="text-model", metric=Metric.L2
    )
    db.schema.add_embedding_attribute(
        "Product", "image_emb", dimension=12, model="image-model", metric=Metric.COSINE
    )
    text = rng.standard_normal((50, 8)).astype(np.float32)
    image = rng.standard_normal((50, 12)).astype(np.float32)
    with db.begin() as txn:
        for i in range(50):
            txn.upsert_vertex("Product", i, {"name": f"p{i}"})
            txn.set_embedding("Product", i, "text_emb", text[i])
            txn.set_embedding("Product", i, "image_emb", image[i])
    db.vacuum()
    db._text, db._image = text, image
    yield db
    db.close()


class TestIndependentAttributes:
    def test_separate_stores(self, db):
        text_store = db.service.store("Product", "text_emb")
        image_store = db.service.store("Product", "image_emb")
        assert text_store is not image_store
        assert text_store.embedding.dimension == 8
        assert image_store.embedding.dimension == 12

    def test_search_each_attribute(self, db):
        r = db.vector_search(["Product.text_emb"], db._text[7], k=1)
        assert next(iter(r)) == ("Product", db.vid_for("Product", 7))
        r = db.vector_search(["Product.image_emb"], db._image[9], k=1)
        assert next(iter(r)) == ("Product", db.vid_for("Product", 9))

    def test_attributes_not_mixable(self, db):
        from repro.errors import EmbeddingCompatibilityError

        with pytest.raises(EmbeddingCompatibilityError):
            db.vector_search(
                ["Product.text_emb", "Product.image_emb"], db._text[0], k=1
            )

    def test_update_one_leaves_other(self, db):
        with db.begin() as txn:
            txn.set_embedding("Product", 3, "text_emb", np.zeros(8, np.float32))
        text_store = db.service.store("Product", "text_emb")
        image_store = db.service.store("Product", "image_emb")
        vid = db.vid_for("Product", 3)
        assert np.allclose(text_store.get_embedding(vid), 0.0)
        assert np.allclose(image_store.get_embedding(vid), db._image[3])

    def test_vertex_delete_cascades_both(self, db):
        vid = db.vid_for("Product", 5)
        with db.begin() as txn:
            txn.delete_vertex("Product", 5)
        assert db.service.store("Product", "text_emb").get_embedding(vid) is None
        assert db.service.store("Product", "image_emb").get_embedding(vid) is None

    def test_gsql_on_each(self, db):
        r = db.run_gsql(
            "SELECT s FROM (s:Product) "
            "ORDER BY VECTOR_DIST(s.image_emb, qv) LIMIT 2;",
            qv=db._image[11].tolist(),
        )
        assert r.result.ranking[0][0] == ("Product", db.vid_for("Product", 11))
