"""Tests for the schedule-exploring concurrency checker (repro.analysis.explore).

Covers the explorer's core guarantees: seeded schedules are deterministic,
failures replay byte-identically from their recorded choices, the toy
lost-update bug is found within a bounded budget, the serve-layer commit
race is re-discovered when its validation is disabled (and stays hidden
when enabled), and true deadlocks are reported as such.
"""

from __future__ import annotations

import pytest

from repro.analysis import explore, sanitizer, scenarios
from repro.analysis.schedules import PCTSchedule, RandomSchedule, ReplaySchedule
from repro.analysis.sanitizer import SanitizedLock


@pytest.fixture
def clean_sanitizer():
    sanitizer.reset()
    yield sanitizer
    sanitizer.reset()


# ------------------------------------------------------------ determinism


def test_same_seed_reproduces_trace(clean_sanitizer):
    first = explore.run_schedule(
        scenarios.LostUpdateScenario(guarded=False), RandomSchedule(seed=5)
    )
    second = explore.run_schedule(
        scenarios.LostUpdateScenario(guarded=False), RandomSchedule(seed=5)
    )
    assert first.trace == second.trace
    assert first.choices == second.choices
    assert first.ok == second.ok
    assert first.failure == second.failure


def test_pct_schedule_is_deterministic():
    runnables = [(0, 1), (0, 1), (0, 1), (0, 1), (0, 1)]
    a = PCTSchedule(seed=9)
    b = PCTSchedule(seed=9)
    assert [a.pick(r, i) for i, r in enumerate(runnables)] == [
        b.pick(r, i) for i, r in enumerate(runnables)
    ]


def test_replay_schedule_follows_choices():
    sched = ReplaySchedule([1, 0, 1])
    assert sched.pick((0, 1), 0) == 1
    assert sched.pick((0, 1), 1) == 0
    assert sched.pick((0, 1), 2) == 1
    # past the recorded prefix: lowest runnable wins
    assert sched.pick((0, 1), 3) == 0


# ------------------------------------------------------- toy lost update


def test_toy_lost_update_found_exhaustively(clean_sanitizer):
    result = explore.explore_exhaustive(
        lambda: scenarios.LostUpdateScenario(guarded=False),
        max_decisions=8,
        max_schedules=64,
    )
    assert result.found, "bounded-exhaustive search must find the lost update"
    assert result.schedules_run <= 64
    assert result.failure.failure_kind == "check"
    assert "lost update" in result.failure.failure


def test_failure_replays_byte_identically(clean_sanitizer):
    found = explore.explore_exhaustive(
        lambda: scenarios.LostUpdateScenario(guarded=False),
        max_decisions=8,
        max_schedules=64,
    )
    assert found.found
    replayed = explore.replay(
        scenarios.LostUpdateScenario(guarded=False), found.failure.choices
    )
    assert not replayed.ok
    assert replayed.trace == found.failure.trace
    assert replayed.failure == found.failure.failure
    assert replayed.render_trace().splitlines()[1:] == (
        found.failure.render_trace().splitlines()[1:]
    )


def test_guarded_toy_stays_clean(clean_sanitizer):
    result = explore.explore_exhaustive(
        lambda: scenarios.LostUpdateScenario(guarded=True),
        max_decisions=8,
        max_schedules=64,
    )
    assert not result.found, result.summary()


# ------------------------------------------------- serve commit race


def test_commit_race_found_when_validation_disabled(clean_sanitizer):
    result = explore.explore_random(
        lambda: scenarios.CommitVsCachedSearch(validate=False),
        seeds=range(256),
        make_schedule=PCTSchedule,
    )
    assert result.found, "explorer lost coverage of the commit/watermark race"
    assert result.failure.failure_kind == "check"
    assert "cache poisoned" in result.failure.failure
    # the failing schedule must replay to the same verdict
    replayed = explore.replay(
        scenarios.CommitVsCachedSearch(validate=False), result.failure.choices
    )
    assert not replayed.ok
    assert replayed.failure == result.failure.failure


def test_commit_race_hidden_by_validation(clean_sanitizer):
    result = explore.explore_random(
        lambda: scenarios.CommitVsCachedSearch(validate=True),
        seeds=range(32),
        make_schedule=PCTSchedule,
    )
    assert not result.found, result.summary()


# ------------------------------------------------------------- deadlock


class _ABBADeadlock(explore.Scenario):
    name = "abba-deadlock"
    threads = 2

    def setup(self):
        state = scenarios._Box()
        state.lock_a = SanitizedLock(name="toy.deadlock.a")
        state.lock_b = SanitizedLock(name="toy.deadlock.b")
        return state

    def worker(self, state, index: int) -> None:
        first, second = (
            (state.lock_a, state.lock_b) if index == 0 else (state.lock_b, state.lock_a)
        )
        with first:
            with second:
                pass


def test_abba_deadlock_detected(clean_sanitizer):
    result = explore.explore_exhaustive(
        lambda: _ABBADeadlock(), max_decisions=8, max_schedules=64
    )
    assert result.found
    assert result.failure.failure_kind == "deadlock"
    assert "deadlock" in result.failure.failure


# ------------------------------------------------------- matrix sanity


def test_matrix_names_unique_and_resolvable():
    names = scenarios.scenario_names()
    assert len(names) == len(set(names))
    for name in names:
        assert scenarios.make_scenario(name).name == name
    with pytest.raises(KeyError):
        scenarios.make_scenario("no-such-scenario")


def test_vacuum_vs_search_stays_clean(clean_sanitizer):
    result = explore.explore_random(
        lambda: scenarios.VacuumVsSearch(),
        seeds=range(12),
        make_schedule=PCTSchedule,
    )
    assert not result.found, result.summary()
