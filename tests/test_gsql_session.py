"""Tests for the GSQL session: DDL execution, loading jobs, explain."""

import numpy as np
import pytest

from repro import TigerVectorDB
from repro.errors import GSQLSemanticError, LoadingError
from repro.types import IndexType, Metric


class TestDDL:
    def test_full_schema_roundtrip(self):
        db = TigerVectorDB(segment_size=32)
        db.run_gsql(
            """
            CREATE VERTEX Post (id INT PRIMARY KEY, author STRING, content STRING);
            CREATE VERTEX Person (id INT PRIMARY KEY, name STRING);
            CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person);
            CREATE UNDIRECTED EDGE knows (FROM Person, TO Person);
            """
        )
        assert db.schema.has_vertex_type("Post")
        assert db.schema.edge_type("knows").directed is False
        db.close()

    def test_paper_embedding_ddl(self):
        """The exact ALTER VERTEX statement from Sec. 4.1."""
        db = TigerVectorDB()
        db.run_gsql("CREATE VERTEX Post (id INT PRIMARY KEY, author STRING, content STRING);")
        db.run_gsql(
            """
            ALTER VERTEX Post
            ADD EMBEDDING ATTRIBUTE content_emb (
              DIMENSION = 1024,
              MODEL = GPT4,
              INDEX = HNSW,
              DATATYPE = FLOAT,
              METRIC = COSINE
            );
            """
        )
        emb = db.schema.vertex_type("Post").embedding("content_emb")
        assert emb.dimension == 1024
        assert emb.model == "GPT4"
        assert emb.index is IndexType.HNSW
        assert emb.metric is Metric.COSINE
        db.close()

    def test_paper_embedding_space_ddl(self):
        """The embedding-space example from Sec. 4.1 (Figure 2)."""
        db = TigerVectorDB()
        db.run_gsql(
            """
            CREATE VERTEX Post (id INT PRIMARY KEY);
            CREATE VERTEX Comment (id INT PRIMARY KEY);
            CREATE EMBEDDING SPACE GPT4_emb_space (
              DIMENSION = 1024, MODEL = GPT4, INDEX = HNSW,
              DATATYPE = FLOAT, METRIC = COSINE
            );
            ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb
              IN EMBEDDING SPACE GPT4_emb_space;
            ALTER VERTEX Comment ADD EMBEDDING ATTRIBUTE content_emb
              IN EMBEDDING SPACE GPT4_emb_space;
            """
        )
        post_emb = db.schema.vertex_type("Post").embedding("content_emb")
        comment_emb = db.schema.vertex_type("Comment").embedding("content_emb")
        assert post_emb.is_compatible_with(comment_emb)
        assert post_emb.space == "GPT4_emb_space"
        db.close()

    def test_index_params_ddl(self):
        db = TigerVectorDB()
        db.run_gsql(
            "CREATE VERTEX P (id INT PRIMARY KEY);"
            "ALTER VERTEX P ADD EMBEDDING ATTRIBUTE e "
            "(DIMENSION = 8, M = 8, EF_CONSTRUCTION = 50);"
        )
        emb = db.schema.vertex_type("P").embedding("e")
        assert emb.index_params["M"] == 8
        assert emb.index_params["ef_construction"] == 50
        db.close()

    def test_unknown_embedding_option(self):
        db = TigerVectorDB()
        db.run_gsql("CREATE VERTEX P (id INT PRIMARY KEY);")
        with pytest.raises(GSQLSemanticError):
            db.run_gsql("ALTER VERTEX P ADD EMBEDDING ATTRIBUTE e (WAT = 1);")
        db.close()


class TestLoadingJobs:
    @pytest.fixture
    def csv_files(self, tmp_path):
        posts = tmp_path / "posts.csv"
        posts.write_text(
            "id,author,content\n1,alice,hello\n2,bob,world\n3,alice,again\n"
        )
        embs = tmp_path / "embs.csv"
        embs.write_text(
            "id,content_emb\n1,0.1:0.2:0.3:0.4\n2,1:1:1:1\n3,0:0:0:1\n"
        )
        return posts, embs

    def test_paper_loading_job(self, csv_files, tmp_path):
        """The loading-job example from Sec. 4.1, executed end to end."""
        posts, embs = csv_files
        db = TigerVectorDB(segment_size=16)
        db.run_gsql(
            "CREATE VERTEX Post (id INT PRIMARY KEY, author STRING, content STRING);"
            "ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb "
            "(DIMENSION = 4, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);"
        )
        db.run_gsql(
            """
            CREATE LOADING JOB j1 FOR GRAPH g1 {
              LOAD f1 TO VERTEX Post VALUES (id, author, content);
              LOAD f2 TO EMBEDDING ATTRIBUTE content_emb
                ON VERTEX Post VALUES (id, split(content_emb, ":"));
            }
            """
        )
        r = db.run_gsql(
            f'RUN LOADING JOB j1 USING f1="{posts}", f2="{embs}";'
        )
        assert r.result == {"vertex:Post": 3, "embedding:content_emb": 3}
        with db.snapshot() as snap:
            vid = snap.vid_for_pk("Post", 2)
            assert snap.get_attr("Post", vid, "author") == "bob"
        store = db.service.store("Post", "content_emb")
        assert np.allclose(store.get_embedding(db.vid_for("Post", 1)), [0.1, 0.2, 0.3, 0.4])
        # loaded vectors are searchable
        result = db.vector_search(["Post.content_emb"], [0, 0, 0, 1], k=1)
        assert next(iter(result)) == ("Post", db.vid_for("Post", 3))
        db.close()

    def test_edge_loading(self, tmp_path):
        db = TigerVectorDB()
        db.run_gsql(
            "CREATE VERTEX Person (id INT PRIMARY KEY);"
            "CREATE DIRECTED EDGE follows (FROM Person, TO Person);"
        )
        with db.begin() as txn:
            for i in range(3):
                txn.upsert_vertex("Person", i, {})
        edges = tmp_path / "edges.csv"
        edges.write_text("src,dst\n0,1\n1,2\n")
        db.run_gsql(
            "CREATE LOADING JOB je FOR GRAPH g {"
            " LOAD f TO EDGE follows VALUES (src, dst);"
            "}"
        )
        r = db.run_gsql(f'RUN LOADING JOB je USING f="{edges}";')
        assert r.result == {"edge:follows": 2}
        with db.snapshot() as snap:
            v0 = snap.vid_for_pk("Person", 0)
            assert snap.degree("Person", v0, "follows") == 1
        db.close()

    def test_missing_file_binding(self, csv_files):
        posts, _ = csv_files
        db = TigerVectorDB()
        db.run_gsql("CREATE VERTEX Post (id INT PRIMARY KEY, author STRING, content STRING);")
        db.run_gsql(
            "CREATE LOADING JOB j FOR GRAPH g {"
            " LOAD f1 TO VERTEX Post VALUES (id, author, content);"
            "}"
        )
        with pytest.raises(LoadingError, match="USING"):
            db.run_gsql("RUN LOADING JOB j;")
        db.close()

    def test_undefined_job(self):
        db = TigerVectorDB()
        with pytest.raises(LoadingError, match="not defined"):
            db.run_gsql('RUN LOADING JOB ghost USING f="x";')
        db.close()

    def test_unknown_column_rejected(self, tmp_path):
        db = TigerVectorDB()
        db.run_gsql("CREATE VERTEX Post (id INT PRIMARY KEY);")
        bad = tmp_path / "bad.csv"
        bad.write_text("id,extra\n1,x\n")
        db.run_gsql(
            "CREATE LOADING JOB j FOR GRAPH g {"
            " LOAD f TO VERTEX Post VALUES (id, extra);"
            "}"
        )
        with pytest.raises(LoadingError, match="no attribute"):
            db.run_gsql(f'RUN LOADING JOB j USING f="{bad}";')
        db.close()


class TestExplain:
    def test_explain_does_not_execute(self, loaded_post_db):
        plan = loaded_post_db.gsql.explain(
            "SELECT t FROM (s:Person) - [:knows] -> (:Person) "
            "<- [:hasCreator] - (t:Post) "
            'WHERE s.firstName = "P0" AND t.length > 120 '
            "ORDER BY VECTOR_DIST(t.content_emb, qv) LIMIT 5;"
        )
        lines = plan.splitlines()
        assert lines[0].startswith("EmbeddingAction[Top 5")
        assert any("EdgeAction[knows" in line for line in lines)
        assert any("VertexAction[Person:s" in line for line in lines)

    def test_explain_rejects_multi_block(self, loaded_post_db):
        with pytest.raises(GSQLSemanticError):
            loaded_post_db.gsql.explain(
                "SELECT s FROM (s:Post); SELECT t FROM (t:Post);"
            )

    def test_install_lists_names(self, post_db):
        names = post_db.gsql.install(
            "CREATE QUERY a() { PRINT 1; } CREATE QUERY b() { PRINT 2; }"
        )
        assert names == ["a", "b"]
