"""Advanced vacuum scenarios: retired delta files, interleavings, stats."""

import numpy as np
import pytest

from tests.conftest import make_post_db


@pytest.fixture
def db():
    database = make_post_db(segment_size=16)
    with database.begin() as txn:
        for i in range(40):
            txn.upsert_vertex("Post", i, {"language": "en"})
            txn.set_embedding(
                "Post", i, "content_emb",
                np.full(16, float(i), dtype=np.float32),
            )
    database.vacuum()
    yield database
    database.close()


class TestRetiredDeltaFiles:
    def test_pinned_reader_spans_merged_files(self, db):
        """A reader pinned between two updates still sees its version even
        after the index merge consumed the delta files (paper Sec. 4.3)."""
        store = db.service.store("Post", "content_emb")
        vid = db.vid_for("Post", 5)
        with db.begin() as txn:
            txn.set_embedding("Post", 5, "content_emb", np.full(16, 100.0, np.float32))
        pinned = db.snapshot()  # sees value 100
        with db.begin() as txn:
            txn.set_embedding("Post", 5, "content_emb", np.full(16, 200.0, np.float32))
        db.vacuum()  # folds both updates; files must be retired, not dropped
        assert store.retired_delta_files, "files should be retained for the pinned reader"
        old = store.get_embedding(vid, snapshot_tid=pinned.tid)
        assert old is not None and old[0] == 100.0
        assert store.get_embedding(vid)[0] == 200.0
        pinned.release()
        db.vacuum()  # now reclaimable
        assert store.retired_delta_files == []

    def test_search_at_pinned_snapshot(self, db):
        store = db.service.store("Post", "content_emb")
        with db.begin() as txn:
            txn.set_embedding("Post", 7, "content_emb", np.full(16, 500.0, np.float32))
        pinned = db.snapshot()
        with db.begin() as txn:
            txn.set_embedding("Post", 7, "content_emb", np.full(16, 7.0, np.float32))
        db.vacuum()
        from repro.core.action import EmbeddingAction

        action = EmbeddingAction(store, parallel=False)
        result = action.topk(
            np.full(16, 500.0, np.float32), 1, snapshot_tid=pinned.tid, ef=64
        )
        assert int(result.ids[0]) == db.vid_for("Post", 7)
        pinned.release()

    def test_multiple_merge_rounds(self, db):
        store = db.service.store("Post", "content_emb")
        for round_no in range(3):
            with db.begin() as txn:
                txn.set_embedding(
                    "Post", round_no, "content_emb",
                    np.full(16, 1000.0 + round_no, np.float32),
                )
            db.vacuum()
        for round_no in range(3):
            vid = db.vid_for("Post", round_no)
            assert store.get_embedding(vid)[0] == 1000.0 + round_no
        assert store.pending_delta_count() == 0


class TestVacuumInterleavings:
    def test_delta_merge_without_index_merge(self, db):
        """Queries read flushed-but-unmerged delta files correctly."""
        store = db.service.store("Post", "content_emb")
        with db.begin() as txn:
            txn.set_embedding("Post", 9, "content_emb", np.full(16, 77.0, np.float32))
        db.vacuum_manager.delta_merge(store)
        assert store.delta_files and not len(store.delta_store)
        vid = db.vid_for("Post", 9)
        assert store.get_embedding(vid)[0] == 77.0
        result = db.vector_search(
            ["Post.content_emb"], np.full(16, 77.0, np.float32), k=1
        )
        assert next(iter(result))[1] == vid

    def test_index_merge_without_new_deltas_noop(self, db):
        store = db.service.store("Post", "content_emb")
        assert db.vacuum_manager.index_merge(store) == 0

    def test_interleaved_write_during_merge_cycle(self, db):
        store = db.service.store("Post", "content_emb")
        with db.begin() as txn:
            txn.set_embedding("Post", 1, "content_emb", np.full(16, 11.0, np.float32))
        db.vacuum_manager.delta_merge(store)
        # a write lands between the two vacuum stages
        with db.begin() as txn:
            txn.set_embedding("Post", 2, "content_emb", np.full(16, 22.0, np.float32))
        db.vacuum_manager.index_merge(store)
        assert store.get_embedding(db.vid_for("Post", 1))[0] == 11.0
        assert store.get_embedding(db.vid_for("Post", 2))[0] == 22.0  # from memory
        db.vacuum()
        assert store.get_embedding(db.vid_for("Post", 2))[0] == 22.0  # from index


class TestVacuumAccounting:
    def test_merge_seconds_recorded(self, db):
        with db.begin() as txn:
            txn.set_embedding("Post", 3, "content_emb", np.zeros(16, np.float32))
        db.vacuum()
        stats = db.vacuum_manager.stats
        assert stats.index_merge_seconds > 0
        assert stats.delta_merge_seconds >= 0
        assert stats.last_merge_threads >= 1

    def test_graph_vacuum_included_in_run_once(self, db):
        with db.begin() as txn:
            txn.upsert_vertex("Post", 100, {"language": "fr"})
        out = db.vacuum()
        assert out["graph_segments_rebuilt"] >= 1
