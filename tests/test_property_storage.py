"""Property-based tests: the storage engine against a reference model.

Hypothesis drives random operation sequences (upserts, deletes, edges,
embeddings, vacuums, snapshots) against both the real engine and a trivial
dict-based model; every interleaving must agree.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Attribute, AttrType, GraphSchema, Metric
from repro.graph.storage import GraphStore

DIM = 4


def make_store(segment_size=4):
    schema = GraphSchema()
    schema.create_vertex_type(
        "V",
        [Attribute("id", AttrType.INT, primary_key=True), Attribute("x", AttrType.INT)],
    )
    schema.create_edge_type("e", "V", "V")
    schema.add_embedding_attribute("V", "emb", dimension=DIM, metric=Metric.L2)
    return GraphStore(schema, segment_size=segment_size)


op_strategy = st.one_of(
    st.tuples(st.just("upsert"), st.integers(0, 9), st.integers(0, 100)),
    st.tuples(st.just("delete"), st.integers(0, 9)),
    st.tuples(st.just("edge"), st.integers(0, 9), st.integers(0, 9)),
    st.tuples(st.just("vacuum")),
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(op_strategy, min_size=1, max_size=25))
def test_storage_matches_model(ops):
    store = make_store()
    model_attrs: dict[int, int] = {}
    model_edges: set[tuple[int, int]] = set()
    for op in ops:
        if op[0] == "upsert":
            _, pk, x = op
            with store.begin() as txn:
                txn.upsert_vertex("V", pk, {"x": x})
            model_attrs[pk] = x
        elif op[0] == "delete":
            _, pk = op
            with store.begin() as txn:
                txn.delete_vertex("V", pk)
            model_attrs.pop(pk, None)
            model_edges = {
                (a, b) for a, b in model_edges if a != pk and b != pk
            }
        elif op[0] == "edge":
            _, a, b = op
            if a in model_attrs and b in model_attrs:
                with store.begin() as txn:
                    txn.add_edge("e", a, b)
                model_edges.add((a, b))
        elif op[0] == "vacuum":
            store.vacuum()

    with store.snapshot() as snap:
        live = {}
        for vid, row in snap.scan("V"):
            live[row["id"]] = row["x"]
        assert live == model_attrs
        # deleting a vertex drops its pk; re-inserting revives it, so every
        # surviving model edge whose endpoints are live must be traversable
        for a, b in model_edges:
            if a in model_attrs and b in model_attrs:
                va = snap.vid_for_pk("V", a)
                targets = snap.neighbors("V", va, "e")
                vb = snap.vid_for_pk("V", b)
                assert vb in targets


emb_op = st.one_of(
    st.tuples(st.just("set"), st.integers(0, 7), st.integers(0, 50)),
    st.tuples(st.just("del"), st.integers(0, 7)),
    st.tuples(st.just("vacuum")),
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(emb_op, min_size=1, max_size=20))
def test_embedding_store_matches_model(ops):
    """get_embedding must always reflect the latest committed write,
    regardless of how vacuums interleave."""
    from repro.core.service import EmbeddingService
    from repro.core.vacuum import VacuumManager

    store = make_store()
    service = EmbeddingService(store.schema, segment_size=4)
    store.register_embedding_hook(service.on_commit)
    vacuum = VacuumManager(store, service)
    model: dict[int, int] = {}

    with store.begin() as txn:
        for pk in range(8):
            txn.upsert_vertex("V", pk, {"x": 0})

    for op in ops:
        if op[0] == "set":
            _, pk, seed = op
            vec = np.full(DIM, float(seed), dtype=np.float32)
            with store.begin() as txn:
                txn.set_embedding("V", pk, "emb", vec)
            model[pk] = seed
        elif op[0] == "del":
            _, pk = op
            with store.begin() as txn:
                txn.delete_embedding("V", pk, "emb")
            model.pop(pk, None)
        else:
            vacuum.run_once()

    estore = service.store("V", "emb")
    for pk in range(8):
        vid = store.vid_for_pk("V", pk)
        value = estore.get_embedding(vid)
        if pk in model:
            assert value is not None
            assert value[0] == model[pk]
        else:
            assert value is None


@settings(max_examples=30, deadline=None)
@given(
    seeds=st.lists(st.integers(0, 1000), min_size=4, max_size=24, unique=True),
    k=st.integers(1, 5),
)
def test_search_always_returns_true_nearest_after_vacuum(seeds, k):
    """Engine-level invariant: with exact-capable ef, merged per-segment
    top-k equals brute force over all live vectors."""
    from repro.core.service import EmbeddingService
    from repro.core.vacuum import VacuumManager
    from repro.core.action import EmbeddingAction
    from repro.types import batch_distances

    store = make_store(segment_size=4)
    service = EmbeddingService(store.schema, segment_size=4)
    store.register_embedding_hook(service.on_commit)
    VacuumManager(store, service)
    vectors = {}
    with store.begin() as txn:
        for i, seed in enumerate(seeds):
            rng = np.random.default_rng(seed)
            vec = rng.standard_normal(DIM).astype(np.float32)
            txn.upsert_vertex("V", i, {"x": 0})
            txn.set_embedding("V", i, "emb", vec)
            vectors[i] = vec
    vm = VacuumManager(store, service)
    vm.run_once()
    estore = service.store("V", "emb")
    action = EmbeddingAction(estore, parallel=False)
    query = np.zeros(DIM, dtype=np.float32)
    with store.snapshot() as snap:
        result = action.topk(query, min(k, len(seeds)), snapshot_tid=snap.tid, ef=4096)
    matrix = np.stack([vectors[i] for i in sorted(vectors)])
    dists = batch_distances(query, matrix, Metric.L2)
    expected = set(np.argsort(dists, kind="stable")[: min(k, len(seeds))].tolist())
    got = {int(vid) for vid, _ in result}  # vid == insert order here
    # allow ties at the boundary
    boundary = sorted(dists)[min(k, len(seeds)) - 1]
    for vid in got:
        assert dists[vid] <= boundary + 1e-5
