"""Unit tests for EmbeddingSegment snapshot chains."""

import numpy as np
import pytest

from repro.core.delta import DELETE, UPSERT, DeltaRecord
from repro.core.embedding import EmbeddingType
from repro.core.segment import EmbeddingSegment
from repro.errors import ReproError, VectorSearchError
from repro.types import IndexType, Metric

DIM = 4


@pytest.fixture
def segment():
    emb = EmbeddingType(name="e", dimension=DIM, metric=Metric.L2, index=IndexType.HNSW)
    return EmbeddingSegment(emb, seg_no=0, capacity=8)


def vec(value):
    return np.full(DIM, float(value), dtype=np.float32)


class TestBulkLoad:
    def test_populates_vectors_and_index(self, segment):
        segment.bulk_load(np.array([0, 2, 5]), np.stack([vec(1), vec(2), vec(3)]), tid=1)
        assert segment.live_count() == 3
        assert np.allclose(segment.get_vector(2), 2.0)
        assert segment.get_vector(1) is None
        result = segment.index.topk_search(vec(3), 1, ef=16)
        assert result.ids[0] == 5

    def test_offset_bounds_checked(self, segment):
        with pytest.raises(VectorSearchError):
            segment.bulk_load(np.array([99]), vec(1).reshape(1, -1), tid=1)

    def test_length_mismatch(self, segment):
        with pytest.raises(VectorSearchError):
            segment.bulk_load(np.array([0, 1]), vec(1).reshape(1, -1), tid=1)


class TestSnapshotChain:
    def test_build_next_applies_upserts_and_deletes(self, segment):
        segment.bulk_load(np.array([0, 1]), np.stack([vec(1), vec(2)]), tid=1)
        records = [
            DeltaRecord(UPSERT, 1, 2, vec(9)),
            DeltaRecord(DELETE, 0, 3, None),
        ]
        snapshot = segment.build_next_snapshot(records, new_tid=3, segment_size=8)
        segment.install_snapshot(snapshot)
        assert segment.snapshot_tid == 3
        assert segment.get_vector(0) is None
        assert np.allclose(segment.get_vector(1), 9.0)

    def test_upsert_then_delete_same_offset(self, segment):
        segment.bulk_load(np.array([0]), vec(1).reshape(1, -1), tid=1)
        records = [
            DeltaRecord(UPSERT, 3, 2, vec(5)),
            DeltaRecord(DELETE, 3, 3, None),
        ]
        snapshot = segment.build_next_snapshot(records, new_tid=3, segment_size=8)
        assert not snapshot.present[3]

    def test_snapshot_for_old_reader(self, segment):
        segment.bulk_load(np.array([0]), vec(1).reshape(1, -1), tid=1)
        new = segment.build_next_snapshot(
            [DeltaRecord(UPSERT, 0, 5, vec(7))], new_tid=5, segment_size=8
        )
        segment.install_snapshot(new)
        old = segment.snapshot_for(2)
        assert np.allclose(old.vectors[0], 1.0)
        fresh = segment.snapshot_for(5)
        assert np.allclose(fresh.vectors[0], 7.0)

    def test_cannot_install_older(self, segment):
        segment.bulk_load(np.array([0]), vec(1).reshape(1, -1), tid=5)
        stale = segment.build_next_snapshot([], new_tid=3, segment_size=8)
        # build_next_snapshot with no records still carries the new tid; an
        # explicitly older one must be refused
        stale.tid = 3
        with pytest.raises(ReproError):
            segment.install_snapshot(stale)

    def test_gc_retires_unneeded(self, segment):
        segment.bulk_load(np.array([0]), vec(1).reshape(1, -1), tid=1)
        for tid in (2, 3):
            snap = segment.build_next_snapshot(
                [DeltaRecord(UPSERT, 0, tid, vec(tid))], new_tid=tid, segment_size=8
            )
            segment.install_snapshot(snap)
        assert len(segment._retired) == 2
        dropped = segment.gc_snapshots(min_active_snapshot_tid=3)
        assert dropped == 2
        assert segment._retired == []

    def test_gc_keeps_reachable(self, segment):
        segment.bulk_load(np.array([0]), vec(1).reshape(1, -1), tid=1)
        snap = segment.build_next_snapshot(
            [DeltaRecord(UPSERT, 0, 5, vec(5))], new_tid=5, segment_size=8
        )
        segment.install_snapshot(snap)
        segment.gc_snapshots(min_active_snapshot_tid=2)
        # the tid-1 snapshot must survive for the reader pinned at tid 2
        old = segment.snapshot_for(2)
        assert np.allclose(old.vectors[0], 1.0)

    def test_index_clone_independent(self, segment):
        segment.bulk_load(np.array([0, 1]), np.stack([vec(1), vec(2)]), tid=1)
        new = segment.build_next_snapshot(
            [DeltaRecord(DELETE, 0, 2, None)], new_tid=2, segment_size=8
        )
        # old snapshot's index still sees offset 0; new one does not
        assert 0 in segment.index
        assert 0 not in new.index
