"""Unit tests for repro.telemetry: spans, metrics, runtime, exporters."""

from __future__ import annotations

import json
import threading

import pytest

from repro.telemetry import (
    DEFAULT_COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    NullTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    format_snapshot,
    format_span_tree,
    from_json,
    get_telemetry,
    to_json,
    to_prometheus,
    use_telemetry,
)


@pytest.fixture
def telemetry():
    """A live Telemetry installed as the active instance, restored after."""
    t = enable_telemetry()
    yield t
    disable_telemetry()


class TestSpans:
    def test_nesting_builds_a_tree(self, telemetry):
        with telemetry.span("root") as root:
            with telemetry.span("child-a") as a:
                with telemetry.span("grandchild"):
                    pass
            with telemetry.span("child-b"):
                pass
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in a.children] == ["grandchild"]
        assert root.end_seconds is not None
        assert root.duration_seconds >= a.duration_seconds

    def test_attrs_and_events(self, telemetry):
        with telemetry.span("q", k=10) as span:
            span.set(coverage=0.5)
            span.event("retry", attempt=1)
        assert span.attrs == {"k": 10, "coverage": 0.5}
        retry = span.children[0]
        assert retry.name == "retry" and retry.duration_seconds == 0.0

    def test_walk_and_find(self, telemetry):
        with telemetry.span("coordinator.query") as root:
            with telemetry.span("machine.dispatch", machine_id=0):
                with telemetry.span("segment.search"):
                    pass
            with telemetry.span("machine.dispatch", machine_id=1):
                pass
        assert len(list(root.walk())) == 4
        assert len(root.find("machine.")) == 2
        assert root.find("segment.")[0].name == "segment.search"

    def test_root_span_retained_as_trace(self, telemetry):
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        traces = telemetry.traces()
        assert [t.name for t in traces] == ["outer"]
        assert telemetry.last_trace().children[0].name == "inner"

    def test_record_observes_duration(self, telemetry):
        with telemetry.span("q", record="query.latency_seconds"):
            pass
        hist = telemetry.registry.histogram("query.latency_seconds")
        assert hist.count == 1
        assert hist.sum >= 0.0

    def test_slow_query_log_threshold(self):
        t = Telemetry(slow_query_seconds=0.0)
        with use_telemetry(t):
            with t.span("slow"):
                pass
        assert [s.name for s in t.slow_queries()] == ["slow"]
        assert t.registry.counter("query.slow").value == 1

    def test_span_survives_exception(self, telemetry):
        with pytest.raises(ValueError):
            with telemetry.span("boom") as span:
                raise ValueError("x")
        assert span.end_seconds is not None
        assert telemetry.last_trace() is span

    def test_per_thread_stacks_are_independent(self, telemetry):
        roots = {}

        def worker(name):
            with telemetry.span(name) as span:
                pass
            roots[name] = span

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every thread's span is a root (no cross-thread nesting).
        assert all(not s.children for s in roots.values())
        assert len(telemetry.traces()) == 4

    def test_format_tree(self, telemetry):
        with telemetry.span("root", k=5) as root:
            with telemetry.span("leaf"):
                pass
        text = format_span_tree(root)
        assert "root" in text and "k=5" in text
        assert "\n  leaf" in text


class TestNullPath:
    def test_default_is_null(self):
        tel = get_telemetry()
        assert isinstance(tel, NullTelemetry)
        assert tel.enabled is False

    def test_null_span_is_shared_and_inert(self):
        tel = NullTelemetry()
        with tel.span("anything", record="x", k=1) as span:
            assert span is NULL_SPAN
            span.set(a=1).event("e")
        assert span.to_dict() == {}
        assert tel.traces() == [] and tel.last_trace() is None
        assert tel.registry.snapshot()["counters"] == {}

    def test_use_telemetry_restores_previous(self):
        before = get_telemetry()
        live = Telemetry()
        with use_telemetry(live):
            assert get_telemetry() is live
        assert get_telemetry() is before


class TestHistogram:
    def test_bucket_assignment_on_boundaries(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0):  # <= 1.0 -> first bucket
            hist.observe(value)
        hist.observe(5.0)  # (1, 10]
        hist.observe(10.0)  # boundary lands in its own bucket
        hist.observe(1000.0)  # overflow
        snap = hist.snapshot()
        assert snap["buckets"] == {"1.0": 2, "10.0": 2, "100.0": 0}
        assert snap["overflow"] == 1
        assert snap["count"] == 5
        assert snap["min"] == 0.5 and snap["max"] == 1000.0

    def test_percentiles_read_bucket_bounds(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        for _ in range(90):
            hist.observe(0.5)
        for _ in range(10):
            hist.observe(3.0)
        assert hist.percentile(0.5) == pytest.approx(1.0)  # first bucket's bound
        assert hist.percentile(0.95) == pytest.approx(3.0)
        assert hist.percentile(1.0) == pytest.approx(3.0)

    def test_percentile_clamps_to_observed_max(self):
        hist = Histogram("h", buckets=tuple(DEFAULT_COUNT_BUCKETS))
        hist.observe(137)
        # 137 falls in the (64, 256] bucket; p50 must not exceed the max.
        assert hist.percentile(0.5) == 137

    def test_overflow_percentile_is_max(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(50.0)
        hist.observe(70.0)
        assert hist.percentile(0.99) == 70.0

    def test_empty_and_invalid(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        assert hist.percentile(0.5) == 0.0
        assert hist.mean == 0.0
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_count_shaped_instruments_get_count_buckets(self):
        reg = MetricsRegistry()
        assert reg.histogram("hnsw.hops").buckets == DEFAULT_COUNT_BUCKETS
        assert reg.histogram("query.latency_seconds").buckets != DEFAULT_COUNT_BUCKETS

    def test_thread_safety_under_concurrent_writers(self):
        reg = MetricsRegistry()
        writers, iterations = 8, 2_000

        def write():
            for i in range(iterations):
                reg.inc("shared.counter")
                reg.observe("shared.hist", float(i % 7))
                reg.set_gauge("shared.gauge", float(i))

        threads = [threading.Thread(target=write) for _ in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert reg.counter("shared.counter").value == writers * iterations
        assert reg.histogram("shared.hist").count == writers * iterations

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("wal.records", 3)
        reg.set_gauge("delta.size", 12.5)
        for value in (0.001, 0.002, 0.5):
            reg.observe("query.latency_seconds", value)
        return reg

    def test_json_round_trip(self):
        snap = self._populated().snapshot()
        again = from_json(to_json(snap))
        assert again == json.loads(json.dumps(snap))
        assert again["counters"]["wal.records"] == 3
        assert again["histograms"]["query.latency_seconds"]["count"] == 3

    def test_prometheus_text_format(self):
        text = to_prometheus(self._populated().snapshot())
        assert "repro_wal_records 3" in text
        assert "repro_delta_size 12.5" in text
        assert '# TYPE repro_query_latency_seconds histogram' in text
        assert 'repro_query_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_query_latency_seconds_count 3" in text
        # Bucket counts are cumulative and non-decreasing.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_query_latency_seconds_bucket")
        ]
        assert counts == sorted(counts)

    def test_format_snapshot_table(self):
        text = format_snapshot(self._populated().snapshot())
        assert "wal.records" in text and "query.latency_seconds" in text
        assert format_snapshot(MetricsRegistry().snapshot()) == "(no instruments recorded)"
