"""Unit tests for every lint rule (positive + negative fixtures), the noqa
suppression machinery, the lock-order graph, and the runtime sanitizer."""

from __future__ import annotations

import ast
import textwrap
import threading

import pytest

from repro.analysis import lint_source
from repro.analysis.findings import SuppressionIndex
from repro.analysis.lockgraph import LockOrderGraph
from repro.analysis import sanitizer


def lint(source: str, path: str = "src/repro/core/snippet.py", rules=None):
    return lint_source(textwrap.dedent(source), path=path, rule_ids=rules)


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------- R001


class TestR001SharedMutableWithoutLock:
    def test_unguarded_mutation_flagged(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    self._items[key] = value
            """,
            rules=["R001"],
        )
        assert rule_ids(findings) == ["R001"]
        assert "_items" in findings[0].message

    def test_guarded_mutation_clean(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value
            """,
            rules=["R001"],
        )
        assert findings == []

    def test_acquire_call_counts_as_guard(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def put(self, value):
                    self._lock.acquire()
                    try:
                        self._items.append(value)
                    finally:
                        self._lock.release()
            """,
            rules=["R001"],
        )
        assert findings == []

    def test_mutator_method_and_subscript_depth(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._index = {}

                def drop(self, vtype, pk):
                    self._index[vtype].pop(pk, None)
            """,
            rules=["R001"],
        )
        assert rule_ids(findings) == ["R001"]

    def test_ndarray_attr_tracked(self):
        findings = lint(
            """
            import threading
            import numpy as np

            class Index:
                def __init__(self):
                    self._write_lock = threading.RLock()
                    self._deleted = np.zeros(8, dtype=bool)

                def delete(self, row):
                    self._deleted[row] = True
            """,
            rules=["R001"],
        )
        assert rule_ids(findings) == ["R001"]

    def test_lockless_class_ignored(self):
        findings = lint(
            """
            class Plain:
                def __init__(self):
                    self._items = []

                def put(self, value):
                    self._items.append(value)
            """,
            rules=["R001"],
        )
        assert findings == []

    def test_init_and_setstate_exempt(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []
                    self._items.append(1)

                def __setstate__(self, state):
                    self._items = []
            """,
            rules=["R001"],
        )
        assert findings == []

    def test_reads_not_flagged(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def get(self, key):
                    return self._items.get(key)
            """,
            rules=["R001"],
        )
        assert findings == []


# ---------------------------------------------------------------- R002


class TestR002LockOrderInversion:
    def test_syntactic_inversion_flagged(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            rules=["R002"],
        )
        assert rule_ids(findings) == ["R002"]
        assert "inverts" in findings[0].message

    def test_consistent_order_clean(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """,
            rules=["R002"],
        )
        assert findings == []

    def test_propagated_inversion_through_method_call(self):
        # holder -> callee that acquires the other lock, in both directions.
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def locked_b(self):
                    with self._b:
                        return 1

                def forward(self):
                    with self._a:
                        return self.locked_b()

                def locked_a(self):
                    with self._a:
                        return 2

                def backward(self):
                    with self._b:
                        return self.locked_a()
            """,
            rules=["R002"],
        )
        assert rule_ids(findings) == ["R002"]

    def test_three_lock_cycle_detected(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._c = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._b:
                        with self._c:
                            pass

                def three(self):
                    with self._c:
                        with self._a:
                            pass
            """,
            rules=["R002"],
        )
        assert rule_ids(findings) == ["R002"]


# ---------------------------------------------------------------- R003


class TestR003SnapshotBypass:
    def test_private_state_access_in_gsql_flagged(self):
        findings = lint(
            """
            def run(store):
                return store._segments["Post"]
            """,
            path="src/repro/gsql/executor_snippet.py",
            rules=["R003"],
        )
        assert rule_ids(findings) == ["R003"]

    def test_delta_store_access_in_core_search_flagged(self):
        findings = lint(
            """
            def peek(store):
                return len(store.delta_store)
            """,
            path="src/repro/core/search.py",
            rules=["R003"],
        )
        assert rule_ids(findings) == ["R003"]

    def test_own_private_state_allowed(self):
        findings = lint(
            """
            class Executor:
                def __init__(self):
                    self._segments = []

                def run(self):
                    return self._segments
            """,
            path="src/repro/gsql/executor_snippet.py",
            rules=["R003"],
        )
        assert findings == []

    def test_other_modules_not_in_scope(self):
        findings = lint(
            """
            def gc(store):
                return store.delta_files
            """,
            path="src/repro/core/vacuum_snippet.py",
            rules=["R003"],
        )
        assert findings == []


# ---------------------------------------------------------------- R004


class TestR004WallClock:
    def test_wall_clock_in_commit_function_flagged(self):
        findings = lint(
            """
            import time

            def commit(ops):
                stamp = time.time()
                return stamp
            """,
            path="src/repro/core/snippet.py",
            rules=["R004"],
        )
        assert rule_ids(findings) == ["R004"]

    def test_wall_clock_anywhere_in_vacuum_module_flagged(self):
        findings = lint(
            """
            import time

            def helper():
                return time.time()
            """,
            path="src/repro/core/vacuum.py",
            rules=["R004"],
        )
        assert rule_ids(findings) == ["R004"]

    def test_monotonic_clock_allowed(self):
        findings = lint(
            """
            import time

            def vacuum():
                start = time.perf_counter()
                return time.perf_counter() - start
            """,
            path="src/repro/core/vacuum.py",
            rules=["R004"],
        )
        assert findings == []

    def test_wall_clock_outside_critical_paths_allowed(self):
        findings = lint(
            """
            import time

            def report():
                return time.time()
            """,
            path="src/repro/shell_snippet.py",
            rules=["R004"],
        )
        assert findings == []


# ---------------------------------------------------------------- R005


class TestR005FloatEquality:
    def test_distance_equality_flagged(self):
        findings = lint(
            """
            def dedupe(dist, best_dist):
                return dist == best_dist
            """,
            rules=["R005"],
        )
        assert rule_ids(findings) == ["R005"]

    def test_score_attribute_inequality_flagged(self):
        findings = lint(
            """
            def changed(result, prev):
                return result.score != prev.score
            """,
            rules=["R005"],
        )
        assert rule_ids(findings) == ["R005"]

    def test_ordering_comparisons_allowed(self):
        findings = lint(
            """
            def better(dist, best_dist):
                return dist < best_dist
            """,
            rules=["R005"],
        )
        assert findings == []

    def test_non_distance_names_allowed(self):
        findings = lint(
            """
            def same(count, total):
                return count == total
            """,
            rules=["R005"],
        )
        assert findings == []

    def test_none_comparison_allowed(self):
        findings = lint(
            """
            def missing(dist):
                return dist == None
            """,
            rules=["R005"],
        )
        assert findings == []


# ---------------------------------------------------------------- R006


class TestR006SilentExcept:
    def test_bare_except_flagged(self):
        findings = lint(
            """
            def risky():
                try:
                    return 1
                except:
                    return None
            """,
            rules=["R006"],
        )
        assert rule_ids(findings) == ["R006"]

    def test_swallowed_exception_flagged(self):
        findings = lint(
            """
            def risky():
                try:
                    return 1
                except Exception:
                    pass
            """,
            rules=["R006"],
        )
        assert rule_ids(findings) == ["R006"]

    def test_handled_exception_allowed(self):
        findings = lint(
            """
            def risky(log):
                try:
                    return 1
                except ValueError as exc:
                    log.warning("failed: %s", exc)
                    return None
            """,
            rules=["R006"],
        )
        assert findings == []

    def test_rethrow_allowed(self):
        findings = lint(
            """
            def risky():
                try:
                    return 1
                except Exception as exc:
                    raise RuntimeError("wrapped") from exc
            """,
            rules=["R006"],
        )
        assert findings == []


# ---------------------------------------------------------------- R007


class TestR007MutableDefault:
    def test_list_default_flagged(self):
        findings = lint(
            """
            def search(query, filters=[]):
                return filters
            """,
            rules=["R007"],
        )
        assert rule_ids(findings) == ["R007"]

    def test_dict_and_kwonly_defaults_flagged(self):
        findings = lint(
            """
            def configure(opts={}, *, extra=dict()):
                return opts, extra
            """,
            rules=["R007"],
        )
        assert rule_ids(findings) == ["R007", "R007"]

    def test_none_default_allowed(self):
        findings = lint(
            """
            def search(query, filters=None):
                return filters or []
            """,
            rules=["R007"],
        )
        assert findings == []


# ----------------------------------------------------------- suppression


class TestNoqaSuppression:
    def test_line_level_noqa(self):
        source = textwrap.dedent(
            """
            x = compute()  # repro: noqa[R005] -- sentinel compare
            y = compute()
            """
        )
        index = SuppressionIndex.from_module(source, ast.parse(source))
        assert index.is_suppressed(2, "R005")
        assert not index.is_suppressed(2, "R001")
        assert not index.is_suppressed(3, "R005")

    def test_def_level_noqa_covers_body(self):
        source = textwrap.dedent(
            """
            def helper():  # repro: noqa[R004] -- reporting only
                import time
                return time.time()
            """
        )
        index = SuppressionIndex.from_module(source, ast.parse(source))
        assert index.is_suppressed(4, "R004")
        assert not index.is_suppressed(4, "R007")

    def test_bare_noqa_suppresses_all_rules(self):
        source = "x = 1  # repro: noqa\n"
        index = SuppressionIndex.from_module(source, ast.parse(source))
        assert index.is_suppressed(1, "R001")
        assert index.is_suppressed(1, "R999")


# ----------------------------------------------------------- lock graph


class TestLockOrderGraph:
    def test_edge_and_path(self):
        graph = LockOrderGraph()
        assert graph.add_edge("a", "b") is None
        assert graph.add_edge("b", "c") is None
        assert graph.path("a", "c") == ["a", "b", "c"]
        assert graph.path("c", "a") is None

    def test_inversion_returns_reverse_path(self):
        graph = LockOrderGraph()
        graph.add_edge("a", "b")
        # adding b->a closes the cycle; the pre-existing a->b path comes back
        assert graph.add_edge("b", "a") == ["a", "b"]

    def test_self_edge_ignored(self):
        graph = LockOrderGraph()
        assert graph.add_edge("a", "a") is None
        assert len(graph) == 0

    def test_cycles_reported_once(self):
        graph = LockOrderGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "a")
        assert len(graph.cycles()) == 1


# ------------------------------------------------------------ sanitizer


@pytest.fixture
def clean_sanitizer():
    sanitizer.reset()
    yield sanitizer
    sanitizer.reset()


class TestSanitizer:
    def test_two_threads_opposite_order_inversion(self, clean_sanitizer):
        lock_a = sanitizer.SanitizedLock(name="test.py:1(self._a)")
        lock_b = sanitizer.SanitizedLock(name="test.py:2(self._b)")
        barrier = threading.Event()

        def forward():
            with lock_a:
                with lock_b:
                    pass
            barrier.set()

        def backward():
            barrier.wait(timeout=5)  # strictly after forward: no deadlock
            with lock_b:
                with lock_a:
                    pass

        t1 = threading.Thread(target=forward)
        t2 = threading.Thread(target=backward)
        t1.start()
        t2.start()
        t1.join(timeout=5)
        t2.join(timeout=5)

        found = sanitizer.violations()
        assert [v.kind for v in found] == ["lock-order-inversion"]
        assert "self._a" in found[0].message and "self._b" in found[0].message

    def test_consistent_order_clean(self, clean_sanitizer):
        lock_a = sanitizer.SanitizedLock(name="test.py:1(self._a)")
        lock_b = sanitizer.SanitizedLock(name="test.py:2(self._b)")

        def worker():
            with lock_a:
                with lock_b:
                    pass

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert sanitizer.violations() == []
        assert sanitizer.counters()["orderings"] == 1

    def test_violation_tagged_with_context(self, clean_sanitizer):
        sanitizer.set_context("tests/test_example.py::test_case")
        try:
            commit = sanitizer.SanitizedLock(name="storage.py:58(self._commit_lock)")
            other = sanitizer.SanitizedLock(name="delta.py:108(self._lock)")
            with other:
                with commit:
                    pass
        finally:
            sanitizer.set_context("")
        found = sanitizer.violations()
        assert found and found[0].context == "tests/test_example.py::test_case"
        assert "triggered by: tests/test_example.py::test_case" in found[0].render()

    def test_held_across_commit_detected(self, clean_sanitizer):
        commit = sanitizer.SanitizedLock(name="storage.py:58(self._commit_lock)")
        other = sanitizer.SanitizedLock(name="delta.py:108(self._lock)")
        with other:
            with commit:
                pass
        kinds = [v.kind for v in sanitizer.violations()]
        assert "held-across-commit" in kinds

    def test_commit_then_other_is_fine(self, clean_sanitizer):
        commit = sanitizer.SanitizedLock(name="storage.py:58(self._commit_lock)")
        other = sanitizer.SanitizedLock(name="delta.py:108(self._lock)")
        with commit:
            with other:
                pass
        assert sanitizer.violations() == []

    def test_reentrant_lock_no_false_positive(self, clean_sanitizer):
        lock = sanitizer.SanitizedLock(name="test.py:9(self._rl)", reentrant=True)
        with lock:
            with lock:
                pass
        assert sanitizer.violations() == []

    def test_same_site_instances_no_self_edge(self, clean_sanitizer):
        # Two DeltaStore-style locks share a creation-site name; nesting them
        # records no ordering (no defined order between instances).
        one = sanitizer.SanitizedLock(name="delta.py:108(self._lock)")
        two = sanitizer.SanitizedLock(name="delta.py:108(self._lock)")
        with one:
            with two:
                pass
        assert sanitizer.violations() == []
        assert sanitizer.counters()["orderings"] == 0

    def test_patch_locks_instruments_repro_frames_only(self, clean_sanitizer):
        sanitizer.patch_locks()
        try:
            code = "import threading\nlock = threading.Lock()\nrlock = threading.RLock()\n"
            repro_ns: dict = {}
            exec(compile(code, "/x/src/repro/fake_module.py", "exec"), repro_ns)
            assert isinstance(repro_ns["lock"], sanitizer.SanitizedLock)
            assert isinstance(repro_ns["rlock"], sanitizer.SanitizedLock)

            other_ns: dict = {}
            exec(compile(code, "/x/site-packages/other/mod.py", "exec"), other_ns)
            assert not isinstance(other_ns["lock"], sanitizer.SanitizedLock)

            analysis_ns: dict = {}
            exec(
                compile(code, "/x/src/repro/analysis/mod.py", "exec"), analysis_ns
            )
            assert not isinstance(analysis_ns["lock"], sanitizer.SanitizedLock)
        finally:
            sanitizer.unpatch_locks()

    def test_summary_line_shape(self, clean_sanitizer):
        line = sanitizer.summary_line()
        assert "0 lock-order inversion(s)" in line
        assert "0 held-across-commit violation(s)" in line

    def test_sanitized_lock_pickles_like_core_locks(self, clean_sanitizer):
        import pickle

        lock = sanitizer.SanitizedLock(name="test.py:5(self._lock)")
        clone = pickle.loads(pickle.dumps(lock))
        with clone:
            pass
        assert clone.name == lock.name


# ---------------------------------------------------------------- R008


class TestR008WatermarkBeforeSnapshot:
    def test_unvalidated_sequence_flagged(self):
        findings = lint(
            """
            def serve(store, db, cache, key):
                mark = store.watermark()
                with db.snapshot() as snapshot:
                    top = search(snapshot)
                cache.put(key, top)
            """,
            rules=["R008"],
        )
        assert rule_ids(findings) == ["R008"]
        assert "watermark_tid" in findings[0].message

    def test_validated_sequence_clean(self):
        findings = lint(
            """
            def serve(store, db, cache, key):
                mark = store.watermark()
                with db.snapshot() as snapshot:
                    top = search(snapshot)
                    if EmbeddingStore.watermark_tid(mark) > snapshot.tid:
                        return top
                cache.put(key, top)
            """,
            rules=["R008"],
        )
        assert findings == []

    def test_snapshot_without_watermark_clean(self):
        findings = lint(
            """
            def run(db):
                with db.snapshot() as snapshot:
                    return search(snapshot)
            """,
            rules=["R008"],
        )
        assert findings == []

    def test_snapshot_before_watermark_clean(self):
        findings = lint(
            """
            def run(db, store):
                with db.snapshot() as snapshot:
                    top = search(snapshot)
                return top, store.watermark()
            """,
            rules=["R008"],
        )
        assert findings == []


# ---------------------------------------------------------------- R009


class TestR009AcquireWithoutTryFinally:
    def test_bare_acquire_flagged(self):
        findings = lint(
            """
            def update(self):
                self._lock.acquire()
                self._items.clear()
                self._lock.release()
            """,
            rules=["R009"],
        )
        assert rule_ids(findings) == ["R009"]
        assert "try/finally" in findings[0].message

    def test_try_finally_release_clean(self):
        findings = lint(
            """
            def update(self):
                self._lock.acquire()
                try:
                    self._items.clear()
                finally:
                    self._lock.release()
            """,
            rules=["R009"],
        )
        assert findings == []

    def test_nonblocking_probe_clean(self):
        findings = lint(
            """
            def try_update(self):
                if self._lock.acquire(False):
                    self._items.clear()
                    self._lock.release()
            """,
            rules=["R009"],
        )
        assert findings == []

    def test_wrapper_methods_exempt(self):
        findings = lint(
            """
            class Wrapper:
                def acquire(self):
                    return self._inner_lock.acquire()

                def __enter__(self):
                    self._inner_lock.acquire()
                    return self
            """,
            rules=["R009"],
        )
        assert findings == []

    def test_non_lock_receiver_ignored(self):
        findings = lint(
            """
            def fetch(self):
                self._connection.acquire()
            """,
            rules=["R009"],
        )
        assert findings == []


# ---------------------------------------------------------------- R010


class TestR010ThreadLifecycle:
    def test_untracked_thread_flagged(self):
        findings = lint(
            """
            import threading

            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()
            """,
            rules=["R010"],
        )
        assert rule_ids(findings) == ["R010"]
        assert "daemon" in findings[0].message

    def test_daemon_thread_clean(self):
        findings = lint(
            """
            import threading

            def start(self):
                self._thread = threading.Thread(target=self._loop, daemon=True)
                self._thread.start()
            """,
            rules=["R010"],
        )
        assert findings == []

    def test_joined_thread_clean(self):
        findings = lint(
            """
            import threading

            def run(self):
                worker = threading.Thread(target=self._loop)
                worker.start()
                worker.join()
            """,
            rules=["R010"],
        )
        assert findings == []


# ---------------------------------------------------------------- R011


class TestR011GenericException:
    def test_raise_exception_flagged(self):
        findings = lint(
            """
            def commit(self):
                raise Exception("commit failed")
            """,
            rules=["R011"],
        )
        assert rule_ids(findings) == ["R011"]
        assert "ReproError" in findings[0].message

    def test_raise_runtimeerror_flagged(self):
        findings = lint(
            """
            def commit(self):
                raise RuntimeError("commit failed")
            """,
            rules=["R011"],
        )
        assert rule_ids(findings) == ["R011"]

    def test_typed_error_clean(self):
        findings = lint(
            """
            from repro.errors import TransactionError

            def commit(self):
                raise TransactionError("commit failed")
            """,
            rules=["R011"],
        )
        assert findings == []

    def test_outside_repro_tree_exempt(self):
        findings = lint(
            """
            def main():
                raise RuntimeError("script failure")
            """,
            path="tools/some_script.py",
            rules=["R011"],
        )
        assert findings == []

    def test_bare_reraise_clean(self):
        findings = lint(
            """
            def commit(self):
                try:
                    work()
                except Exception:
                    raise
            """,
            rules=["R011"],
        )
        assert findings == []


# ---------------------------------------------------------------- R012


class TestR012InstrumentCatalog:
    def test_unknown_instrument_flagged(self):
        findings = lint(
            """
            def record(tel):
                tel.inc("serve.nonexistent_counter")
            """,
            rules=["R012"],
        )
        assert rule_ids(findings) == ["R012"]
        assert "serve.nonexistent_counter" in findings[0].message

    def test_catalogued_instrument_clean(self):
        findings = lint(
            """
            def record(tel, elapsed):
                tel.inc("serve.cache_hits")
                tel.observe("vacuum.index_merge_seconds", elapsed)
            """,
            rules=["R012"],
        )
        assert findings == []

    def test_non_dotted_and_dynamic_names_ignored(self):
        findings = lint(
            """
            def record(tel, name):
                tel.inc("plain_counter")
                tel.inc(name)
            """,
            rules=["R012"],
        )
        assert findings == []
