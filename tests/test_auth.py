"""Tests for role-based access control over graph and vector data."""

import numpy as np
import pytest

from repro.core.auth import AuthorizationError, Role
from repro.errors import ReproError


class TestRoles:
    def test_admin_sees_everything(self, loaded_post_db):
        db = loaded_post_db
        admin = db.access.role("admin")
        assert admin.can_access_type("Post")
        assert admin.allows("Post", {"language": "xx"})

    def test_default_deny(self, loaded_post_db):
        role = Role("nobody")
        assert not role.can_access_type("Post")

    def test_predicate_rule(self):
        role = Role("en-only", {"Post": lambda row: row["language"] == "en"})
        assert role.allows("Post", {"language": "en"})
        assert not role.allows("Post", {"language": "fr"})

    def test_duplicate_role_rejected(self, loaded_post_db):
        loaded_post_db.access.create_role("x")
        with pytest.raises(ReproError):
            loaded_post_db.access.create_role("x")

    def test_unknown_role(self, loaded_post_db):
        with pytest.raises(AuthorizationError):
            loaded_post_db.access.role("ghost")


class TestAuthorizationBitmaps:
    def test_full_access_wraps_status(self, loaded_post_db):
        db = loaded_post_db
        db.access.create_role("reader", {"Post": True})
        with db.snapshot() as snap:
            bitmaps = db.access.authorization_bitmaps("reader", snap, "Post")
        assert sum(b.count() for b in bitmaps) == 200

    def test_no_access_empty(self, loaded_post_db):
        db = loaded_post_db
        db.access.create_role("blind", {"Post": False})
        with db.snapshot() as snap:
            bitmaps = db.access.authorization_bitmaps("blind", snap, "Post")
        assert sum(b.count() for b in bitmaps) == 0

    def test_predicate_bitmap(self, loaded_post_db):
        db = loaded_post_db
        db.access.create_role(
            "en-reader", {"Post": lambda row: row["language"] == "en"}
        )
        with db.snapshot() as snap:
            bitmaps = db.access.authorization_bitmaps("en-reader", snap, "Post")
        assert sum(b.count() for b in bitmaps) == 100  # half the posts are en

    def test_graph_and_vector_views_agree(self, loaded_post_db):
        """Unified governance: the same rule gates both access paths."""
        db = loaded_post_db
        db.access.create_role(
            "long-only", {"Post": lambda row: row["length"] > 250}
        )
        with db.snapshot() as snap:
            graph_view = db.access.visible_vertices("long-only", snap, "Post")
            bitmaps = db.access.authorization_bitmaps("long-only", snap, "Post")
        bitmap_count = sum(b.count() for b in bitmaps)
        assert len(graph_view) == bitmap_count


class TestAuthorizedSearch:
    def test_unauthorized_vectors_never_returned(self, loaded_post_db):
        db = loaded_post_db
        db.access.create_role(
            "fr-analyst", {"Post": lambda row: row["language"] == "fr"}
        )
        q = db._test_vectors[3]  # post 3 is "en" (odd pks are en)
        result = db.access.authorized_search(
            "fr-analyst", ["Post.content_emb"], q, k=5
        )
        pks = {db.pk_for(t, v) for t, v in result}
        assert len(result) == 5
        assert all(pk % 2 == 0 for pk in pks)  # only fr posts
        assert 3 not in pks

    def test_admin_sees_exact_nearest(self, loaded_post_db):
        db = loaded_post_db
        q = db._test_vectors[3]
        result = db.access.authorized_search("admin", ["Post.content_emb"], q, k=1)
        assert next(iter(result)) == ("Post", db.vid_for("Post", 3))

    def test_denied_type_returns_nothing(self, loaded_post_db):
        db = loaded_post_db
        db.access.create_role("no-posts", {"Post": False})
        result = db.access.authorized_search(
            "no-posts", ["Post.content_emb"], db._test_vectors[0], k=5
        )
        assert len(result) == 0

    def test_user_filter_intersects_authorization(self, loaded_post_db):
        from repro import VertexSet

        db = loaded_post_db
        db.access.create_role(
            "fr-only", {"Post": lambda row: row["language"] == "fr"}
        )
        # user filter: first 50 posts; authorization: fr (even) only
        user_filter = VertexSet(
            ("Post", db.vid_for("Post", pk)) for pk in range(50)
        )
        result = db.access.authorized_search(
            "fr-only", ["Post.content_emb"], db._test_vectors[0], k=10,
            filter=user_filter,
        )
        pks = {db.pk_for(t, v) for t, v in result}
        assert all(pk < 50 and pk % 2 == 0 for pk in pks)

    def test_invalid_k(self, loaded_post_db):
        from repro.errors import VectorSearchError

        db = loaded_post_db
        with pytest.raises(VectorSearchError):
            db.access.authorized_search(
                "admin", ["Post.content_emb"], db._test_vectors[0], k=0
            )
