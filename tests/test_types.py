"""Tests for the distance kernels and value types."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import DimensionMismatchError, VectorSearchError
from repro.types import (
    DataType,
    Metric,
    batch_distances,
    distance,
    normalize,
    pairwise_distances,
)


class TestBatchDistances:
    def test_l2_is_squared_euclidean(self):
        q = np.array([0.0, 0.0], dtype=np.float32)
        vecs = np.array([[3.0, 4.0], [1.0, 0.0]], dtype=np.float32)
        out = batch_distances(q, vecs, Metric.L2)
        assert out == pytest.approx([25.0, 1.0])

    def test_ip_distance(self):
        q = np.array([1.0, 2.0], dtype=np.float32)
        vecs = np.array([[1.0, 2.0], [0.0, 0.0]], dtype=np.float32)
        out = batch_distances(q, vecs, Metric.IP)
        assert out == pytest.approx([1.0 - 5.0, 1.0])

    def test_cosine_identical_is_zero(self):
        q = np.array([1.0, 1.0], dtype=np.float32)
        out = batch_distances(q, np.array([[2.0, 2.0]], dtype=np.float32), Metric.COSINE)
        assert out[0] == pytest.approx(0.0, abs=1e-6)

    def test_cosine_orthogonal_is_one(self):
        q = np.array([1.0, 0.0], dtype=np.float32)
        out = batch_distances(q, np.array([[0.0, 5.0]], dtype=np.float32), Metric.COSINE)
        assert out[0] == pytest.approx(1.0, abs=1e-6)

    def test_cosine_zero_vector_safe(self):
        q = np.zeros(3, dtype=np.float32)
        out = batch_distances(q, np.ones((2, 3), dtype=np.float32), Metric.COSINE)
        assert np.all(np.isfinite(out))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            batch_distances(np.zeros(3), np.zeros((2, 4)), Metric.L2)

    def test_requires_2d_matrix(self):
        with pytest.raises(VectorSearchError):
            batch_distances(np.zeros(3), np.zeros(3), Metric.L2)


class TestPairwise:
    def test_matches_batch(self, rng):
        a = rng.standard_normal((5, 8)).astype(np.float32)
        b = rng.standard_normal((7, 8)).astype(np.float32)
        for metric in Metric:
            full = pairwise_distances(a, b, metric)
            for i in range(5):
                row = batch_distances(a[i], b, metric)
                assert np.allclose(full[i], row, atol=1e-4)

    def test_l2_self_diagonal_zero(self, rng):
        a = rng.standard_normal((4, 6)).astype(np.float32)
        full = pairwise_distances(a, a, Metric.L2)
        assert np.allclose(np.diag(full), 0.0, atol=1e-3)


class TestNormalize:
    def test_unit_norm(self, rng):
        v = rng.standard_normal((3, 5)).astype(np.float32)
        out = normalize(v)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-5)

    def test_zero_vector_unchanged(self):
        out = normalize(np.zeros(4, dtype=np.float32))
        assert np.all(out == 0)

    def test_1d_input(self):
        out = normalize(np.array([3.0, 4.0]))
        assert out == pytest.approx([0.6, 0.8])


class TestDataType:
    def test_numpy_dtype(self):
        assert DataType.FLOAT.numpy_dtype == np.float32
        assert DataType.DOUBLE.numpy_dtype == np.float64


@settings(max_examples=50, deadline=None)
@given(
    vecs=hnp.arrays(
        np.float32,
        st.tuples(st.integers(1, 10), st.just(8)),
        elements=st.floats(-100, 100, width=32),
    )
)
def test_l2_nonnegative_property(vecs):
    q = vecs[0]
    out = batch_distances(q, vecs, Metric.L2)
    assert np.all(out >= 0)
    assert out[0] == pytest.approx(0.0, abs=1e-2)


@settings(max_examples=50, deadline=None)
@given(
    vecs=hnp.arrays(
        np.float32,
        st.tuples(st.integers(2, 8), st.just(6)),
        elements=st.floats(-50, 50, width=32),
    )
)
def test_distance_symmetry_property(vecs):
    a, b = vecs[0], vecs[1]
    for metric in (Metric.L2, Metric.COSINE):
        assert distance(a, b, metric) == pytest.approx(
            distance(b, a, metric), abs=1e-3
        )
