"""Tests for the schema catalog and embedding DDL."""

import pytest

from repro import Attribute, AttrType, GraphSchema, Metric
from repro.core.embedding import EmbeddingSpace, EmbeddingType, check_compatible
from repro.errors import (
    EmbeddingCompatibilityError,
    SchemaError,
    UnknownTypeError,
)
from repro.types import DataType, IndexType


def person_attrs():
    return [
        Attribute("id", AttrType.INT, primary_key=True),
        Attribute("name", AttrType.STRING),
    ]


class TestVertexType:
    def test_create_and_lookup(self):
        schema = GraphSchema()
        schema.create_vertex_type("Person", person_attrs())
        vtype = schema.vertex_type("Person")
        assert vtype.primary_key == "id"
        assert vtype.attribute("name").attr_type is AttrType.STRING

    def test_requires_primary_key(self):
        schema = GraphSchema()
        with pytest.raises(SchemaError, match="PRIMARY KEY"):
            schema.create_vertex_type("X", [Attribute("a", AttrType.INT)])

    def test_duplicate_primary_key(self):
        with pytest.raises(SchemaError):
            GraphSchema().create_vertex_type(
                "X",
                [
                    Attribute("a", AttrType.INT, primary_key=True),
                    Attribute("b", AttrType.INT, primary_key=True),
                ],
            )

    def test_duplicate_attribute(self):
        with pytest.raises(SchemaError, match="duplicate"):
            GraphSchema().create_vertex_type(
                "X",
                [
                    Attribute("a", AttrType.INT, primary_key=True),
                    Attribute("a", AttrType.STRING),
                ],
            )

    def test_duplicate_type(self):
        schema = GraphSchema()
        schema.create_vertex_type("Person", person_attrs())
        with pytest.raises(SchemaError, match="already exists"):
            schema.create_vertex_type("Person", person_attrs())

    def test_unknown_lookup(self):
        with pytest.raises(UnknownTypeError):
            GraphSchema().vertex_type("Nope")

    def test_unknown_attribute(self):
        schema = GraphSchema()
        schema.create_vertex_type("Person", person_attrs())
        with pytest.raises(UnknownTypeError):
            schema.vertex_type("Person").attribute("age")


class TestEdgeType:
    def test_create(self):
        schema = GraphSchema()
        schema.create_vertex_type("Person", person_attrs())
        schema.create_edge_type("knows", "Person", "Person", directed=False)
        assert not schema.edge_type("knows").directed

    def test_unknown_endpoint(self):
        schema = GraphSchema()
        schema.create_vertex_type("Person", person_attrs())
        with pytest.raises(UnknownTypeError):
            schema.create_edge_type("e", "Person", "Missing")

    def test_edge_no_primary_key(self):
        schema = GraphSchema()
        schema.create_vertex_type("Person", person_attrs())
        with pytest.raises(SchemaError):
            schema.create_edge_type(
                "e", "Person", "Person",
                attributes=[Attribute("w", AttrType.INT, primary_key=True)],
            )


class TestEmbeddingDDL:
    def test_add_inline(self):
        schema = GraphSchema()
        schema.create_vertex_type("Post", person_attrs())
        emb = schema.add_embedding_attribute(
            "Post", "emb", dimension=128, model="GPT4", metric=Metric.COSINE
        )
        assert emb.dimension == 128
        assert schema.vertex_type("Post").embedding("emb") is emb
        assert schema.embedding_attribute("Post.emb")[1] is emb

    def test_add_via_space(self):
        schema = GraphSchema()
        schema.create_vertex_type("Post", person_attrs())
        schema.create_vertex_type("Comment", person_attrs())
        schema.create_embedding_space("gpt4", dimension=64, model="GPT4")
        a = schema.add_embedding_attribute("Post", "emb", space="gpt4")
        b = schema.add_embedding_attribute("Comment", "emb", space="gpt4")
        assert a.is_compatible_with(b)
        assert a.space == "gpt4"

    def test_requires_dimension(self):
        schema = GraphSchema()
        schema.create_vertex_type("Post", person_attrs())
        with pytest.raises(SchemaError, match="DIMENSION"):
            schema.add_embedding_attribute("Post", "emb")

    def test_name_collision_with_attribute(self):
        schema = GraphSchema()
        schema.create_vertex_type("Post", person_attrs())
        with pytest.raises(SchemaError):
            schema.add_embedding_attribute("Post", "name", dimension=4)

    def test_unknown_space(self):
        schema = GraphSchema()
        schema.create_vertex_type("Post", person_attrs())
        with pytest.raises(UnknownTypeError):
            schema.add_embedding_attribute("Post", "emb", space="missing")

    def test_bad_qualified_reference(self):
        schema = GraphSchema()
        with pytest.raises(UnknownTypeError):
            schema.embedding_attribute("no_dot_here")


class TestCompatibility:
    def make(self, **kw):
        base = dict(
            name="e", dimension=64, model="GPT4",
            index=IndexType.HNSW, datatype=DataType.FLOAT, metric=Metric.COSINE,
        )
        base.update(kw)
        return EmbeddingType(**base)

    def test_identical_compatible(self):
        a, b = self.make(), self.make(name="f")
        assert check_compatible([("A.e", a), ("B.f", b)]) is a

    def test_index_may_differ(self):
        a = self.make()
        b = self.make(index=IndexType.FLAT)
        assert a.is_compatible_with(b)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("dimension", 32),
            ("model", "BERT"),
            ("datatype", DataType.DOUBLE),
            ("metric", Metric.L2),
        ],
    )
    def test_mismatch_rejected(self, field, value):
        a = self.make()
        b = self.make(**{field: value})
        with pytest.raises(EmbeddingCompatibilityError):
            check_compatible([("A.e", a), ("B.e", b)])

    def test_empty_rejected(self):
        with pytest.raises(EmbeddingCompatibilityError):
            check_compatible([])

    def test_validate_vector(self):
        import numpy as np

        emb = self.make(dimension=4)
        out = emb.validate_vector([1, 2, 3, 4])
        assert out.dtype == np.float32
        from repro.errors import DimensionMismatchError

        with pytest.raises(DimensionMismatchError):
            emb.validate_vector([1, 2, 3])

    def test_space_make_attribute(self):
        space = EmbeddingSpace("s", dimension=8, model="m")
        attr = space.make_attribute("emb")
        assert attr.space == "s"
        assert attr.dimension == 8

    def test_invalid_dimension(self):
        with pytest.raises(SchemaError):
            EmbeddingType(name="e", dimension=0)
