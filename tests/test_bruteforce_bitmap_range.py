"""Tests for the brute-force index, bitmaps, and DiskANN-style range search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VectorSearchError
from repro.index import Bitmap, BruteForceIndex, HNSWIndex, range_search_via_topk
from repro.types import Metric


class TestBruteForce:
    def test_exact_topk(self, rng):
        data = rng.standard_normal((100, 8)).astype(np.float32)
        index = BruteForceIndex(8, Metric.L2)
        index.update_items(np.arange(100), data)
        q = data[17]
        result = index.topk_search(q, 1)
        assert result.ids[0] == 17

    def test_update_overwrites(self, rng):
        index = BruteForceIndex(4, Metric.L2)
        index.update_items([1], np.ones((1, 4), dtype=np.float32))
        index.update_items([1], np.full((1, 4), 2.0, dtype=np.float32))
        assert len(index) == 1
        assert np.allclose(index.get_embedding(1), 2.0)

    def test_delete_swap_remove(self, rng):
        data = rng.standard_normal((10, 4)).astype(np.float32)
        index = BruteForceIndex(4, Metric.L2)
        index.update_items(np.arange(10), data)
        index.delete_items([3, 7])
        assert len(index) == 8
        assert 3 not in index
        # survivors still retrievable at correct values
        for i in (0, 9, 5):
            assert np.allclose(index.get_embedding(i), data[i])

    def test_delete_missing_is_noop(self):
        index = BruteForceIndex(4, Metric.L2)
        index.delete_items([42])
        assert len(index) == 0

    def test_filter_fn(self, rng):
        data = rng.standard_normal((50, 4)).astype(np.float32)
        index = BruteForceIndex(4, Metric.L2)
        index.update_items(np.arange(50), data)
        result = index.topk_search(data[0], 10, filter_fn=lambda i: i % 2 == 0)
        assert all(i % 2 == 0 for i in result.ids)

    def test_range_search_exact(self, rng):
        data = rng.standard_normal((200, 8)).astype(np.float32)
        index = BruteForceIndex(8, Metric.L2)
        index.update_items(np.arange(200), data)
        q = data[0]
        result = index.range_search(q, threshold=4.0)
        dists = np.einsum("ij,ij->i", data - q, data - q)
        expected = set(np.flatnonzero(dists < 4.0).tolist())
        assert set(result.ids.tolist()) == expected

    def test_invalid_k(self):
        index = BruteForceIndex(4, Metric.L2)
        index.update_items([0], np.zeros((1, 4), dtype=np.float32))
        with pytest.raises(VectorSearchError):
            index.topk_search(np.zeros(4), 0)

    def test_empty_search(self):
        index = BruteForceIndex(4, Metric.L2)
        assert len(index.topk_search(np.zeros(4), 3)) == 0


class TestBitmap:
    def test_wrap_shares_memory(self):
        mask = np.array([True, False, True])
        bitmap = Bitmap.wrap(mask)
        mask[1] = True
        assert bitmap.is_valid(1)  # wrap = no copy (status-structure reuse)

    def test_copy_by_default(self):
        mask = np.array([True, False])
        bitmap = Bitmap(mask)
        mask[1] = True
        assert not bitmap.is_valid(1)

    def test_from_offsets(self):
        bitmap = Bitmap.from_offsets(10, [2, 5])
        assert bitmap.count() == 2
        assert bitmap.is_valid(2) and bitmap.is_valid(5)
        assert not bitmap.is_valid(3)

    def test_intersect_union(self):
        a = Bitmap.from_offsets(6, [0, 1, 2])
        b = Bitmap.from_offsets(6, [2, 3])
        assert a.intersect(b).valid_offsets().tolist() == [2]
        assert sorted(a.union(b).valid_offsets().tolist()) == [0, 1, 2, 3]

    def test_out_of_range_invalid(self):
        bitmap = Bitmap.full(4)
        assert not bitmap.is_valid(10)
        assert not bitmap.as_filter()(10)

    def test_count_cached_and_correct(self):
        bitmap = Bitmap.from_offsets(100, range(0, 100, 7))
        assert bitmap.count() == len(range(0, 100, 7))
        assert bitmap.count() == bitmap.count()

    def test_full_empty(self):
        assert Bitmap.full(5).count() == 5
        assert Bitmap.empty(5).count() == 0


class TestRangeSearch:
    def _indexes(self, rng, n=600):
        data = rng.standard_normal((n, 8)).astype(np.float32)
        hnsw = HNSWIndex(8, Metric.L2, M=8, ef_construction=64)
        hnsw.update_items(np.arange(n), data)
        bf = BruteForceIndex(8, Metric.L2)
        bf.update_items(np.arange(n), data)
        return hnsw, bf, data

    def test_matches_bruteforce(self, rng):
        hnsw, bf, data = self._indexes(rng)
        q = data[5]
        approx = set(hnsw.range_search(q, threshold=3.0, ef=256).ids.tolist())
        exact = set(bf.range_search(q, threshold=3.0).ids.tolist())
        # approximate: allow small misses but no false positives beyond radius
        assert approx.issubset(set(bf.range_search(q, threshold=3.0).ids.tolist()))
        if exact:
            assert len(approx & exact) / len(exact) > 0.8

    def test_all_within_threshold(self, rng):
        hnsw, _, data = self._indexes(rng)
        result = hnsw.range_search(data[0], threshold=5.0, ef=128)
        assert np.all(result.distances < 5.0)

    def test_empty_result(self, rng):
        hnsw, _, data = self._indexes(rng, n=50)
        result = hnsw.range_search(data[0] + 1000.0, threshold=0.001)
        assert len(result) == 0

    def test_grows_k_until_median(self, rng):
        hnsw, bf, data = self._indexes(rng, n=300)
        # A generous radius forces multiple doubling rounds.
        exact = bf.range_search(data[0], threshold=10.0)
        approx = range_search_via_topk(hnsw, data[0], 10.0, initial_k=4, ef=256)
        assert len(approx) >= 0.8 * len(exact)

    def test_invalid_params(self, rng):
        hnsw, _, _ = self._indexes(rng, n=20)
        with pytest.raises(VectorSearchError):
            range_search_via_topk(hnsw, np.zeros(8, dtype=np.float32), 1.0, initial_k=0)

    def test_empty_index(self):
        hnsw = HNSWIndex(8, Metric.L2)
        assert len(range_search_via_topk(hnsw, np.zeros(8, dtype=np.float32), 1.0)) == 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), threshold=st.floats(0.5, 20.0))
def test_range_never_exceeds_threshold_property(seed, threshold):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((80, 6)).astype(np.float32)
    index = BruteForceIndex(6, Metric.L2)
    index.update_items(np.arange(80), data)
    result = index.range_search(data[0], threshold)
    assert np.all(result.distances < threshold)
