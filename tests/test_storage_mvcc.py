"""Tests for segmented storage, MVCC transactions, vacuum, and the WAL."""

import numpy as np
import pytest

from repro import Attribute, AttrType, GraphSchema, Metric
from repro.errors import TransactionError
from repro.graph.storage import GraphStore


def make_schema():
    schema = GraphSchema()
    schema.create_vertex_type(
        "Person",
        [
            Attribute("id", AttrType.INT, primary_key=True),
            Attribute("name", AttrType.STRING),
            Attribute("age", AttrType.INT),
        ],
    )
    schema.create_edge_type("knows", "Person", "Person")
    schema.add_embedding_attribute("Person", "emb", dimension=4, metric=Metric.L2)
    return schema


@pytest.fixture
def store():
    return GraphStore(make_schema(), segment_size=4)


class TestBasicCrud:
    def test_insert_and_read(self, store):
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {"name": "a", "age": 30})
        with store.snapshot() as snap:
            vid = snap.vid_for_pk("Person", 1)
            assert snap.get_attr("Person", vid, "name") == "a"
            assert snap.get_attr("Person", vid, "age") == 30

    def test_partial_upsert_merges(self, store):
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {"name": "a", "age": 30})
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {"age": 31})
        with store.snapshot() as snap:
            vid = snap.vid_for_pk("Person", 1)
            assert snap.get_attr("Person", vid, "name") == "a"
            assert snap.get_attr("Person", vid, "age") == 31

    def test_delete_vertex(self, store):
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {"name": "a"})
        with store.begin() as txn:
            txn.delete_vertex("Person", 1)
        with store.snapshot() as snap:
            assert snap.vid_for_pk("Person", 1) is None
            assert snap.count("Person") == 0

    def test_multi_segment_allocation(self, store):
        with store.begin() as txn:
            for i in range(10):  # segment_size=4 -> 3 segments
                txn.upsert_vertex("Person", i, {"name": f"p{i}"})
        with store.snapshot() as snap:
            assert snap.num_segments("Person") == 3
            assert snap.count("Person") == 10

    def test_edges_and_reverse(self, store):
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {})
            txn.upsert_vertex("Person", 2, {})
            txn.add_edge("knows", 1, 2)
        with store.snapshot() as snap:
            v1 = snap.vid_for_pk("Person", 1)
            v2 = snap.vid_for_pk("Person", 2)
            assert snap.neighbors("Person", v1, "knows") == [v2]
            assert snap.neighbors("Person", v2, "knows", reverse=True) == [v1]
            assert snap.degree("Person", v1, "knows") == 1

    def test_delete_edge(self, store):
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {})
            txn.upsert_vertex("Person", 2, {})
            txn.add_edge("knows", 1, 2)
        with store.begin() as txn:
            txn.delete_edge("knows", 1, 2)
        with store.snapshot() as snap:
            v1 = snap.vid_for_pk("Person", 1)
            assert snap.neighbors("Person", v1, "knows") == []

    def test_edge_requires_vertices(self, store):
        txn = store.begin()
        txn.add_edge("knows", 1, 2)
        with pytest.raises(TransactionError):
            txn.commit()


class TestTransactionSemantics:
    def test_uncommitted_invisible(self, store):
        txn = store.begin()
        txn.upsert_vertex("Person", 1, {"name": "a"})
        with store.snapshot() as snap:
            assert snap.vid_for_pk("Person", 1) is None
        txn.commit()
        with store.snapshot() as snap:
            assert snap.vid_for_pk("Person", 1) is not None

    def test_rollback_discards(self, store):
        txn = store.begin()
        txn.upsert_vertex("Person", 1, {"name": "a"})
        txn.rollback()
        with store.snapshot() as snap:
            assert snap.count("Person") == 0

    def test_write_after_commit_fails(self, store):
        txn = store.begin()
        txn.upsert_vertex("Person", 1, {})
        txn.commit()
        with pytest.raises(TransactionError):
            txn.upsert_vertex("Person", 2, {})

    def test_context_manager_rolls_back_on_error(self, store):
        with pytest.raises(ValueError):
            with store.begin() as txn:
                txn.upsert_vertex("Person", 1, {})
                raise ValueError("boom")
        with store.snapshot() as snap:
            assert snap.count("Person") == 0

    def test_tids_monotonic(self, store):
        tids = []
        for i in range(3):
            txn = store.begin()
            txn.upsert_vertex("Person", i, {})
            tids.append(txn.commit())
        assert tids == sorted(tids)
        assert len(set(tids)) == 3


class TestSnapshotIsolation:
    def test_old_snapshot_sees_old_value(self, store):
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {"name": "old"})
        snap = store.snapshot()
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {"name": "new"})
        vid = snap.vid_for_pk("Person", 1)
        assert snap.get_attr("Person", vid, "name") == "old"
        with store.snapshot() as fresh:
            assert fresh.get_attr("Person", vid, "name") == "new"
        snap.release()

    def test_snapshot_survives_vacuum(self, store):
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {"name": "v1"})
        snap = store.snapshot()
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {"name": "v2"})
        store.vacuum()
        vid = snap.vid_for_pk("Person", 1)
        assert snap.get_attr("Person", vid, "name") == "v1"
        snap.release()

    def test_vacuum_folds_deltas(self, store):
        with store.begin() as txn:
            for i in range(8):
                txn.upsert_vertex("Person", i, {"age": i})
        assert store.pending_delta_count() == 8
        rebuilt = store.vacuum()
        assert rebuilt == 2  # 8 vertices / segment_size 4
        # after GC with no old snapshots the deltas are gone
        assert store.pending_delta_count() == 0
        with store.snapshot() as snap:
            assert snap.count("Person") == 8

    def test_deleted_invisible_after_vacuum(self, store):
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {})
            txn.upsert_vertex("Person", 2, {})
        with store.begin() as txn:
            txn.delete_vertex("Person", 1)
        store.vacuum()
        with store.snapshot() as snap:
            assert snap.count("Person") == 1


class TestEmbeddingHook:
    def test_hook_called_with_same_tid(self, store):
        calls = []
        store.register_embedding_hook(lambda tid, ops: calls.append((tid, ops)))
        txn = store.begin()
        txn.upsert_vertex("Person", 1, {})
        txn.set_embedding("Person", 1, "emb", [1, 2, 3, 4])
        tid = txn.commit()
        assert len(calls) == 1
        assert calls[0][0] == tid
        action, vtype, vid, attr, vector = calls[0][1][0]
        assert (action, vtype, attr) == ("upsert", "Person", "emb")
        assert np.allclose(vector, [1, 2, 3, 4])

    def test_vertex_delete_cascades_embedding_delete(self, store):
        calls = []
        store.register_embedding_hook(lambda tid, ops: calls.extend(ops))
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {})
            txn.set_embedding("Person", 1, "emb", [0, 0, 0, 0])
        with store.begin() as txn:
            txn.delete_vertex("Person", 1)
        deletes = [op for op in calls if op[0] == "delete"]
        assert len(deletes) == 1

    def test_embedding_dimension_validated(self, store):
        txn = store.begin()
        txn.upsert_vertex("Person", 1, {})
        from repro.errors import DimensionMismatchError

        with pytest.raises(DimensionMismatchError):
            txn.set_embedding("Person", 1, "emb", [1.0, 2.0])


class TestWalRecovery:
    def test_recover_from_wal(self, tmp_path):
        wal = tmp_path / "store.wal"
        store = GraphStore(make_schema(), segment_size=4, wal_path=wal)
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {"name": "a"})
            txn.upsert_vertex("Person", 2, {"name": "b"})
            txn.add_edge("knows", 1, 2)
        with store.begin() as txn:
            txn.delete_vertex("Person", 2)
        store.wal.close()

        recovered = GraphStore.recover(make_schema(), wal, segment_size=4)
        with recovered.snapshot() as snap:
            assert snap.vid_for_pk("Person", 1) is not None
            assert snap.vid_for_pk("Person", 2) is None
            assert snap.count("Person") == 1
        assert recovered.last_tid == store.last_tid

    def test_recover_replays_embeddings_through_hook(self, tmp_path):
        wal = tmp_path / "store.wal"
        store = GraphStore(make_schema(), segment_size=4, wal_path=wal)
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {})
            txn.set_embedding("Person", 1, "emb", [1, 2, 3, 4])
        store.wal.close()
        seen = []
        GraphStore.recover(
            make_schema(), wal, segment_size=4,
            embedding_hook=lambda tid, ops: seen.extend(ops),
        )
        assert len(seen) == 1
        assert np.allclose(seen[0][4], [1, 2, 3, 4])

    def test_recovery_idempotent(self, tmp_path):
        wal = tmp_path / "store.wal"
        store = GraphStore(make_schema(), segment_size=4, wal_path=wal)
        with store.begin() as txn:
            txn.upsert_vertex("Person", 1, {"name": "a"})
        store.wal.close()
        first = GraphStore.recover(make_schema(), wal, segment_size=4)
        first.wal.close()
        second = GraphStore.recover(make_schema(), wal, segment_size=4)
        with second.snapshot() as snap:
            assert snap.count("Person") == 1
