"""Telemetry through the real distributed query path.

The acceptance scenario for the observability layer: a distributed top-k
under a seeded straggler plan must produce a trace tree with coordinator /
machine / segment spans *including the hedged duplicate dispatch*, and the
metrics snapshot must report the hedge counter.  A second battery pins the
contract that telemetry never changes results: with telemetry disabled the
search output is identical to an uninstrumented run.
"""

import json

import numpy as np
import pytest

from repro.core.distributed import DistributedSearcher
from repro.faults import FaultInjector, FaultPlan, ResiliencePolicy
from repro.telemetry import (
    NullTelemetry,
    Telemetry,
    format_span_tree,
    use_telemetry,
)


def make_searcher(db, plan=None, policy=None, rf=2, machines=2):
    store = db.service.store("Post", "content_emb")
    return DistributedSearcher(
        store,
        machines,
        replication_factor=rf,
        injector=FaultInjector(plan) if plan is not None else None,
        policy=policy,
    )


class TestStragglerTrace:
    """A hedged query leaves a complete trace and counts its hedges."""

    @pytest.fixture
    def hedged(self, loaded_post_db):
        db = loaded_post_db
        # Machine 0 — the first holder of every segment, hence the primary
        # dispatch target — straggles 10^4x for the whole run (the straggle
        # clock is the query ordinal); with rf=2 machine 1 is always an
        # alternate, and hedge_after=50ms guarantees the projected cost
        # (elapsed * 1e4 >> 50ms) crosses the threshold on every segment.
        plan = FaultPlan(seed=31).straggle(0, factor=1e4, start=0.0, end=100.0)
        searcher = make_searcher(
            db, plan, policy=ResiliencePolicy(hedge_after=0.05)
        )
        return db, searcher

    def test_trace_tree_contains_hedge_span(self, hedged):
        db, searcher = hedged
        telemetry = Telemetry()
        with use_telemetry(telemetry), db.snapshot() as snap:
            output = searcher.search(
                db._test_vectors[3], 10, snapshot_tid=snap.tid, ef=64
            )

        assert output.hedges >= 1
        assert "hedge" in searcher.injector.trace_kinds()

        trace = telemetry.last_trace()
        assert trace.name == "coordinator.query"
        dispatches = trace.find("machine.dispatch")
        segments = trace.find("segment.search")
        hedgespans = trace.find("hedge.dispatch")
        assert len(dispatches) == searcher.store.num_segments
        assert len(segments) >= searcher.store.num_segments
        assert len(hedgespans) == output.hedges
        # The duplicate dispatch nests under the straggling primary's span
        # and names both parties of the race.
        hedge = hedgespans[0]
        assert hedge.attrs["primary"] == 0
        assert hedge.attrs["machine_id"] == 1
        assert any(hedge in d.children for d in dispatches)
        assert trace.attrs["hedges"] == output.hedges
        # The rendered tree is what README shows; it must mention the hedge.
        assert "hedge.dispatch" in format_span_tree(trace)

    def test_snapshot_reports_hedge_counter(self, hedged):
        db, searcher = hedged
        telemetry = Telemetry()
        with use_telemetry(telemetry), db.snapshot() as snap:
            for query in db._test_vectors[:3]:
                searcher.search(query, 10, snapshot_tid=snap.tid, ef=64)
        snapshot = telemetry.registry.snapshot()
        assert snapshot["counters"]["resilience.hedges"] >= 3
        assert snapshot["counters"]["query.count"] == 3
        assert snapshot["counters"]["hnsw.searches"] >= 3 * searcher.store.num_segments
        assert snapshot["histograms"]["query.latency_seconds"]["count"] == 3

    def test_hedging_does_not_change_results(self, hedged):
        db, searcher = hedged
        baseline = make_searcher(db)
        telemetry = Telemetry()
        with use_telemetry(telemetry), db.snapshot() as snap:
            want = baseline.search(db._test_vectors[0], 10, snapshot_tid=snap.tid, ef=64)
            got = searcher.search(db._test_vectors[0], 10, snapshot_tid=snap.tid, ef=64)
        assert np.array_equal(want.result.ids, got.result.ids)
        assert np.allclose(want.result.distances, got.result.distances)

    def test_profile_attached_and_serializable(self, hedged):
        db, searcher = hedged
        with use_telemetry(Telemetry()), db.snapshot() as snap:
            output = searcher.search(
                db._test_vectors[5], 10, snapshot_tid=snap.tid, ef=64
            )
        profile = output.profile
        assert profile is not None
        assert profile.metrics["hedges"] == output.hedges
        assert profile.metrics["coverage"] == 1.0
        payload = json.dumps(profile.to_dict())
        assert "hedge.dispatch" in payload


class TestDegradedQueryMetrics:
    """Partial coverage and breaker activity show up in the snapshot."""

    def test_partial_coverage_metric(self, loaded_post_db):
        db = loaded_post_db
        plan = FaultPlan(seed=32).fail_segment(1, failures=10)
        searcher = make_searcher(
            db, plan, rf=1, policy=ResiliencePolicy(allow_partial=True)
        )
        telemetry = Telemetry()
        with use_telemetry(telemetry), db.snapshot() as snap:
            output = searcher.search(
                db._test_vectors[0], 5, snapshot_tid=snap.tid, ef=64
            )
        assert output.coverage < 1.0

        snapshot = telemetry.registry.snapshot()
        assert snapshot["counters"]["resilience.degraded_queries"] == 1
        assert snapshot["counters"]["resilience.retries"] >= 3
        assert snapshot["counters"]["resilience.breaker_open"] >= 1

        trace = telemetry.last_trace()
        assert trace.attrs["coverage"] == output.coverage
        assert trace.find("segment-lost"), "lost segment must appear as an event"
        assert output.profile.metrics["failed_segments"] == [1]


class TestDisabledPathUnchanged:
    """With telemetry off, search output is identical and profile-free."""

    def test_results_identical_across_modes(self, loaded_post_db):
        db = loaded_post_db
        query = db._test_vectors[9]
        searcher = make_searcher(db)
        with db.snapshot() as snap:
            plain = searcher.search(query, 10, snapshot_tid=snap.tid, ef=64)
            with use_telemetry(NullTelemetry()):
                null = searcher.search(query, 10, snapshot_tid=snap.tid, ef=64)
            with use_telemetry(Telemetry()):
                live = searcher.search(query, 10, snapshot_tid=snap.tid, ef=64)
        for other in (null, live):
            assert np.array_equal(plain.result.ids, other.result.ids)
            assert np.array_equal(plain.result.distances, other.result.distances)
            assert other.coverage == plain.coverage == 1.0
        assert plain.profile is None
        assert null.profile is None
        assert live.profile is not None
