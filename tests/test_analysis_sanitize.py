"""Run the MVCC/vacuum suites under the runtime lock-order sanitizer.

Re-executes the concurrency-heavy tier-1 suites in a subprocess with
``REPRO_SANITIZE=1`` so every repro lock is instrumented, and asserts the
recorded lock-order graph has no inversions and the commit critical section
is never entered while other locks are held (paper Sec. 4.3: commits and the
two-stage vacuum must not be able to deadlock against each other).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

SANITIZED_SUITES = [
    "tests/test_storage_mvcc.py",
    "tests/test_delta_vacuum.py",
    "tests/test_vacuum_advanced.py",
]


@pytest.mark.slow
def test_mvcc_vacuum_suites_clean_under_sanitizer():
    env = dict(os.environ)
    env["REPRO_SANITIZE"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", *SANITIZED_SUITES],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=env,
        timeout=540,
    )
    output = proc.stdout + proc.stderr
    assert proc.returncode == 0, output
    # conftest prints the sanitizer summary even under -q; the fixture gate
    # already failed the inner run on violations, but check the counters too.
    summary = re.search(
        r"repro-sanitizer: (\d+) instrumented lock\(s\), \d+ acquisition\(s\), "
        r"\d+ ordering\(s\), (\d+) lock-order inversion\(s\), "
        r"(\d+) held-across-commit violation\(s\)",
        output,
    )
    assert summary is not None, output
    instrumented, inversions, violations = map(int, summary.groups())
    assert inversions == 0, output
    assert violations == 0, output
    # The run must actually have instrumented something, or the whole
    # exercise silently tested nothing.  (Parsed, not substring-matched: a
    # total like "470" contains "0 instrumented lock(s)" as a substring.)
    assert instrumented > 0, output
