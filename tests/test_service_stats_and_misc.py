"""Remaining coverage: store stats, error paths, and misc plumbing."""

import numpy as np
import pytest

from repro import Metric, TigerVectorDB
from repro.errors import ReproError, UnknownTypeError


class TestStoreStats:
    def test_stats_shape(self, loaded_post_db):
        stats = loaded_post_db.service.store("Post", "content_emb").stats()
        assert stats["vertex_type"] == "Post"
        assert stats["attribute"] == "content_emb"
        assert stats["segments"] == 4
        assert stats["live_vectors"] == 200
        assert stats["pending_deltas"] == 0
        assert len(stats["index"]) == 4
        assert all(s["num_vectors"] > 0 for s in stats["index"])

    def test_pending_counts_after_writes(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        with db.begin() as txn:
            txn.set_embedding("Post", 0, "content_emb", np.zeros(16, np.float32))
            txn.set_embedding("Post", 1, "content_emb", np.zeros(16, np.float32))
        assert store.stats()["pending_deltas"] == 2


class TestServiceErrorPaths:
    def test_store_for_unknown_attribute(self, post_db):
        with pytest.raises(UnknownTypeError):
            post_db.service.store("Post", "nope")

    def test_store_for_unknown_type(self, post_db):
        with pytest.raises(UnknownTypeError):
            post_db.service.store("Ghost", "emb")

    def test_store_identity_cached(self, post_db):
        a = post_db.service.store("Post", "content_emb")
        b = post_db.service.store("Post", "content_emb")
        assert a is b

    def test_segment_size_validation(self):
        from repro import GraphSchema
        from repro.graph.storage import GraphStore

        with pytest.raises(ReproError):
            GraphStore(GraphSchema(), segment_size=0)


class TestGetEmbeddingWindows:
    def test_latest_spans_all_stages(self, loaded_post_db):
        """get_embedding default view covers memory, files, and snapshots."""
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        vid = db.vid_for("Post", 11)
        # stage 1: in-memory delta
        with db.begin() as txn:
            txn.set_embedding("Post", 11, "content_emb", np.full(16, 1.0, np.float32))
        assert store.get_embedding(vid)[0] == 1.0
        # stage 2: flushed delta file
        db.vacuum_manager.delta_merge(store)
        assert store.get_embedding(vid)[0] == 1.0
        # stage 3: merged into the index snapshot
        db.vacuum_manager.index_merge(store)
        assert store.get_embedding(vid)[0] == 1.0

    def test_reader_before_first_vector(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        vid = db.vid_for("Post", 0)
        assert store.get_embedding(vid, snapshot_tid=0) is None


class TestMetricsConfiguration:
    def test_ip_metric_end_to_end(self, rng):
        db = TigerVectorDB(segment_size=32)
        db.run_gsql(
            "CREATE VERTEX D (id INT PRIMARY KEY);"
            "ALTER VERTEX D ADD EMBEDDING ATTRIBUTE e "
            "(DIMENSION = 4, METRIC = IP);"
        )
        assert db.schema.vertex_type("D").embedding("e").metric is Metric.IP
        with db.begin() as txn:
            for i in range(20):
                txn.upsert_vertex("D", i, {})
                txn.set_embedding("D", i, "e", rng.standard_normal(4))
            # one vector with a huge inner product against the query axis
            txn.upsert_vertex("D", 99, {})
            txn.set_embedding("D", 99, "e", [10.0, 0, 0, 0])
        db.vacuum()
        r = db.run_gsql(
            "SELECT s FROM (s:D) ORDER BY VECTOR_DIST(s.e, [1.0, 0, 0, 0]) LIMIT 1;"
        )
        assert r.result.ranking[0][0] == ("D", db.vid_for("D", 99))
        db.close()

    def test_cosine_metric_end_to_end(self, rng):
        db = TigerVectorDB(segment_size=32)
        db.run_gsql(
            "CREATE VERTEX D (id INT PRIMARY KEY);"
            "ALTER VERTEX D ADD EMBEDDING ATTRIBUTE e "
            "(DIMENSION = 4, METRIC = COSINE);"
        )
        with db.begin() as txn:
            txn.upsert_vertex("D", 1, {})
            txn.set_embedding("D", 1, "e", [5.0, 0, 0, 0])  # same direction
            txn.upsert_vertex("D", 2, {})
            txn.set_embedding("D", 2, "e", [0.0, 1.0, 0, 0])
        db.vacuum()
        r = db.run_gsql(
            "SELECT s FROM (s:D) ORDER BY VECTOR_DIST(s.e, [0.1, 0, 0, 0]) LIMIT 1;"
        )
        assert r.result.ranking[0][0] == ("D", db.vid_for("D", 1))
        db.close()
