"""Tests for the interactive GSQL shell."""

import io

import pytest

from repro.shell import GSQLShell


@pytest.fixture
def shell():
    out = io.StringIO()
    sh = GSQLShell(out=out)
    yield sh, out
    sh.db.close()


def feed_all(sh, lines):
    for line in lines:
        if not sh.feed(line):
            return False
    return True


class TestMetaCommands:
    def test_help(self, shell):
        sh, out = shell
        sh.feed("\\h")
        assert "meta-commands" in out.getvalue().lower()

    def test_quit(self, shell):
        sh, _ = shell
        assert sh.feed("\\q") is False
        assert sh.feed("exit") is False

    def test_unknown_meta(self, shell):
        sh, out = shell
        sh.feed("\\bogus")
        assert "unknown meta-command" in out.getvalue()

    def test_seed_and_schema(self, shell):
        sh, out = shell
        sh.feed("\\seed 20 4")
        sh.feed("\\schema")
        text = out.getvalue()
        assert "seeded 20 Item vertices" in text
        assert "EMBEDDING emb: dim=4" in text

    def test_seed_usage_error(self, shell):
        sh, out = shell
        sh.feed("\\seed nope")
        assert "usage" in out.getvalue()


class TestStatements:
    def test_ddl_then_query(self, shell):
        sh, out = shell
        feed_all(sh, [
            "CREATE VERTEX Doc (id INT PRIMARY KEY, title STRING);",
            "\\seed 30 4",
            "SELECT s FROM (s:Item) ORDER BY VECTOR_DIST(s.emb, [0,0,0,0]) LIMIT 2;",
        ])
        text = out.getvalue()
        assert "Item(" in text
        assert "dist=" in text

    def test_multiline_statement(self, shell):
        sh, out = shell
        feed_all(sh, [
            "CREATE VERTEX Doc (",
            "  id INT PRIMARY KEY,",
            "  title STRING",
            ");",
            "\\schema",
        ])
        assert "VERTEX Doc" in out.getvalue()

    def test_error_reported_not_raised(self, shell):
        sh, out = shell
        sh.feed("SELECT x FROM;")
        assert "error:" in out.getvalue()

    def test_explain(self, shell):
        sh, out = shell
        sh.feed("\\seed 10 4")
        sh.feed(
            "\\explain SELECT s FROM (s:Item) "
            "ORDER BY VECTOR_DIST(s.emb, [0,0,0,0]) LIMIT 2;"
        )
        assert "EmbeddingAction[Top 2" in out.getvalue()

    def test_run_with_stream(self):
        out = io.StringIO()
        sh = GSQLShell(out=out)
        stream = io.StringIO("\\seed 5 4\n\\q\n")
        sh.run(input_stream=stream)
        text = out.getvalue()
        assert "seeded 5" in text
        assert "bye" in text
        sh.db.close()
