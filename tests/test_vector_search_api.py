"""Tests for the VectorSearch() function and the VertexSet types."""

import numpy as np
import pytest

from repro import Metric, RankedVertexSet, VertexSet
from repro.core.search import VectorSearchOptions, vector_search
from repro.errors import (
    DimensionMismatchError,
    EmbeddingCompatibilityError,
    VectorSearchError,
)
from repro.graph.accumulators import MapAccum


class TestVertexSet:
    def test_algebra(self):
        a = VertexSet([("P", 1), ("P", 2)])
        b = VertexSet([("P", 2), ("P", 3)])
        assert (a | b).members() == {("P", 1), ("P", 2), ("P", 3)}
        assert (a & b).members() == {("P", 2)}
        assert (a - b).members() == {("P", 1)}

    def test_typed_views(self):
        s = VertexSet([("Post", 1), ("Comment", 1), ("Post", 2)])
        assert s.vertex_types() == {"Post", "Comment"}
        assert s.vids_of_type("Post") == {1, 2}
        assert s.restrict_to_type("Comment").members() == {("Comment", 1)}

    def test_membership_and_len(self):
        s = VertexSet()
        assert not s
        s.add("P", 1)
        assert ("P", 1) in s
        assert len(s) == 1

    def test_equality(self):
        assert VertexSet([("P", 1)]) == VertexSet([("P", 1)])
        assert VertexSet([("P", 1)]) != VertexSet([("P", 2)])

    def test_ranked_preserves_order(self):
        ranked = RankedVertexSet([(("P", 3), 0.1), (("P", 1), 0.5)])
        assert [m for m, _ in ranked.ranking] == [("P", 3), ("P", 1)]
        assert ranked.distances()[("P", 1)] == 0.5
        assert ("P", 3) in ranked  # behaves as a set too


class TestVectorSearchFunction:
    def test_basic_topk(self, loaded_post_db):
        db = loaded_post_db
        q = db._test_vectors[17]
        with db.snapshot() as snap:
            out = vector_search(
                db.service, snap, ["Post.content_emb"], q, 5
            )
        assert len(out) == 5
        assert ("Post", db.vid_for("Post", 17)) in out

    def test_filter_respected(self, loaded_post_db):
        db = loaded_post_db
        q = db._test_vectors[17]
        allowed = VertexSet(
            ("Post", db.vid_for("Post", pk)) for pk in range(0, 200, 4)
        )
        with db.snapshot() as snap:
            out = vector_search(
                db.service, snap, ["Post.content_emb"], q, 5,
                VectorSearchOptions(filter=allowed),
            )
        assert len(out) == 5
        assert all(member in allowed for member in out)

    def test_distance_map_filled(self, loaded_post_db):
        db = loaded_post_db
        dmap = MapAccum()
        with db.snapshot() as snap:
            out = vector_search(
                db.service, snap, ["Post.content_emb"], db._test_vectors[3], 4,
                VectorSearchOptions(distance_map=dmap),
            )
        assert len(dmap) == 4
        assert all(member in out for member in dmap.value)
        assert min(dmap.value.values()) == pytest.approx(0.0, abs=1e-3)

    def test_dimension_mismatch(self, loaded_post_db):
        db = loaded_post_db
        with db.snapshot() as snap:
            with pytest.raises(DimensionMismatchError):
                vector_search(db.service, snap, ["Post.content_emb"], np.zeros(3), 5)

    def test_invalid_k(self, loaded_post_db):
        db = loaded_post_db
        with db.snapshot() as snap:
            with pytest.raises(VectorSearchError):
                vector_search(
                    db.service, snap, ["Post.content_emb"], np.zeros(16), 0
                )

    def test_empty_filter_returns_empty(self, loaded_post_db):
        db = loaded_post_db
        with db.snapshot() as snap:
            out = vector_search(
                db.service, snap, ["Post.content_emb"], db._test_vectors[0], 5,
                VectorSearchOptions(filter=VertexSet()),
            )
        assert len(out) == 0

    def test_facade_method(self, loaded_post_db):
        db = loaded_post_db
        out = db.vector_search(["Post.content_emb"], db._test_vectors[9], 3)
        assert ("Post", db.vid_for("Post", 9)) in out


class TestMultiTypeSearch:
    @pytest.fixture
    def multi_db(self, rng):
        from tests.conftest import make_post_db

        db = make_post_db()
        db.schema.create_vertex_type(
            "Comment",
            [
                __import__("repro").Attribute("id", __import__("repro").AttrType.INT, primary_key=True),
            ],
        )
        db.schema.add_embedding_attribute(
            "Comment", "content_emb", dimension=16, model="GPT4", metric=Metric.L2
        )
        post_vecs = rng.standard_normal((40, 16)).astype(np.float32)
        comment_vecs = rng.standard_normal((40, 16)).astype(np.float32) + 10.0
        with db.begin() as txn:
            for i in range(40):
                txn.upsert_vertex("Post", i, {})
                txn.set_embedding("Post", i, "content_emb", post_vecs[i])
                txn.upsert_vertex("Comment", i, {})
                txn.set_embedding("Comment", i, "content_emb", comment_vecs[i])
        db.vacuum()
        db._post_vecs, db._comment_vecs = post_vecs, comment_vecs
        yield db
        db.close()

    def test_search_across_types(self, multi_db):
        db = multi_db
        # query near the Comment cloud: results should be Comments
        q = np.full(16, 10.0, np.float32)
        with db.snapshot() as snap:
            out = vector_search(
                db.service, snap,
                ["Post.content_emb", "Comment.content_emb"], q, 5,
            )
        assert all(t == "Comment" for t, _ in out)
        # query near the Post cloud: results should be Posts
        with db.snapshot() as snap:
            out = vector_search(
                db.service, snap,
                ["Post.content_emb", "Comment.content_emb"],
                np.zeros(16, np.float32), 5,
            )
        assert all(t == "Post" for t, _ in out)

    def test_incompatible_rejected(self, multi_db):
        db = multi_db
        db.schema.add_embedding_attribute(
            "Comment", "other_emb", dimension=8, model="BERT", metric=Metric.L2
        )
        with db.snapshot() as snap:
            with pytest.raises(EmbeddingCompatibilityError):
                vector_search(
                    db.service, snap,
                    ["Post.content_emb", "Comment.other_emb"],
                    np.zeros(16, np.float32), 5,
                )

    def test_filter_spanning_types(self, multi_db):
        db = multi_db
        allowed = VertexSet()
        for pk in range(0, 40, 2):
            allowed.add("Post", db.vid_for("Post", pk))
            allowed.add("Comment", db.vid_for("Comment", pk))
        q = np.full(16, 5.0, np.float32)  # between the clouds
        with db.snapshot() as snap:
            out = vector_search(
                db.service, snap,
                ["Post.content_emb", "Comment.content_emb"], q, 8,
                VectorSearchOptions(filter=allowed),
            )
        assert len(out) == 8
        assert all(member in allowed for member in out)
