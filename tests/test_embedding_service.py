"""Tests for embedding segments, the embedding service, and EmbeddingAction."""

import numpy as np
import pytest

from repro.core.action import EmbeddingAction
from repro.index.bitmap import Bitmap
from repro.types import Metric, batch_distances


class TestDecoupledStorage:
    def test_embeddings_not_in_vertex_rows(self, loaded_post_db):
        """Decoupling (Sec. 4.2): vertex rows never contain vector values."""
        db = loaded_post_db
        with db.snapshot() as snap:
            row = snap.get_vertex("Post", db.vid_for("Post", 0))
        assert "content_emb" not in row

    def test_segment_mirrors_vertex_partition(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        # 200 posts / segment_size 64 -> 4 segments on both sides
        with db.snapshot() as snap:
            assert snap.num_segments("Post") == 4
        assert store.num_segments == 4
        assert store.segment(0).capacity == 64

    def test_get_embedding_roundtrip(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        for pk in (0, 63, 64, 199):  # segment boundaries
            vid = db.vid_for("Post", pk)
            assert np.allclose(store.get_embedding(vid), db._test_vectors[pk])

    def test_get_embedding_missing(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        assert store.get_embedding(10_000) is None

    def test_delete_embedding_only(self, loaded_post_db):
        db = loaded_post_db
        with db.begin() as txn:
            txn.delete_embedding("Post", 5, "content_emb")
        store = db.service.store("Post", "content_emb")
        assert store.get_embedding(db.vid_for("Post", 5)) is None
        # the vertex itself is untouched
        with db.snapshot() as snap:
            assert snap.vid_for_pk("Post", 5) is not None

    def test_live_count(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        assert store.live_count() == 200


class TestMVCCOverlay:
    def test_unvacuumed_update_visible(self, loaded_post_db):
        db = loaded_post_db
        with db.begin() as txn:
            txn.set_embedding("Post", 7, "content_emb", np.full(16, 3.0, np.float32))
        store = db.service.store("Post", "content_emb")
        assert np.allclose(store.get_embedding(db.vid_for("Post", 7)), 3.0)

    def test_unvacuumed_delete_hides(self, loaded_post_db):
        db = loaded_post_db
        with db.begin() as txn:
            txn.delete_embedding("Post", 7, "content_emb")
        store = db.service.store("Post", "content_emb")
        assert store.get_embedding(db.vid_for("Post", 7)) is None

    def test_search_combines_index_and_deltas(self, loaded_post_db):
        """Sec 4.3: queries combine snapshot search with delta brute force."""
        db = loaded_post_db
        target = np.full(16, 40.0, np.float32)
        with db.begin() as txn:
            txn.set_embedding("Post", 150, "content_emb", target)
        result = db.vector_search(["Post.content_emb"], target, k=1)
        assert next(iter(result)) == ("Post", db.vid_for("Post", 150))

    def test_search_excludes_deleted_delta(self, loaded_post_db):
        db = loaded_post_db
        vectors = db._test_vectors
        with db.begin() as txn:
            txn.delete_embedding("Post", 30, "content_emb")
        result = db.vector_search(["Post.content_emb"], vectors[30], k=3)
        assert ("Post", db.vid_for("Post", 30)) not in result

    def test_stale_index_value_not_returned(self, loaded_post_db):
        """An offset overwritten by a delta must not surface its old vector."""
        db = loaded_post_db
        vectors = db._test_vectors
        far = np.full(16, -50.0, np.float32)
        with db.begin() as txn:
            txn.set_embedding("Post", 42, "content_emb", far)
        # query at the OLD location: post 42 must not be near it anymore
        result = db.vector_search(["Post.content_emb"], vectors[42], k=5)
        members = set(result)
        assert ("Post", db.vid_for("Post", 42)) not in members


class TestSegmentSearch:
    def test_bruteforce_threshold_flip(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        # tiny bitmap -> below threshold -> brute force
        bitmap = Bitmap.from_offsets(64, [1, 2, 3])
        with db.snapshot() as snap:
            out = store.search_segment(
                0, db._test_vectors[1], 2, snap.tid, bitmap=bitmap, bf_threshold=10
            )
        assert out.used_bruteforce
        assert out.offsets[0] == 1

    def test_index_path_above_threshold(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        with db.snapshot() as snap:
            out = store.search_segment(
                0, db._test_vectors[1], 2, snap.tid, bf_threshold=1
            )
        assert not out.used_bruteforce

    def test_bruteforce_matches_index(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        q = db._test_vectors[10]
        with db.snapshot() as snap:
            bf = store.search_segment(0, q, 5, snap.tid, bf_threshold=10_000)
            ix = store.search_segment(0, q, 5, snap.tid, ef=256, bf_threshold=0)
        assert bf.offsets == ix.offsets


class TestEmbeddingAction:
    def test_global_merge_matches_bruteforce(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        q = db._test_vectors[99]
        action = EmbeddingAction(store)
        with db.snapshot() as snap:
            result = action.topk(q, 10, snapshot_tid=snap.tid, ef=256)
        dists = batch_distances(q, db._test_vectors, Metric.L2)
        expected = set(np.argsort(dists)[:10].tolist())
        got = {int(db.pk_for("Post", vid)) for vid, _ in result}
        assert len(got & expected) >= 9

    def test_stats_segments_touched(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        action = EmbeddingAction(store)
        with db.snapshot() as snap:
            action.topk(db._test_vectors[0], 5, snapshot_tid=snap.tid)
        assert action.last_stats.segments_touched == 4

    def test_empty_bitmap_segments_skipped(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        bitmaps = [Bitmap.empty(64) for _ in range(4)]
        bitmaps[2] = Bitmap.from_offsets(64, range(10))
        action = EmbeddingAction(store)
        with db.snapshot() as snap:
            result = action.topk(
                db._test_vectors[0], 5, snapshot_tid=snap.tid, bitmaps=bitmaps
            )
        assert action.last_stats.segments_touched == 1
        # results come only from segment 2 (vids 128..137)
        assert all(128 <= vid < 138 for vid, _ in result)

    def test_range_action(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        q = db._test_vectors[0]
        action = EmbeddingAction(store)
        with db.snapshot() as snap:
            result = action.range(q, threshold=10.0, snapshot_tid=snap.tid, ef=256)
        dists = batch_distances(q, db._test_vectors, Metric.L2)
        exact = set(np.flatnonzero(dists < 10.0).tolist())
        got = {int(db.pk_for("Post", vid)) for vid, _ in result}
        assert got.issubset(exact)
        assert len(got) >= 0.8 * len(exact)

    def test_invalid_k(self, loaded_post_db):
        from repro.errors import VectorSearchError

        db = loaded_post_db
        action = EmbeddingAction(db.service.store("Post", "content_emb"))
        with pytest.raises(VectorSearchError):
            with db.snapshot() as snap:
                action.topk(np.zeros(16, np.float32), 0, snapshot_tid=snap.tid)
