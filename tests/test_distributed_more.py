"""More distributed-search tests: MVCC interplay and simulator wiring."""

import numpy as np
import pytest

from repro.core.distributed import DistributedSearcher


class TestDistributedWithUpdates:
    def test_search_reflects_unmerged_deltas(self, loaded_post_db):
        """Distributed local searches overlay deltas like local ones do."""
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        target = np.full(16, 77.0, dtype=np.float32)
        with db.begin() as txn:
            txn.set_embedding("Post", 123, "content_emb", target)
        with db.snapshot() as snap:
            searcher = DistributedSearcher(store, 2)
            out = searcher.search(target, 1, snapshot_tid=snap.tid, ef=64)
        assert out.result.ids[0] == db.vid_for("Post", 123)

    def test_old_snapshot_distributed_read(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        vectors = db._test_vectors
        pinned = db.snapshot()
        far = np.full(16, -33.0, dtype=np.float32)
        with db.begin() as txn:
            txn.set_embedding("Post", 60, "content_emb", far)
        db.vacuum()
        searcher = DistributedSearcher(store, 4)
        # at the pinned snapshot, post 60 is still at its original location
        out = searcher.search(vectors[60], 1, snapshot_tid=pinned.tid, ef=128)
        assert out.result.ids[0] == db.vid_for("Post", 60)
        # at a fresh snapshot it is not
        with db.snapshot() as snap:
            out = searcher.search(vectors[60], 1, snapshot_tid=snap.tid, ef=128)
        assert out.result.ids[0] != db.vid_for("Post", 60)
        pinned.release()


class TestSimulatorWiring:
    def test_simulator_uses_store_geometry(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        searcher = DistributedSearcher(store, 3)
        sim = searcher.simulator(k=7)
        assert sim.k == 7
        assert sim.dim == 16
        placed = sorted(s for m in sim.machines for s in m.segments)
        assert placed == list(range(store.num_segments))

    def test_measure_samples_shapes(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        searcher = DistributedSearcher(store, 2)
        queries = db._test_vectors[:3]
        with db.snapshot() as snap:
            samples, results = searcher.measure_samples(
                queries, 5, snapshot_tid=snap.tid, ef=64
            )
        assert len(samples) == 3 and len(results) == 3
        assert all(len(r) == 5 for r in results)
        assert all(set(s) == set(range(4)) for s in samples)
