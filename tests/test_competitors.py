"""Tests for the competitor behavioral simulators."""

import numpy as np
import pytest

from repro.competitors import (
    MilvusSim,
    Neo4jSim,
    NeptuneSim,
    PROFILES,
    TigerVectorSystem,
)
from repro.datasets import make_sift_like
from repro.errors import VectorSearchError


@pytest.fixture(scope="module")
def dataset():
    ds = make_sift_like(1500, num_queries=15)
    return ds.with_ground_truth(10)


@pytest.fixture(scope="module")
def built_systems(dataset):
    systems = {
        "TigerVector": TigerVectorSystem(segment_size=500),
        "Milvus": MilvusSim(segment_size=500),
        "Neo4j": Neo4jSim(),
        "Neptune": NeptuneSim(),
    }
    timings = {name: s.load_and_build(dataset) for name, s in systems.items()}
    return systems, timings


class TestConstraints:
    def test_paper_limitation_matrix(self):
        """The capability gaps the paper tabulates (Sec. 2.3)."""
        assert PROFILES["TigerVector"].supports_ef_tuning
        assert PROFILES["Milvus"].supports_ef_tuning
        assert not PROFILES["Neo4j"].supports_ef_tuning
        assert not PROFILES["Neptune"].supports_ef_tuning
        assert not PROFILES["Neo4j"].prefilter  # post-filter only
        assert not PROFILES["Neptune"].atomic_updates
        assert not PROFILES["Neptune"].distributed
        assert not PROFILES["Neo4j"].distributed
        assert PROFILES["TigerVector"].atomic_updates
        assert PROFILES["TigerVector"].distributed

    def test_fixed_ef_ignored_tuning(self, built_systems):
        systems, _ = built_systems
        neo = systems["Neo4j"]
        assert neo.effective_ef(500) == neo.profile.fixed_ef
        tv = systems["TigerVector"]
        assert tv.effective_ef(500) == 500

    def test_neo4j_single_index(self, built_systems):
        systems, _ = built_systems
        assert len(systems["Neo4j"].indexes) == 1
        assert len(systems["Neptune"].indexes) == 1
        assert len(systems["TigerVector"].indexes) == 3  # 1500 / 500

    def test_neptune_cost_model(self):
        nep = PROFILES["Neptune"]
        tv = PROFILES["TigerVector"]
        assert nep.hardware.cost_ratio(tv.hardware) == pytest.approx(22.42, rel=0.01)


class TestSearchBehaviour:
    def test_all_systems_return_valid_topk(self, built_systems, dataset):
        systems, _ = built_systems
        q = dataset.queries[0]
        for system in systems.values():
            m = system.search(q, 10)
            assert len(m.ids) == 10
            assert list(m.distances) == sorted(m.distances)
            assert m.compute_seconds > 0
            assert m.latency_seconds > m.service_seconds

    def test_recall_ordering(self, built_systems, dataset):
        """Neo4j's fixed point sits below the tunable systems' high-ef points."""
        systems, _ = built_systems
        tv = systems["TigerVector"].evaluate(dataset, k=10, ef=128, num_queries=15)
        neo = systems["Neo4j"].evaluate(dataset, k=10, num_queries=15)
        nep = systems["Neptune"].evaluate(dataset, k=10, num_queries=15)
        assert tv["recall"] > neo["recall"] + 0.1
        assert nep["recall"] > neo["recall"]

    def test_search_without_build_fails(self):
        with pytest.raises(VectorSearchError):
            Neo4jSim().search(np.zeros(8, dtype=np.float32), 5)

    def test_qps_model_monotone_in_service_time(self, built_systems):
        systems, _ = built_systems
        tv = systems["TigerVector"]
        assert tv.qps(0.001) > tv.qps(0.002)


class TestFilteredSearchBehaviour:
    def test_prefilter_vs_postfilter_results_match(self, built_systems, dataset):
        systems, _ = built_systems
        allowed = np.zeros(len(dataset), dtype=bool)
        allowed[::3] = True
        q = dataset.queries[1]
        pre = systems["TigerVector"].filtered_search(q, 5, allowed, ef=256)
        post = systems["Neo4j"].filtered_search(q, 5, allowed)
        assert all(allowed[i] for i in pre.ids)
        assert all(allowed[i] for i in post.ids)

    def test_postfilter_costs_more_at_low_selectivity(self, built_systems, dataset):
        """Sec 5.2's argument: post-filter needs repeated enlarged searches
        when the filter is selective, so its cost grows as selectivity drops."""
        systems, _ = built_systems
        neo = systems["Neo4j"]
        q = dataset.queries[2]
        high = np.ones(len(dataset), dtype=bool)  # unselective: one round
        low = np.zeros(len(dataset), dtype=bool)
        low[::50] = True  # 2% selectivity: repeated enlarged rounds
        cheap = min(
            neo.filtered_search(q, 5, high).compute_seconds for _ in range(3)
        )
        costly = min(
            neo.filtered_search(q, 5, low).compute_seconds for _ in range(3)
        )
        assert costly > 2 * cheap

    def test_filtered_k_satisfied_when_possible(self, built_systems, dataset):
        systems, _ = built_systems
        allowed = np.zeros(len(dataset), dtype=bool)
        allowed[:20] = True
        m = systems["Neo4j"].filtered_search(dataset.queries[0], 5, allowed)
        assert len(m.ids) == 5


class TestBuildTimings:
    def test_table2_orderings(self, built_systems):
        """Table 2 shape: Neo4j slowest build; Milvus slowest load."""
        _, timings = built_systems
        assert (
            timings["Neo4j"]["index_build_seconds"]
            > 2 * timings["TigerVector"]["index_build_seconds"]
        )
        # The row-by-row/vectorized parse gap compounds with data size; at
        # this small unit-test scale assert the direction and a 2x floor
        # (the benchmark asserts >5x at its larger scales).
        assert (
            timings["Milvus"]["data_load_seconds"]
            > 2 * timings["TigerVector"]["data_load_seconds"]
        )
        for t in timings.values():
            assert t["end_to_end_seconds"] == pytest.approx(
                t["data_load_seconds"] + t["index_build_seconds"]
            )
