"""Self-test gate: the repro source tree must lint clean.

Any unsuppressed finding fails this test, which keeps the concurrency
invariants (Sec. 4.3) enforced on every change.  A seeded-violation check
proves the gate has teeth — a file with known violations must be caught.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def test_src_tree_lints_clean():
    result = lint_paths([SRC])
    assert result.errors == []
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"unsuppressed findings in src/repro:\n{rendered}"
    assert result.files > 50  # sanity: the walk actually visited the tree


def test_cli_exits_zero_on_clean_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-lint: 0 finding(s)" in proc.stdout


def test_cli_catches_seeded_violations(tmp_path):
    seeded = tmp_path / "seeded.py"
    seeded.write_text(
        textwrap.dedent(
            """
            import threading
            import time


            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    self._items[key] = value            # R001

                def commit(self, dist, best_dist, tags=[]):   # R007
                    stamp = time.time()                 # R004
                    try:
                        return dist == best_dist        # R005
                    except Exception:
                        pass                            # R006

                def start(self):
                    threading.Thread(target=self.put).start()    # R010

                def hold(self):
                    self._lock.acquire()                # R009
                    self._lock.release()
            """
        )
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "lint",
            str(seeded),
            "--format",
            "json",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    caught = {f["rule"] for f in payload["findings"]}
    assert caught == {"R001", "R004", "R005", "R006", "R007", "R009", "R010"}
    assert all(f["suppressed"] is False for f in payload["findings"])


def test_cli_rules_subcommand_lists_catalog():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "rules"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert proc.returncode == 0
    for rule_id in (
        "R001", "R002", "R003", "R004", "R005", "R006",
        "R007", "R008", "R009", "R010", "R011", "R012",
    ):
        assert rule_id in proc.stdout


def test_cli_max_noqa_budget(tmp_path):
    suppressed = tmp_path / "suppressed.py"
    suppressed.write_text(
        textwrap.dedent(
            """
            import threading


            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    self._items[key] = value  # repro: noqa[R001] -- single-threaded test helper
            """
        )
    )
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
    base = [sys.executable, "-m", "repro.analysis", "lint", str(suppressed)]
    within = subprocess.run(
        base + ["--max-noqa", "1"],
        cwd=REPO_ROOT, capture_output=True, text=True, env=env, timeout=120,
    )
    assert within.returncode == 0, within.stdout + within.stderr
    over = subprocess.run(
        base + ["--max-noqa", "0"],
        cwd=REPO_ROOT, capture_output=True, text=True, env=env, timeout=120,
    )
    assert over.returncode == 1
    assert "suppression budget exceeded" in over.stderr
