"""Tests for the tiered storage subsystem (repro/tier, DESIGN §12).

Covers the hot→cold→hot transition machinery, the budget-driven
``TierManager`` rebalancing, spill-to-disk memmapping, the MVCC
same-tid twin publish, and the headline conservation property: under a
zipfian access workload with demotions and promotions at every vacuum
boundary, no vector is ever dropped or duplicated and every search
returns exactly the full-precision answer (the scenario sizes keep the
rerank phase exhaustive, so cold results are exact, not approximate).
"""

import numpy as np
import pytest

from repro import Attribute, AttrType, Metric, TigerVectorDB
from repro.cluster import ClosedLoopLoadGenerator, ClusterSimulator, make_cluster
from repro.core.search import vector_search_merged
from repro.core.segment import rebuild_index
from repro.datasets.workloads import zipfian_access_sequence, zipfian_weights
from repro.errors import ClusterError, ReproError
from repro.index.pq import PQSearchConfig
from repro.tier import TierManager, demote_segment, promote_segment

DIM = 8
SEG = 32


def make_db(n: int = 96, dim: int = DIM, segment_size: int = SEG) -> TigerVectorDB:
    rng = np.random.default_rng(7)
    db = TigerVectorDB(segment_size=segment_size)
    db.schema.create_vertex_type(
        "Item", [Attribute("id", AttrType.INT, primary_key=True)]
    )
    db.schema.add_embedding_attribute(
        "Item", "emb", dimension=dim, model="demo", metric=Metric.L2
    )
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    db.bulk_load_vertices("Item", [{"id": i} for i in range(n)])
    db.bulk_load_embeddings("Item", "emb", list(range(n)), vectors)
    db._test_vectors = vectors
    return db


def search_ids(db, query, k, snapshot=None):
    if snapshot is not None:
        return [
            vid
            for _, _, vid in vector_search_merged(
                db.service, snapshot, ["Item.emb"], query, k
            )
        ]
    with db.snapshot() as snap:
        return search_ids(db, query, k, snapshot=snap)


def brute_ids(db, query, k):
    dists = ((db._test_vectors - query) ** 2).sum(axis=1)
    return [db.vid_for("Item", int(i)) for i in np.argsort(dists, kind="stable")[:k]]


@pytest.fixture
def db():
    database = make_db()
    yield database
    database.close()


# ---------------------------------------------------------------------------
# zipfian workload helpers (satellite: datasets + loadgen knob)
# ---------------------------------------------------------------------------


class TestZipfianWorkload:
    def test_weights_shape(self):
        w = zipfian_weights(10, skew=1.1)
        assert w.shape == (10,)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)  # rank 0 hottest, strictly decreasing

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            zipfian_weights(0)
        with pytest.raises(ValueError):
            zipfian_weights(5, skew=0.0)

    def test_sequence_deterministic_and_skewed(self):
        a = zipfian_access_sequence(20, 2000, skew=1.2, seed=3)
        b = zipfian_access_sequence(20, 2000, skew=1.2, seed=3)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 20
        counts = np.bincount(a, minlength=20)
        assert counts[0] == counts.max()  # rank 0 dominates
        assert counts[0] > 3 * counts[10]

    def test_sequence_permuted(self):
        plain = zipfian_access_sequence(20, 500, seed=3)
        shuffled = zipfian_access_sequence(20, 500, seed=3, permute=True)
        assert not np.array_equal(plain, shuffled)
        # Still the same skew shape, just relabeled.
        assert sorted(np.bincount(plain, minlength=20)) == sorted(
            np.bincount(shuffled, minlength=20)
        )

    def test_loadgen_skew_knob(self):
        pool = [{0: 0.001}, {0: 0.002}, {0: 0.003}]
        gen = ClosedLoopLoadGenerator(
            ClusterSimulator(make_cluster(1, 2)), connections=1, sample_skew=1.5
        )
        draws = gen._sample_iter(pool)
        picked = [id(next(draws)) for _ in range(600)]
        # Hot item (rank 0) drawn most often; all items drawn eventually.
        from collections import Counter

        counts = Counter(picked)
        assert counts[id(pool[0])] == max(counts.values())
        assert len(counts) == 3

    def test_loadgen_skew_validation(self):
        with pytest.raises(ClusterError):
            ClosedLoopLoadGenerator(
                ClusterSimulator(make_cluster(1, 2)), sample_skew=0.0
            )


# ---------------------------------------------------------------------------
# demote / promote transitions
# ---------------------------------------------------------------------------


class TestTransitions:
    def test_demote_then_search_exact(self, db):
        db.vacuum()
        store = db.service.store("Item", "emb")
        store.pq_config = PQSearchConfig(m=4, seed=3)
        query = db._test_vectors[11]
        before = search_ids(db, query, 5)

        for segment in store.segments():
            assert demote_segment(store, segment, store.pq_config)
            snap = segment.current_snapshot()
            assert snap.tier == "cold"
            assert snap.index is None
            assert snap.pq is not None
            with pytest.raises(ReproError):
                snap.kernel(Metric.L2)

        # Rerank candidates (5·4=20) < 32 rows/segment is not exhaustive,
        # so compare against brute truth instead of luck: top-1 must hold
        # and the full set must match the hot answer (well-separated data
        # keeps phase 1 from dropping true neighbours at this scale).
        after = search_ids(db, query, 5)
        assert after == before == brute_ids(db, query, 5)

    def test_demote_is_idempotent_and_promote_round_trips(self, db):
        db.vacuum()
        store = db.service.store("Item", "emb")
        segment = store.segment(0)
        assert demote_segment(store, segment)
        assert not demote_segment(store, segment)  # already cold
        assert promote_segment(store, segment)
        assert not promote_segment(store, segment)  # already hot
        snap = segment.current_snapshot()
        assert snap.tier == "hot" and snap.index is not None and snap.pq is None
        query = db._test_vectors[2]
        assert search_ids(db, query, 5) == brute_ids(db, query, 5)

    def test_same_tid_twin_and_gc(self, db):
        db.vacuum()
        store = db.service.store("Item", "emb")
        segment = store.segment(0)
        hot = segment.current_snapshot()
        assert demote_segment(store, segment)
        cold = segment.current_snapshot()
        assert cold.tid == hot.tid  # tier twins never invent a version
        assert hot in segment._retired  # pinned readers can still reach it
        dropped = segment.gc_snapshots(cold.tid)
        assert dropped >= 1 and hot not in segment._retired

    def test_pinned_reader_search_during_demotion(self, db):
        db.vacuum()
        store = db.service.store("Item", "emb")
        query = db._test_vectors[40]
        with db.snapshot() as pinned:
            truth = search_ids(db, query, 5, snapshot=pinned)
            for segment in store.segments():
                demote_segment(store, segment)
            got = search_ids(db, query, 5, snapshot=pinned)
        assert got == truth

    def test_spill_to_memmap(self, db, tmp_path):
        db.vacuum()
        store = db.service.store("Item", "emb")
        segment = store.segment(0)
        raw = np.array(segment.current_snapshot().vectors)
        assert demote_segment(store, segment, spill_dir=tmp_path)
        snap = segment.current_snapshot()
        assert isinstance(snap.vectors, np.memmap)
        np.testing.assert_array_equal(np.asarray(snap.vectors), raw)
        assert list(tmp_path.glob("Item.emb.seg0.*.npy"))
        query = db._test_vectors[5]
        assert search_ids(db, query, 5) == brute_ids(db, query, 5)

    def test_race_lost_install_abandons(self, db):
        db.vacuum()
        store = db.service.store("Item", "emb")
        segment = store.segment(0)
        snap = segment.current_snapshot()
        # A concurrent merge publishes a newer snapshot between the build
        # and the install: simulate by pre-installing tid+1, then asking
        # install_snapshot for the stale twin directly.
        newer = type(snap)(
            tid=snap.tid + 1,
            index=snap.index,
            vectors=snap.vectors,
            present=snap.present.copy(),
        )
        segment.install_snapshot(newer)
        with pytest.raises(ReproError):
            segment.install_snapshot(snap)
        assert segment.current_snapshot() is newer

    def test_rebuild_index_covers_present_rows(self, db):
        db.vacuum()
        store = db.service.store("Item", "emb")
        snap = store.segment(0).current_snapshot()
        index = rebuild_index(store.embedding, np.asarray(snap.vectors), snap.present)
        assert len(index) == int(snap.present.sum())

    def test_vacuum_rehydrates_cold_segment(self, db):
        db.vacuum()
        store = db.service.store("Item", "emb")
        demote_segment(store, store.segment(0))
        moved = np.full(DIM, 50.0, dtype=np.float32)
        with db.begin() as txn:
            txn.set_embedding("Item", 3, "emb", moved)  # lives in segment 0
        db.vacuum()
        snap = store.segment(0).current_snapshot()
        assert snap.tier == "hot" and snap.index is not None
        db._test_vectors[3] = moved
        assert search_ids(db, moved, 1) == [db.vid_for("Item", 3)]


# ---------------------------------------------------------------------------
# tier manager
# ---------------------------------------------------------------------------


class TestTierManager:
    def test_validation(self, db):
        with pytest.raises(ValueError):
            TierManager(db.service, budget_bytes=-1)
        with pytest.raises(ValueError):
            TierManager(db.service, budget_bytes=0, ewma_alpha=0.0)

    def test_budget_packs_hottest_first(self, db):
        db.vacuum()
        seg_bytes = SEG * DIM * 4
        manager = db.enable_tiering(budget_bytes=seg_bytes)  # room for one
        key = ("Item", "emb")
        for _ in range(10):
            manager.record_access(key, 2)
        manager.record_access(key, 0)
        summary = manager.rebalance()
        assert summary["hot"] == 1 and summary["cold"] == 2
        assert summary["demoted"] == 2 and summary["promoted"] == 0
        assert summary["spilled_bytes"] == 0  # no spill dir: raw stays resident
        rows = {r["seg_no"]: r for r in manager.residency()["Item.emb"]}
        assert rows[2]["tier"] == "hot"
        assert rows[0]["tier"] == rows[1]["tier"] == "cold"
        # Accounting: hot raw + cold (codes + tables + unspilled raw).
        store = db.service.store("Item", "emb")
        expected = seg_bytes + sum(
            s.current_snapshot().pq.memory_bytes + seg_bytes
            for s in store.segments()
            if s.current_snapshot().tier == "cold"
        )
        assert summary["resident_bytes"] == expected

    def test_promotion_when_budget_grows(self, db):
        db.vacuum()
        manager = db.enable_tiering(budget_bytes=0)
        assert manager.rebalance()["cold"] == 3
        manager.budget_bytes = 10 * SEG * DIM * 4
        summary = manager.rebalance()
        assert summary["hot"] == 3 and summary["promoted"] == 3
        query = db._test_vectors[1]
        assert search_ids(db, query, 5) == brute_ids(db, query, 5)

    def test_ewma_decay(self, db):
        db.vacuum()
        manager = db.enable_tiering(budget_bytes=0, ewma_alpha=0.3)
        key = ("Item", "emb")
        for _ in range(10):
            manager.record_access(key, 1)
        manager.rebalance()
        heat = {r["seg_no"]: r["heat"] for r in manager.residency()["Item.emb"]}
        assert heat[1] == pytest.approx(3.0)  # 0.3 · 10
        manager.rebalance()  # no new accesses: decay
        heat = {r["seg_no"]: r["heat"] for r in manager.residency()["Item.emb"]}
        assert heat[1] == pytest.approx(2.1)  # 0.7 · 3.0

    def test_access_hook_feeds_heat(self, db):
        db.vacuum()
        manager = db.enable_tiering(budget_bytes=10**9)
        search_ids(db, db._test_vectors[0], 3)
        assert manager.stats.accesses == 3  # one bump per probed segment

    def test_vacuum_boundary_rebalances(self, db):
        db.vacuum()
        db.enable_tiering(budget_bytes=0)
        report = db.vacuum()
        assert report["tier"]["cold"] == 3
        assert db.tier_manager.stats.rebalances >= 1

    def test_stats_snapshot_surface(self, db):
        db.vacuum()
        manager = db.enable_tiering(budget_bytes=123)
        manager.rebalance()
        snap = manager.stats_snapshot()
        assert snap["budget_bytes"] == 123
        assert snap["cold_segments"] == 3
        assert snap["rebalances"] == 1

    def test_under_budget_everything_stays_hot_and_identical(self, db):
        db.vacuum()
        query = db._test_vectors[9]
        with db.snapshot() as snap:
            before = vector_search_merged(db.service, snap, ["Item.emb"], query, 5)
        db.enable_tiering(budget_bytes=10**9)
        db.vacuum()
        with db.snapshot() as snap:
            after = vector_search_merged(db.service, snap, ["Item.emb"], query, 5)
        assert after == before  # distances bit-identical: tiering never engaged
        for segment in db.service.store("Item", "emb").segments():
            assert segment.current_snapshot().tier == "hot"

    def test_spill_accounting(self, db, tmp_path):
        db.vacuum()
        manager = db.enable_tiering(budget_bytes=0, spill_dir=tmp_path)
        summary = manager.rebalance()
        assert summary["spilled_bytes"] == 3 * SEG * DIM * 4
        # Only quantized bytes stay resident once raw rows are memmapped.
        store = db.service.store("Item", "emb")
        expected = sum(
            s.current_snapshot().pq.memory_bytes for s in store.segments()
        )
        assert summary["resident_bytes"] == expected
        rows = manager.residency()["Item.emb"]
        assert all(r["spilled"] for r in rows)


# ---------------------------------------------------------------------------
# conservation under zipfian load (ISSUE 8 acceptance)
# ---------------------------------------------------------------------------


class TestZipfianConservation:
    def test_no_vector_dropped_or_duplicated_across_rebalances(self):
        db = make_db(n=160, dim=DIM, segment_size=SEG)  # 5 segments
        try:
            db.vacuum()
            manager = db.enable_tiering(
                budget_bytes=2 * SEG * DIM * 4,  # room for 2 of 5 segments
                pq=PQSearchConfig(m=4, seed=11),
            )
            vectors = db._test_vectors
            ranks = zipfian_access_sequence(160, 120, skew=1.2, seed=9)
            for round_no in range(6):
                for item in ranks[round_no * 20 : (round_no + 1) * 20]:
                    got = search_ids(db, vectors[int(item)], 3)
                    assert got[0] == db.vid_for("Item", int(item))
                db.vacuum()  # fold heat, demote/promote under budget
                summary = manager.stats
                # Every vector stays findable: a full sweep returns each id
                # exactly once, whatever the current hot/cold split is.
                everything = search_ids(db, np.zeros(DIM, dtype=np.float32), 160)
                assert sorted(everything) == sorted(
                    db.vid_for("Item", i) for i in range(160)
                )
            assert summary.demotions >= 3  # the budget actually binds
            tiers = {
                s.current_snapshot().tier
                for s in db.service.store("Item", "emb").segments()
            }
            assert tiers == {"hot", "cold"}
        finally:
            db.close()
