"""Tests for LDBC loading helpers and the GSQL loading split() path."""

import numpy as np
import pytest

from repro import TigerVectorDB
from repro.datasets.ldbc import LDBC_SCHEMA_GSQL, LDBCConfig, generate_ldbc, load_ldbc_into
from repro.gsql.functions import BUILTINS


class TestSplitHelper:
    def test_basic(self):
        out = BUILTINS["split"]("1:2:3.5", ":")
        assert out.dtype == np.float32
        assert np.allclose(out, [1.0, 2.0, 3.5])

    def test_other_separator(self):
        assert np.allclose(BUILTINS["split"]("1|2", "|"), [1.0, 2.0])

    def test_empty_pieces_skipped(self):
        assert np.allclose(BUILTINS["split"]("1::2:", ":"), [1.0, 2.0])

    def test_bad_value_raises(self):
        with pytest.raises(ValueError):
            BUILTINS["split"]("1:x", ":")


class TestLDBCSchema:
    def test_schema_gsql_parses_and_applies(self):
        db = TigerVectorDB()
        db.run_gsql(LDBC_SCHEMA_GSQL)
        assert db.schema.has_vertex_type("Person")
        assert db.schema.has_vertex_type("Comment")
        assert not db.schema.edge_type("knows").directed
        assert db.schema.edge_type("replyOf").from_type == "Comment"
        db.close()

    def test_country_string_primary_key(self):
        db = TigerVectorDB()
        db.run_gsql(LDBC_SCHEMA_GSQL)
        with db.begin() as txn:
            txn.upsert_vertex("Country", "France", {})
        with db.snapshot() as snap:
            assert snap.vid_for_pk("Country", "France") is not None
        db.close()


class TestLoadRoundtrip:
    @pytest.fixture(scope="class")
    def loaded(self):
        data = generate_ldbc(LDBCConfig(scale_factor=0.3, embedding_dim=8, seed=2))
        db = TigerVectorDB(segment_size=256)
        load_ldbc_into(db, data)
        yield db, data
        db.close()

    def test_knows_is_symmetric(self, loaded):
        db, data = loaded
        a, b = data.knows[0]
        with db.snapshot() as snap:
            va = snap.vid_for_pk("Person", a)
            vb = snap.vid_for_pk("Person", b)
            assert vb in snap.neighbors("Person", va, "knows")
            assert va in snap.neighbors("Person", vb, "knows")

    def test_person_country_edges(self, loaded):
        db, data = loaded
        pid, country = data.person_country[0]
        with db.snapshot() as snap:
            vp = snap.vid_for_pk("Person", pid)
            targets = snap.neighbors("Person", vp, "isLocatedIn")
            names = {snap.get_attr("Country", t, "name") for t in targets}
        assert country in names

    def test_embeddings_match_generated(self, loaded):
        db, data = loaded
        store = db.service.store("Comment", "content_emb")
        vid = db.vid_for("Comment", 4)
        assert np.allclose(store.get_embedding(vid), data.comment_embeddings[4])

    def test_no_pending_deltas_after_load(self, loaded):
        db, _ = loaded
        assert db.service.store("Post", "content_emb").pending_delta_count() == 0
        assert db.store.pending_delta_count() == 0
