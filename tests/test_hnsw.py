"""Tests for the HNSW index implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VectorSearchError
from repro.index import BruteForceIndex, HNSWIndex
from repro.types import Metric


def build_index(rng, n=500, dim=16, metric=Metric.L2, **kwargs):
    data = rng.standard_normal((n, dim)).astype(np.float32)
    index = HNSWIndex(dim, metric, M=8, ef_construction=64, **kwargs)
    index.update_items(np.arange(n), data)
    return index, data


class TestConstruction:
    def test_invalid_dim(self):
        with pytest.raises(VectorSearchError):
            HNSWIndex(0, Metric.L2)

    def test_invalid_m(self):
        with pytest.raises(VectorSearchError):
            HNSWIndex(4, Metric.L2, M=1)

    def test_len_and_contains(self, rng):
        index, _ = build_index(rng, n=50)
        assert len(index) == 50
        assert 7 in index
        assert 999 not in index

    def test_dimension_mismatch_on_insert(self):
        index = HNSWIndex(4, Metric.L2)
        with pytest.raises(VectorSearchError):
            index.update_items([0], np.zeros((1, 5), dtype=np.float32))

    def test_ids_vectors_length_mismatch(self):
        index = HNSWIndex(4, Metric.L2)
        with pytest.raises(VectorSearchError):
            index.update_items([0, 1], np.zeros((1, 4), dtype=np.float32))


class TestSearch:
    def test_exact_match_found_first(self, rng):
        index, data = build_index(rng)
        result = index.topk_search(data[42], 1, ef=64)
        assert result.ids[0] == 42
        assert result.distances[0] == pytest.approx(0.0, abs=1e-4)

    def test_results_sorted_by_distance(self, rng):
        index, data = build_index(rng)
        result = index.topk_search(rng.standard_normal(16).astype(np.float32), 10, ef=64)
        assert list(result.distances) == sorted(result.distances)

    def test_recall_against_bruteforce(self, rng):
        index, data = build_index(rng, n=1000)
        bf = BruteForceIndex(16, Metric.L2)
        bf.update_items(np.arange(1000), data)
        hits = 0
        for _ in range(20):
            q = rng.standard_normal(16).astype(np.float32)
            got = set(index.topk_search(q, 10, ef=128).ids.tolist())
            exact = set(bf.topk_search(q, 10).ids.tolist())
            hits += len(got & exact)
        assert hits / 200 > 0.85

    def test_higher_ef_never_worse_on_average(self, rng):
        index, data = build_index(rng, n=800)
        bf = BruteForceIndex(16, Metric.L2)
        bf.update_items(np.arange(800), data)
        queries = rng.standard_normal((20, 16)).astype(np.float32)

        def recall(ef):
            hits = 0
            for q in queries:
                got = set(index.topk_search(q, 10, ef=ef).ids.tolist())
                exact = set(bf.topk_search(q, 10).ids.tolist())
                hits += len(got & exact)
            return hits / 200

        assert recall(256) >= recall(10) - 0.02

    def test_empty_index(self):
        index = HNSWIndex(4, Metric.L2)
        result = index.topk_search(np.zeros(4, dtype=np.float32), 5)
        assert len(result) == 0

    def test_k_larger_than_index(self, rng):
        index, _ = build_index(rng, n=5)
        result = index.topk_search(np.zeros(16, dtype=np.float32), 50, ef=64)
        assert len(result) == 5

    def test_invalid_k(self, rng):
        index, _ = build_index(rng, n=10)
        with pytest.raises(VectorSearchError):
            index.topk_search(np.zeros(16, dtype=np.float32), 0)

    def test_query_dimension_check(self, rng):
        index, _ = build_index(rng, n=10)
        with pytest.raises(VectorSearchError):
            index.topk_search(np.zeros(3, dtype=np.float32), 1)

    def test_cosine_metric(self, rng):
        index, data = build_index(rng, n=300, metric=Metric.COSINE)
        bf = BruteForceIndex(16, Metric.COSINE)
        bf.update_items(np.arange(300), data)
        q = rng.standard_normal(16).astype(np.float32)
        got = set(index.topk_search(q, 5, ef=128).ids.tolist())
        exact = set(bf.topk_search(q, 5).ids.tolist())
        assert len(got & exact) >= 4

    def test_ip_metric(self, rng):
        index, data = build_index(rng, n=300, metric=Metric.IP)
        result = index.topk_search(data[3], 5, ef=128)
        assert len(result) == 5


class TestFilteredSearch:
    def test_filter_respected(self, rng):
        index, data = build_index(rng, n=400)
        allowed = set(range(0, 400, 3))
        result = index.topk_search(
            data[9], 10, ef=128, filter_fn=lambda i: i in allowed
        )
        assert len(result) == 10
        assert all(i in allowed for i in result.ids)

    def test_filter_excluding_all(self, rng):
        index, data = build_index(rng, n=50)
        result = index.topk_search(data[0], 5, ef=64, filter_fn=lambda i: False)
        assert len(result) == 0

    def test_filtered_matches_bruteforce_on_allowed(self, rng):
        index, data = build_index(rng, n=400)
        allowed = np.zeros(400, dtype=bool)
        allowed[::5] = True
        bf = BruteForceIndex(16, Metric.L2)
        rows = np.flatnonzero(allowed)
        bf.update_items(rows, data[rows])
        q = data[10]
        got = set(index.topk_search(q, 5, ef=256, filter_fn=lambda i: bool(allowed[i])).ids.tolist())
        exact = set(bf.topk_search(q, 5).ids.tolist())
        assert len(got & exact) >= 4


class TestUpdatesAndDeletes:
    def test_delete_hides_from_results(self, rng):
        index, data = build_index(rng, n=100)
        target = int(index.topk_search(data[7], 1, ef=64).ids[0])
        index.delete_items([target])
        result = index.topk_search(data[7], 5, ef=64)
        assert target not in result.ids
        assert len(index) == 99

    def test_get_embedding_roundtrip(self, rng):
        index, data = build_index(rng, n=30)
        assert np.allclose(index.get_embedding(12), data[12])

    def test_get_embedding_missing(self, rng):
        index, _ = build_index(rng, n=5)
        with pytest.raises(VectorSearchError):
            index.get_embedding(100)

    def test_update_replaces_vector(self, rng):
        index, data = build_index(rng, n=100)
        new_vec = np.full(16, 50.0, dtype=np.float32)
        index.update_items([3], new_vec.reshape(1, -1))
        assert np.allclose(index.get_embedding(3), new_vec)
        # the updated vector is findable at its new location
        result = index.topk_search(new_vec, 1, ef=128)
        assert result.ids[0] == 3

    def test_update_does_not_duplicate(self, rng):
        index, data = build_index(rng, n=50)
        index.update_items([5], data[5].reshape(1, -1) + 0.01)
        result = index.topk_search(data[5], 20, ef=128)
        assert list(result.ids).count(5) == 1
        assert len(index) == 50

    def test_delete_then_reinsert(self, rng):
        index, data = build_index(rng, n=50)
        index.delete_items([7])
        assert 7 not in index
        index.update_items([7], data[7].reshape(1, -1))
        assert 7 in index
        assert len(index) == 50

    def test_multithreaded_update(self, rng):
        data = rng.standard_normal((200, 16)).astype(np.float32)
        index = HNSWIndex(16, Metric.L2, M=8, ef_construction=64)
        index.update_items(np.arange(200), data, num_threads=4)
        assert len(index) == 200
        result = index.topk_search(data[100], 1, ef=128)
        assert result.ids[0] == 100


class TestPersistence:
    def test_save_load_roundtrip(self, rng, tmp_path):
        index, data = build_index(rng, n=200)
        path = tmp_path / "index.bin"
        index.save(path)
        loaded = HNSWIndex.load(path)
        q = rng.standard_normal(16).astype(np.float32)
        orig = index.topk_search(q, 10, ef=64)
        re = loaded.topk_search(q, 10, ef=64)
        assert orig.ids.tolist() == re.ids.tolist()
        assert len(loaded) == len(index)

    def test_pickle_roundtrip(self, rng):
        import pickle

        index, data = build_index(rng, n=100)
        clone = pickle.loads(pickle.dumps(index))
        q = data[4]
        assert (
            clone.topk_search(q, 5, ef=64).ids.tolist()
            == index.topk_search(q, 5, ef=64).ids.tolist()
        )
        # the clone is independent
        clone.delete_items([4])
        assert 4 in index
        assert 4 not in clone


class TestStats:
    def test_stats_reported(self, rng):
        index, data = build_index(rng, n=100)
        before = index.stats.num_distance_computations
        index.topk_search(data[0], 5, ef=64)
        stats = index.stats
        assert stats.num_searches >= 1
        assert stats.num_distance_computations > before
        assert stats.num_vectors == 100
        assert stats.build_seconds > 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 10))
def test_topk_distances_sorted_property(seed, k):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((100, 8)).astype(np.float32)
    index = HNSWIndex(8, Metric.L2, M=8, ef_construction=32)
    index.update_items(np.arange(100), data)
    result = index.topk_search(rng.standard_normal(8).astype(np.float32), k, ef=32)
    dists = list(result.distances)
    assert dists == sorted(dists)
    assert len(set(result.ids.tolist())) == len(result.ids)
