"""Tests for repro.serve: the concurrent query-serving layer.

Covers the acceptance contracts from the serving PR:

- byte identity: server answers with batching+caching off match direct
  ``TigerVectorDB.vector_search`` calls exactly (members and distances);
- micro-batched (fused) answers match direct calls too;
- snapshot-keyed cache: hits on repeat, invalidation on commit and vacuum;
- admission control: queue-full / rate-limit / deadline shed with typed
  errors and MetricsRegistry-visible counts — never a hang or a drop;
- tenancy: weighted-fair queueing, RBAC-scoped search, read-only GSQL;
- satellites: hardened HNSW persistence, open-loop load generation.
"""

from __future__ import annotations

import pickle
import threading
import time

import numpy as np
import pytest

from repro.cluster import ClosedLoopLoadGenerator, ClusterSimulator, make_cluster
from repro.errors import (
    AdmissionRejectedError,
    GSQLSemanticError,
    IndexPersistenceError,
    QueryTimeoutError,
    RateLimitedError,
    ReproError,
    ServeError,
    StalenessBoundError,
    VectorSearchError,
)
from repro.faults import ResiliencePolicy
from repro.graph.accumulators import MapAccum
from repro.index.hnsw import FORMAT_VERSION, HNSWIndex
from repro.serve import (
    MicroBatcher,
    QueryServer,
    ResultCache,
    ServeConfig,
    Tenant,
    TenantRegistry,
    TokenBucket,
    WeightedFairQueue,
)
from repro.telemetry import Telemetry, use_telemetry
from repro.types import Metric, batch_distances_multi


def members(vset):
    return sorted(vset)


def distances(db, vector_attributes, query, k):
    """Direct-path (vertex, distance) pairs for comparison."""
    dmap = MapAccum()
    vset = db.vector_search(vector_attributes, query, k, distance_map=dmap)
    return members(vset), dict(dmap.items())


# --------------------------------------------------------------------------
# byte identity & batching
# --------------------------------------------------------------------------


class TestByteIdentity:
    def test_passthrough_matches_direct(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(workers=2, enable_batching=False, enable_cache=False)
        queries = rng.standard_normal((10, 16)).astype(np.float32)
        with QueryServer(db, config) as server:
            for q in queries:
                dmap = MapAccum()
                got = server.search(["Post.content_emb"], q, 5, distance_map=dmap)
                want_members, want_dists = distances(db, ["Post.content_emb"], q, 5)
                assert members(got) == want_members
                assert dict(dmap.items()) == want_dists

    def test_fused_batch_matches_direct(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(
            workers=1,
            enable_batching=True,
            enable_cache=False,
            batch_window_seconds=0.02,
            min_fused=2,
        )
        queries = rng.standard_normal((24, 16)).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config) as server:
            futures = [
                server.submit_search(["Post.content_emb"], q, 5) for q in queries
            ]
            results = [f.result(timeout=30) for f in futures]
        for q, got in zip(queries, results):
            assert members(got) == distances(db, ["Post.content_emb"], q, 5)[0]
        counters = telemetry.registry.snapshot()["counters"]
        assert counters.get("serve.fused_queries", 0) > 0

    def test_explicit_ef_requests_fuse_identically(self, loaded_post_db, rng):
        """An explicit ef is an HNSW accuracy contract; such requests fuse
        through the lockstep topk_search_multi kernel, which honours ef and
        must match the per-query path exactly (members AND distances).
        Their cache entries are tagged with the producing fused-HNSW kernel.
        """
        db = loaded_post_db
        config = ServeConfig(
            workers=1,
            enable_batching=True,
            enable_cache=True,
            batch_window_seconds=0.02,
            min_fused=2,
        )
        queries = rng.standard_normal((8, 16)).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config) as server:
            futures = [
                server.submit_search(
                    ["Post.content_emb"], q, 5, ef=64, distance_map=MapAccum()
                )
                for q in queries
            ]
            results = [f.result(timeout=30) for f in futures]
            stats = server.cache.stats()
        for q, got in zip(queries, results):
            dmap = MapAccum()
            want = db.vector_search(["Post.content_emb"], q, 5, distance_map=dmap, ef=64)
            assert members(got) == members(want)
        counters = telemetry.registry.snapshot()["counters"]
        assert counters.get("serve.fused_queries", 0) > 0
        assert stats["kernels"].get("fused-hnsw", 0) > 0
        assert "hnsw" not in stats["kernels"] or stats["kernels"]["hnsw"] < len(queries)

    def test_explicit_ef_fused_distances_match_per_query(self, loaded_post_db, rng):
        """db-level check of the same contract without serve-layer timing:
        the fused explicit-ef batch equals running each query alone."""
        db = loaded_post_db
        queries = rng.standard_normal((8, 16)).astype(np.float32)
        fused = db.vector_search_batch(
            ["Post.content_emb"], queries, 5, ef=64, min_fused=2
        )
        for q, got in zip(queries, fused):
            dmap = MapAccum()
            want = db.vector_search(["Post.content_emb"], q, 5, distance_map=dmap, ef=64)
            assert members(got) == members(want)

    def test_db_vector_search_batch_equals_per_query(self, loaded_post_db, rng):
        db = loaded_post_db
        queries = rng.standard_normal((8, 16)).astype(np.float32)
        fused = db.vector_search_batch(
            ["Post.content_emb"], queries, 5, min_fused=2
        )
        for q, got in zip(queries, fused):
            assert members(got) == members(db.vector_search(["Post.content_emb"], q, 5))

    def test_batch_below_min_fused_falls_back(self, loaded_post_db, rng):
        db = loaded_post_db
        queries = rng.standard_normal((2, 16)).astype(np.float32)
        fused = db.vector_search_batch(
            ["Post.content_emb"], queries, 5, min_fused=4
        )
        for q, got in zip(queries, fused):
            assert members(got) == members(db.vector_search(["Post.content_emb"], q, 5))

    def test_fused_matches_after_writes_and_vacuum(self, loaded_post_db, rng):
        db = loaded_post_db
        with db.begin() as txn:
            for i in range(200, 220):
                txn.upsert_vertex("Post", i, {"language": "en", "length": i})
                txn.set_embedding(
                    "Post", i, "content_emb", rng.standard_normal(16)
                )
        queries = rng.standard_normal((6, 16)).astype(np.float32)
        fused = db.vector_search_batch(["Post.content_emb"], queries, 7, min_fused=2)
        for q, got in zip(queries, fused):
            assert members(got) == members(db.vector_search(["Post.content_emb"], q, 7))
        db.vacuum()
        fused = db.vector_search_batch(["Post.content_emb"], queries, 7, min_fused=2)
        for q, got in zip(queries, fused):
            assert members(got) == members(db.vector_search(["Post.content_emb"], q, 7))

    def test_batch_distances_multi_validates(self, rng):
        good = rng.standard_normal((3, 4)).astype(np.float32)
        out = batch_distances_multi(good, good, Metric.L2)
        assert out.shape == (3, 3)
        with pytest.raises(VectorSearchError):
            batch_distances_multi(good[0], good, Metric.L2)
        with pytest.raises(VectorSearchError):
            batch_distances_multi(good, good[:, :2], Metric.L2)


# --------------------------------------------------------------------------
# result cache
# --------------------------------------------------------------------------


class TestResultCache:
    def test_hit_on_repeat_and_identical_result(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(workers=1, enable_batching=False, enable_cache=True)
        q = rng.standard_normal(16).astype(np.float32)
        with QueryServer(db, config) as server:
            first = server.search(["Post.content_emb"], q, 5)
            second = server.search(["Post.content_emb"], q, 5)
            stats = server.cache.stats()
        assert members(first) == members(second)
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert members(first) == distances(db, ["Post.content_emb"], q, 5)[0]

    def test_commit_invalidates(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(workers=1, enable_batching=False, enable_cache=True)
        q = rng.standard_normal(16).astype(np.float32)
        with QueryServer(db, config) as server:
            before = server.search(["Post.content_emb"], q, 3)
            # A vector equal to the query becomes the definitive top-1.
            with db.begin() as txn:
                txn.upsert_vertex("Post", 900, {"language": "en", "length": 1})
                txn.set_embedding("Post", 900, "content_emb", q)
            after = server.search(["Post.content_emb"], q, 3)
            stats = server.cache.stats()
        vid_900 = db.store.vid_for_pk("Post", 900)
        assert ("Post", vid_900) not in before
        assert ("Post", vid_900) in after
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_vacuum_invalidates_but_results_stable(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(workers=1, enable_batching=False, enable_cache=True)
        q = rng.standard_normal(16).astype(np.float32)
        with db.begin() as txn:
            txn.upsert_vertex("Post", 901, {"language": "fr", "length": 2})
            txn.set_embedding("Post", 901, "content_emb", rng.standard_normal(16))
        with QueryServer(db, config) as server:
            before = server.search(["Post.content_emb"], q, 5)
            db.vacuum()  # delta merge + index merge move the watermark
            after = server.search(["Post.content_emb"], q, 5)
            stats = server.cache.stats()
        assert members(before) == members(after)
        assert stats["misses"] == 2, "vacuum must invalidate, not serve stale"

    def test_no_cache_flag_bypasses(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(workers=1, enable_batching=False, enable_cache=True)
        q = rng.standard_normal(16).astype(np.float32)
        with QueryServer(db, config) as server:
            server.search(["Post.content_emb"], q, 5, no_cache=True)
            server.search(["Post.content_emb"], q, 5, no_cache=True)
            stats = server.cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0 and stats["entries"] == 0

    def test_cache_records_producing_kernel(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(
            workers=1,
            enable_batching=True,
            enable_cache=True,
            batch_window_seconds=0.02,
            min_fused=2,
        )
        queries = rng.standard_normal((12, 16)).astype(np.float32)
        with QueryServer(db, config) as server:
            # Concurrent default-ef submissions fuse; entries tagged "fused".
            futures = [
                server.submit_search(["Post.content_emb"], q, 5) for q in queries
            ]
            for f in futures:
                assert f.exception(timeout=30) is None
            kernels = server.cache.stats()["kernels"]
        assert kernels.get("fused", 0) + kernels.get("hnsw", 0) == len(queries)
        assert kernels.get("fused", 0) > 0

    def test_lru_bounds(self):
        cache = ResultCache(max_bytes=1 << 20, max_entries=2)
        def key_for(i):
            return ResultCache.key(
                ("Post.content_emb",), np.float32([i]), 3, None, ((1, 1, 1, 0),)
            )
        assert cache.put(key_for(0), ((0.0, "Post", 0),)) == 0
        assert cache.put(key_for(1), ((0.0, "Post", 1),)) == 0
        assert cache.get(key_for(0)) is not None  # 0 becomes most-recent
        assert cache.put(key_for(2), ((0.0, "Post", 2),)) == 1  # evicts 1
        assert cache.get(key_for(1)) is None
        assert cache.get(key_for(0)) is not None
        assert len(cache) == 2

    def test_byte_bound_eviction(self):
        cache = ResultCache(max_bytes=1200, max_entries=64)
        big = tuple((float(i), "Post", i) for i in range(8))
        keys = [
            ResultCache.key(("a",), np.float32([i]), 3, None, ((i, 0, 0, 0),))
            for i in range(4)
        ]
        evicted = sum(cache.put(k, big) for k in keys)
        assert evicted > 0
        assert cache.stats()["bytes"] <= 1200


# --------------------------------------------------------------------------
# micro-batcher collection window
# --------------------------------------------------------------------------


class _FakeRequest:
    """Minimal stand-in: the batcher only ever calls batch_key()."""

    def __init__(self, key):
        self._key = key

    def batch_key(self):
        return self._key


class TestBatcherWindow:
    def test_wait_for_put_ignores_existing_items(self):
        """A non-empty queue alone must not wake the batcher — only a new
        arrival can change which fronts match, so waking on 'non-empty'
        degenerates into a busy spin against incompatible requests."""
        queue = WeightedFairQueue(TenantRegistry())
        queue.put(_FakeRequest(("other",)), "default")
        seen = queue.put_sequence()
        start = time.monotonic()
        assert queue.wait_for_put(seen, 0.05) == seen
        assert time.monotonic() - start >= 0.04

        waker = threading.Timer(0.01, lambda: queue.put(_FakeRequest(None), "default"))
        waker.start()
        start = time.monotonic()
        assert queue.wait_for_put(seen, 5.0) == seen + 1
        assert time.monotonic() - start < 1.0
        queue.close()

    def test_collect_blocks_instead_of_spinning_on_nonmatching(self):
        queue = WeightedFairQueue(TenantRegistry())
        batcher = MicroBatcher(queue, window_seconds=0.15, max_batch=4)
        queue.put(_FakeRequest(("other", 5)), "default")
        leader = _FakeRequest(("mine", 5))
        wall_start = time.monotonic()
        cpu_start = time.process_time()
        batch = batcher.collect(leader)
        wall = time.monotonic() - wall_start
        cpu = time.process_time() - cpu_start
        assert batch == [leader]
        assert queue.depth() == 1, "incompatible front must stay queued"
        assert wall >= 0.1, "window must be honored"
        # A busy spin would burn ~the whole window of CPU; a blocking wait
        # burns almost none.
        assert cpu < 0.1, f"collect() busy-spun: {cpu:.3f}s CPU for {wall:.3f}s wall"
        queue.close()

    def test_collect_fills_from_matching_arrivals(self):
        queue = WeightedFairQueue(TenantRegistry())
        batcher = MicroBatcher(queue, window_seconds=5.0, max_batch=3)
        leader = _FakeRequest(("k",))
        followers = [_FakeRequest(("k",)) for _ in range(2)]
        timers = [
            threading.Timer(0.01 * (i + 1), lambda r=r: queue.put(r, "default"))
            for i, r in enumerate(followers)
        ]
        for t in timers:
            t.start()
        start = time.monotonic()
        batch = batcher.collect(leader)
        elapsed = time.monotonic() - start
        assert batch == [leader, *followers]
        assert elapsed < 4.0, "a full batch must not wait out the window"
        queue.close()


# --------------------------------------------------------------------------
# admission control / overload
# --------------------------------------------------------------------------


@pytest.fixture
def gated_gsql(loaded_post_db, monkeypatch):
    """Block GSQL execution on an event so tests can wedge the one worker."""
    gate = threading.Event()
    session = loaded_post_db.gsql
    original = session.run

    def gated_run(text, **kwargs):
        gate.wait(10)
        return original(text, **kwargs)

    monkeypatch.setattr(session, "run", gated_run)
    return gate


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestAdmission:
    def test_queue_full_sheds_typed(self, loaded_post_db, gated_gsql):
        db = loaded_post_db
        config = ServeConfig(workers=1, max_queue_depth=2, enable_batching=False)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config) as server:
            blocker = server.submit_gsql("INSERT INTO Post VALUES (950)")
            assert wait_until(lambda: server.queue.depth() == 0)
            queued = [
                server.submit_gsql("INSERT INTO Post VALUES (951)"),
                server.submit_gsql("INSERT INTO Post VALUES (952)"),
            ]
            with pytest.raises(AdmissionRejectedError) as excinfo:
                server.submit_gsql("INSERT INTO Post VALUES (953)")
            assert excinfo.value.reason == "queue_full"
            gated_gsql.set()
            for future in [blocker, *queued]:
                assert future.exception(timeout=10) is None
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.shed"] == 1
        assert counters["serve.shed_queue_full"] == 1
        assert counters["serve.completed"] == 3

    def test_rate_limit_sheds_typed(self, loaded_post_db, rng):
        db = loaded_post_db
        tenants = [Tenant("metered", rate_limit=0.001, burst=1.0)]
        config = ServeConfig(workers=1, enable_batching=False, enable_cache=False)
        telemetry = Telemetry()
        q = rng.standard_normal(16).astype(np.float32)
        with use_telemetry(telemetry), QueryServer(db, config, tenants=tenants) as server:
            ok = server.search(["Post.content_emb"], q, 3, tenant="metered")
            assert len(members(ok)) == 3
            with pytest.raises(RateLimitedError) as excinfo:
                server.submit_search(
                    ["Post.content_emb"], q, 3, tenant="metered"
                )
            assert excinfo.value.reason == "rate_limited"
            # Other tenants are unaffected by the metered tenant's bucket.
            server.search(["Post.content_emb"], q, 3)
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.shed_rate_limited"] == 1

    def test_deadline_expired_requests_fail_typed(self, loaded_post_db, gated_gsql):
        db = loaded_post_db
        config = ServeConfig(workers=1, max_queue_depth=8, enable_batching=False)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config) as server:
            blocker = server.submit_gsql("INSERT INTO Post VALUES (960)")
            assert wait_until(lambda: server.queue.depth() == 0)
            doomed = server.submit_gsql(
                "INSERT INTO Post VALUES (961)", timeout=0.01
            )
            time.sleep(0.05)  # let the deadline pass while the worker is wedged
            gated_gsql.set()
            with pytest.raises(QueryTimeoutError):
                doomed.result(timeout=10)
            assert blocker.exception(timeout=10) is None
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.deadline_timeouts"] == 1

    def test_overload_accounts_for_every_request(self, loaded_post_db, rng):
        """Burst 60 requests at a tiny server: each one either completes or
        fails with a typed shed/timeout error — never a hang or a drop —
        and the counters add up in the metrics snapshot."""
        db = loaded_post_db
        config = ServeConfig(
            workers=1, max_queue_depth=4, enable_batching=False,
            enable_cache=False, default_timeout=0.5,
        )
        tenants = [Tenant("burst", rate_limit=50.0, burst=5.0)]
        queries = rng.standard_normal((60, 16)).astype(np.float32)
        telemetry = Telemetry()
        outcomes = {"ok": 0, "shed": 0, "timeout": 0}
        lock = threading.Lock()

        def fire(q):
            try:
                future = server.submit_search(
                    ["Post.content_emb"], q, 5, tenant="burst"
                )
                future.result(timeout=30)
                bucket = "ok"
            except (AdmissionRejectedError, RateLimitedError):
                bucket = "shed"
            except QueryTimeoutError:
                bucket = "timeout"
            with lock:
                outcomes[bucket] += 1

        with use_telemetry(telemetry), QueryServer(db, config, tenants=tenants) as server:
            threads = [threading.Thread(target=fire, args=(q,)) for q in queries]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not any(t.is_alive() for t in threads), "a request hung"
        assert sum(outcomes.values()) == 60
        assert outcomes["shed"] > 0, "overload must shed"
        counters = telemetry.registry.snapshot()["counters"]
        assert counters.get("serve.shed", 0) == outcomes["shed"]
        assert counters.get("serve.deadline_timeouts", 0) == outcomes["timeout"]
        assert (
            counters.get("serve.completed", 0) + counters.get("serve.shed", 0)
            == counters["serve.requests"]
        )

    def test_token_bucket_refills_on_injected_clock(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.2)  # 0.4 tokens refilled
        assert bucket.try_acquire(0.6)  # 1.2 tokens by now
        with pytest.raises(ServeError):
            TokenBucket(rate=0)
        with pytest.raises(ServeError):
            TokenBucket(rate=10, burst=0.5)


# --------------------------------------------------------------------------
# tenancy / fair queueing / lifecycle
# --------------------------------------------------------------------------


class TestTenancy:
    def test_unknown_tenant_rejected(self, loaded_post_db):
        with QueryServer(loaded_post_db) as server:
            with pytest.raises(ServeError, match="unknown tenant"):
                server.submit_gsql("INSERT INTO Post VALUES (1)", tenant="ghost")

    def test_readonly_tenant_cannot_write(self, loaded_post_db, rng):
        db = loaded_post_db
        tenants = [Tenant("reader", allow_writes=False)]
        config = ServeConfig(workers=1, enable_batching=False)
        with QueryServer(db, config, tenants=tenants) as server:
            future = server.submit_gsql(
                "INSERT INTO Post VALUES (970)", tenant="reader"
            )
            error = future.exception(timeout=10)
            assert isinstance(error, GSQLSemanticError)
            assert "read-only" in str(error)
            # Reads still work for the same tenant.
            result = server.run_gsql(
                "SELECT s FROM (s:Person) WHERE s.firstName == \"P0\";",
                tenant="reader",
            )
            assert result is not None
        assert db.store.vid_for_pk("Post", 970) is None

    def test_restricted_role_gets_rbac_filtered_search(self, loaded_post_db, rng):
        db = loaded_post_db
        db.access.create_role("en_only", {"Post": lambda row: row["language"] == "en"})
        tenants = [Tenant("limited", role="en_only")]
        config = ServeConfig(workers=1, enable_batching=False)
        q = rng.standard_normal(16).astype(np.float32)
        with QueryServer(db, config, tenants=tenants) as server:
            got = server.search(["Post.content_emb"], q, 10, tenant="limited")
            direct = db.access.authorized_search(
                "en_only", ["Post.content_emb"], q, 10
            )
        assert members(got) == members(direct)
        with db.snapshot() as snap:
            rows = dict(snap.scan("Post"))
        assert all(rows[vid]["language"] == "en" for _, vid in got)

    def test_weighted_fair_queue_interleaves_by_weight(self):
        registry = TenantRegistry(
            [Tenant("heavy", weight=2.0), Tenant("light", weight=1.0)]
        )
        queue = WeightedFairQueue(registry)
        for i in range(4):
            queue.put(("heavy", i), "heavy")
        for i in range(2):
            queue.put(("light", i), "light")
        order = [queue.take(timeout=1)[0] for _ in range(6)]
        # 2:1 weights → heavy gets ~2 of every 3 slots, not all 4 first.
        assert order.count("heavy") == 4
        assert "light" in order[:3]
        queue.close()

    def test_stop_fails_queued_requests_typed(self, loaded_post_db, gated_gsql):
        db = loaded_post_db
        config = ServeConfig(workers=1, enable_batching=False)
        server = QueryServer(db, config).start()
        blocker = server.submit_gsql("INSERT INTO Post VALUES (980)")
        assert wait_until(lambda: server.queue.depth() == 0)
        stranded = server.submit_gsql("INSERT INTO Post VALUES (981)")
        gated_gsql.set()
        server.stop()
        error = stranded.exception(timeout=10)
        assert isinstance(error, AdmissionRejectedError)
        assert error.reason == "shutdown"
        assert blocker.exception(timeout=10) is None
        with pytest.raises(ServeError):
            server.start()
        with pytest.raises(ServeError):
            server.submit_gsql("INSERT INTO Post VALUES (982)")


# --------------------------------------------------------------------------
# satellites: HNSW persistence, open-loop load generation
# --------------------------------------------------------------------------


class TestHNSWPersistence:
    def build(self, rng, n=64, dim=8):
        index = HNSWIndex(dim=dim, metric=Metric.L2, M=4, ef_construction=32)
        vectors = rng.standard_normal((n, dim)).astype(np.float32)
        index.update_items(np.arange(n, dtype=np.int64), vectors)
        return index, vectors

    def test_roundtrip_preserves_results(self, rng, tmp_path):
        index, vectors = self.build(rng)
        path = tmp_path / "seg.hnsw"
        index.save(path)
        loaded = HNSWIndex.load(path)
        for q in vectors[:5]:
            a = index.topk_search(q, 5)
            b = loaded.topk_search(q, 5)
            assert list(a.ids) == list(b.ids)
            assert np.allclose(a.distances, b.distances)

    def test_corrupt_file_raises_typed(self, rng, tmp_path):
        path = tmp_path / "junk.hnsw"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(IndexPersistenceError):
            HNSWIndex.load(path)

    def test_version_mismatch_raises_typed(self, rng, tmp_path):
        index, _ = self.build(rng)
        path = tmp_path / "seg.hnsw"
        index.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["format_version"] = FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(IndexPersistenceError, match="format version"):
            HNSWIndex.load(path)

    def test_missing_field_raises_typed(self, rng, tmp_path):
        index, _ = self.build(rng)
        path = tmp_path / "seg.hnsw"
        index.save(path)
        payload = pickle.loads(path.read_bytes())
        del payload["links0"]
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(IndexPersistenceError, match="missing fields"):
            HNSWIndex.load(path)

    def test_truncated_vectors_raise_typed(self, rng, tmp_path):
        index, _ = self.build(rng)
        path = tmp_path / "seg.hnsw"
        index.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["vectors"] = payload["vectors"][:-3]
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(IndexPersistenceError):
            HNSWIndex.load(path)

    def test_non_dict_payload_raises_typed(self, tmp_path):
        path = tmp_path / "list.hnsw"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(IndexPersistenceError, match="payload dict"):
            HNSWIndex.load(path)


class TestOpenLoopLoadGen:
    def make_gen(self, deadline=0.02):
        sim = ClusterSimulator(
            make_cluster(1, 8, cores=2), policy=ResiliencePolicy(deadline=deadline)
        )
        return ClosedLoopLoadGenerator(sim, connections=8)

    def test_underload_completes_offered(self):
        gen = self.make_gen(deadline=0.5)
        times = [{seg: 0.004 for seg in range(8)}]
        result = gen.run_open_loop(times, duration_seconds=2.0, target_qps=20, seed=7)
        assert result.offered > 0
        assert result.completed == result.offered
        assert result.failed == 0
        assert result.target_qps == 20

    def test_overload_fails_on_deadline_not_hangs(self):
        gen = self.make_gen(deadline=0.02)
        times = [{seg: 0.004 for seg in range(8)}]
        result = gen.run_open_loop(times, duration_seconds=2.0, target_qps=500, seed=7)
        assert result.offered > 500
        assert result.failed > 0
        assert result.completed == result.offered  # every arrival resolved

    def test_seeded_runs_reproduce(self):
        gen = self.make_gen()
        times = [{seg: 0.004 for seg in range(8)}]
        a = gen.run_open_loop(times, duration_seconds=1.0, target_qps=100, seed=3)
        b = gen.run_open_loop(times, duration_seconds=1.0, target_qps=100, seed=3)
        assert (a.offered, a.completed, a.failed, a.qps) == (
            b.offered, b.completed, b.failed, b.qps,
        )
        c = gen.run_open_loop(times, duration_seconds=1.0, target_qps=100, seed=4)
        assert (a.offered, a.qps) != (c.offered, c.qps)


# --------------------------------------------------------------------------
# freshness SLAs: staleness-bounded reads & read-your-writes tokens
# --------------------------------------------------------------------------


class TestSLA:
    def test_staleness_bound_serves_fresh_when_idle(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(workers=2, enable_batching=False)
        q = rng.standard_normal(16).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config) as server:
            got = members(server.search(["Post.content_emb"], q, 5, max_staleness=0))
            direct = members(db.vector_search(["Post.content_emb"], q, 5))
        assert got == direct
        counters = telemetry.registry.snapshot()["counters"]
        assert counters.get("serve.staleness_rejections", 0) == 0
        assert counters["serve.completed"] == 1

    def test_sla_requests_use_partitioned_cache(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(workers=2, enable_batching=False)
        q = rng.standard_normal(16).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config) as server:
            first = members(server.search(["Post.content_emb"], q, 5, max_staleness=0))
            second = members(server.search(["Post.content_emb"], q, 5, max_staleness=0))
        assert first == second
        counters = telemetry.registry.snapshot()["counters"]
        assert counters.get("serve.cache_hits", 0) >= 1

    def test_read_your_writes_after_commit(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(workers=2, enable_batching=False)
        q = rng.standard_normal(16).astype(np.float32)
        with db.begin() as txn:
            txn.upsert_vertex("Post", 900, {"language": "en", "length": 1})
            txn.set_embedding("Post", 900, "content_emb", q)
        token = db.session_token()
        with QueryServer(db, config) as server:
            got = server.search(["Post.content_emb"], q, 3, session_token=token)
        vid = db.store.vid_for_pk("Post", 900)
        assert ("Post", vid) in got

    def test_future_token_fails_typed(self, loaded_post_db, rng):
        db = loaded_post_db
        config = ServeConfig(workers=1, enable_batching=False, staleness_wait=0.02)
        q = rng.standard_normal(16).astype(np.float32)
        token = db.session_token() + 3  # a commit that will never happen here
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config) as server:
            with pytest.raises(StalenessBoundError) as excinfo:
                server.search(["Post.content_emb"], q, 3, session_token=token)
        assert excinfo.value.session_token == token
        assert excinfo.value.waited > 0
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.session_token_rejections"] == 1
        assert counters.get("serve.session_token_waits", 0) >= 1

    def test_midcommit_window_fails_fast_or_serves_tolerant(
        self, loaded_post_db, rng
    ):
        """Freeze the commit mid-publication (hook fired, last_tid not yet
        published): a ``max_staleness=0`` request must fail typed, never
        serve silently stale, while a lag-tolerant request is served from
        the pre-commit snapshot without being cached.  The config-level
        ``default_max_staleness`` applies to requests that don't pass their
        own bound."""
        db = loaded_post_db
        config = ServeConfig(
            workers=2, enable_batching=False,
            default_max_staleness=0, staleness_wait=0.05,
        )
        q = rng.standard_normal(16).astype(np.float32)
        entered = threading.Event()
        release = threading.Event()

        def stalling_hook(tid, ops):
            entered.set()
            release.wait(timeout=30)

        db.store.register_embedding_hook(stalling_hook)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config) as server:

            def commit():
                with db.begin() as txn:
                    txn.upsert_vertex("Post", 901, {"language": "en", "length": 1})
                    txn.set_embedding("Post", 901, "content_emb", q)

            committer = threading.Thread(target=commit)
            committer.start()
            assert entered.wait(timeout=10), "commit never reached the hook"
            # default_max_staleness=0 routes the plain search down the SLA
            # path; the watermark runs ahead of every pinnable snapshot for
            # as long as the commit is wedged, so it must fail typed.
            with pytest.raises(StalenessBoundError) as excinfo:
                server.search(["Post.content_emb"], q, 3)
            assert excinfo.value.lag >= 1
            assert excinfo.value.max_staleness == 0
            # An explicit lag-tolerant bound overrides the default and is
            # served from the pre-commit snapshot (uncached: commit race).
            tolerant = server.search(["Post.content_emb"], q, 3, max_staleness=5)
            vid = db.store.vid_for_pk("Post", 901)
            assert ("Post", vid) not in tolerant
            release.set()
            committer.join(timeout=30)
            assert not committer.is_alive()
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.staleness_rejections"] == 1
        assert counters.get("serve.staleness_waits", 0) >= 1
        assert counters.get("serve.cache_bypass_commit_race", 0) >= 1

    def test_session_token_closes_commit_publish_window(self, loaded_post_db, rng):
        """The token-vs-commit-publish interleaving: a client holding the
        wedged commit's TID as its session token must not be served from a
        pre-commit snapshot — the server waits until the commit publishes,
        then serves a top-k containing the client's own write."""
        db = loaded_post_db
        config = ServeConfig(workers=2, enable_batching=False, staleness_wait=5.0)
        q = rng.standard_normal(16).astype(np.float32)
        entered = threading.Event()
        release = threading.Event()

        def stalling_hook(tid, ops):
            entered.set()
            release.wait(timeout=30)

        db.store.register_embedding_hook(stalling_hook)
        token = db.session_token() + 1  # the wedged commit's TID
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config) as server:

            def commit():
                with db.begin() as txn:
                    txn.upsert_vertex("Post", 902, {"language": "en", "length": 1})
                    txn.set_embedding("Post", 902, "content_emb", q)

            committer = threading.Thread(target=commit)
            committer.start()
            assert entered.wait(timeout=10), "commit never reached the hook"
            future = server.submit_search(
                ["Post.content_emb"], q, 3, session_token=token
            )
            # The server must be observably *waiting* (re-pinning snapshots),
            # not serving behind the token, before we let the commit publish.
            assert wait_until(
                lambda: telemetry.registry.snapshot()["counters"].get(
                    "serve.session_token_waits", 0
                )
                > 0
            ), "SLA path never waited on the unpublished commit"
            release.set()
            committer.join(timeout=30)
            got = future.result(timeout=10)
            vid = db.store.vid_for_pk("Post", 902)
            assert ("Post", vid) in got, "read-your-writes served a stale top-k"

    def test_invalid_sla_arguments_rejected(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(16).astype(np.float32)
        with QueryServer(db, ServeConfig(workers=1)) as server:
            with pytest.raises(ServeError):
                server.submit_search(["Post.content_emb"], q, 3, max_staleness=-1)
            with pytest.raises(ServeError):
                server.submit_search(["Post.content_emb"], q, 3, session_token=-2)


# --------------------------------------------------------------------------
# noisy-neighbor isolation: cache partitions, queue shares, vacuum quotas
# --------------------------------------------------------------------------


def add_person_embeddings(db, rng, count=40, dim=16):
    """Give Person its own embedding attribute + store (tenant B's data)."""
    db.schema.add_embedding_attribute(
        "Person", "emb", dimension=dim, model="GPT4", metric=Metric.L2
    )
    with db.begin() as txn:
        for i in range(count):
            txn.upsert_vertex("Person", 100 + i, {"firstName": f"B{i}"})
            txn.set_embedding(
                "Person", 100 + i, "emb",
                rng.standard_normal(dim).astype(np.float32),
            )


class TestNoisyNeighbor:
    def test_flooding_tenant_cannot_evict_neighbor_cache(self, loaded_post_db, rng):
        """Tenant B floods its own partition past its entry bound while
        tenant A replays a hot query set; A's entries and hit rate must
        hold because the cache is partitioned per tenant and B's commits
        only move B's store watermark."""
        db = loaded_post_db
        add_person_embeddings(db, rng)
        db.vacuum()
        config = ServeConfig(
            workers=2, enable_batching=False, cache_partition_max_entries=8
        )
        tenants = [Tenant("a"), Tenant("b")]
        hot = rng.standard_normal((4, 16)).astype(np.float32)
        flood = rng.standard_normal((48, 16)).astype(np.float32)
        with QueryServer(db, config, tenants=tenants) as server:
            for q in hot:  # warm A's partition
                server.search(["Post.content_emb"], q, 3, tenant="a")
            for q in flood[:24]:
                server.search(["Person.emb"], q, 3, tenant="b")
            with db.begin() as txn:  # B commits on its own attribute only
                txn.set_embedding(
                    "Person", 100, "emb", rng.standard_normal(16).astype(np.float32)
                )
            for q in flood[24:]:
                server.search(["Person.emb"], q, 3, tenant="b")
            for q in hot:  # A replays: every probe must hit
                server.search(["Post.content_emb"], q, 3, tenant="a")
            stats = server.cache.stats()
        part_a = stats["per_tenant"]["a"]
        part_b = stats["per_tenant"]["b"]
        assert part_a["hits"] == 4 and part_a["misses"] == 4
        assert part_a["entries"] == 4
        assert part_b["evictions"] > 0, "flood must overflow B's partition"
        assert part_b["entries"] <= 8
        # Aggregate stats remain the sum of the partitions.
        assert stats["hits"] == part_a["hits"] + part_b["hits"]

    def test_neighbor_latency_holds_under_concurrent_flood(
        self, loaded_post_db, rng
    ):
        db = loaded_post_db
        add_person_embeddings(db, rng)
        db.vacuum()
        config = ServeConfig(workers=3, cache_partition_max_entries=8)
        tenants = [Tenant("a", weight=2.0), Tenant("b")]
        hot = rng.standard_normal((4, 16)).astype(np.float32)
        flood = rng.standard_normal((64, 16)).astype(np.float32)
        latencies: list[float] = []
        errors: list[BaseException] = []

        def victim(server):
            for i in range(40):
                start = time.perf_counter()
                try:
                    server.search(["Post.content_emb"], hot[i % 4], 3, tenant="a")
                except ReproError as exc:
                    errors.append(exc)
                latencies.append(time.perf_counter() - start)

        def flooder(server, offset):
            for i in range(32):
                try:
                    server.search(
                        ["Person.emb"], flood[(offset + i) % 64], 3, tenant="b"
                    )
                except ReproError as exc:
                    errors.append(exc)

        with QueryServer(db, config, tenants=tenants) as server:
            threads = [
                threading.Thread(target=victim, args=(server,)),
                threading.Thread(target=flooder, args=(server, 0)),
                threading.Thread(target=flooder, args=(server, 32)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads)
            stats = server.cache.stats()
        assert not errors
        lat = sorted(latencies)
        p95 = lat[min(len(lat) - 1, int(len(lat) * 0.95))]
        assert p95 < 1.0, f"victim p95 {p95:.3f}s collapsed under flood"
        part_a = stats["per_tenant"]["a"]
        assert part_a["hits"] / max(1, part_a["hits"] + part_a["misses"]) >= 0.5

    def test_tenant_queue_share_bounds_flooder(self, loaded_post_db, gated_gsql):
        db = loaded_post_db
        config = ServeConfig(workers=1, max_queue_depth=8, enable_batching=False)
        tenants = [Tenant("a"), Tenant("b", max_queue_share=0.25)]
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config, tenants=tenants) as server:
            blocker = server.submit_gsql("INSERT INTO Post VALUES (970)", tenant="a")
            assert wait_until(lambda: server.queue.depth() == 0)
            allowed = [
                server.submit_gsql("INSERT INTO Post VALUES (971)", tenant="b"),
                server.submit_gsql("INSERT INTO Post VALUES (972)", tenant="b"),
            ]
            with pytest.raises(AdmissionRejectedError) as excinfo:
                server.submit_gsql("INSERT INTO Post VALUES (973)", tenant="b")
            assert excinfo.value.reason == "tenant_share"
            # The flooded tenant's cap does not block its neighbor.
            neighbor = server.submit_gsql("INSERT INTO Post VALUES (974)", tenant="a")
            gated_gsql.set()
            for future in [blocker, *allowed, neighbor]:
                assert future.exception(timeout=10) is None
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.shed_tenant_share"] == 1

    def test_vacuum_tenant_quota_defers_flooder_stores(self, loaded_post_db, rng):
        db = loaded_post_db
        add_person_embeddings(db, rng)
        # Fresh unmerged deltas on BOTH of tenant b's stores.
        with db.begin() as txn:
            txn.set_embedding(
                "Post", 0, "content_emb", rng.standard_normal(16).astype(np.float32)
            )
        vm = db.vacuum_manager
        vm.assign_tenant("Post", "content_emb", "b")
        vm.assign_tenant("Person", "emb", "b")
        vm.set_tenant_quota("b", 1)
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            first = vm.run_once()
            second = vm.run_once()
        assert first["quota_deferred"] == 1, "second store must defer"
        assert first["flushed"] > 0
        assert second["quota_deferred"] == 0, "deferred store drains next round"
        assert second["flushed"] > 0
        assert vm.stats.quota_deferrals == 1
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["vacuum.quota_deferrals"] == 1
        # Quota removal restores unlimited rounds.
        vm.set_tenant_quota("b", None)
        third = vm.run_once()
        assert third["quota_deferred"] == 0


# --------------------------------------------------------------------------
# load-generator SLA accounting
# --------------------------------------------------------------------------


class _ScriptedOutcome:
    def __init__(self, completion_seconds, token_waits=0, coverage=1.0):
        self.completion_seconds = completion_seconds
        self.token_waits = token_waits
        self.coverage = coverage


class _ScriptedSimulator:
    """Duck-typed ClusterSimulator returning a fixed outcome script."""

    def __init__(self, script, deadline=1.0):
        self._script = list(script)
        self.injector = None
        self.policy = ResiliencePolicy(deadline=deadline)

    def reset(self):
        pass

    def simulate_request_outcome(self, issue, sample):
        step = self._script.pop(0)
        if isinstance(step, BaseException):
            raise step
        return _ScriptedOutcome(issue + step.completion_seconds,
                                token_waits=step.token_waits)


class TestLoadgenSLAAccounting:
    def test_failure_classes_split_in_load_result(self):
        """Deadline misses, staleness rejections, and token waits land in
        separate LoadResult fields — a deadline miss asks for capacity, a
        staleness rejection asks for the commit pipeline to catch up."""
        script = [
            QueryTimeoutError("too slow", deadline=1.0, elapsed=1.0),
            StalenessBoundError("behind", session_token=9, waited=0.9),
            _ScriptedOutcome(1.0, token_waits=2),
            _ScriptedOutcome(1.0, token_waits=1),
        ]
        gen = ClosedLoopLoadGenerator(_ScriptedSimulator(script), connections=4)
        times = [{0: 0.001}]
        # duration 0.5 < every completion time, so each connection issues
        # exactly once and the script is consumed in order.
        result = gen.run(times, duration_seconds=0.5)
        assert result.failed == 2
        assert result.deadline_failed == 1
        assert result.stale_rejected == 1
        assert result.token_waits == 3
        assert result.completed == 4

    def test_accounting_resets_between_runs(self):
        def make(script):
            return ClosedLoopLoadGenerator(
                _ScriptedSimulator(script), connections=1
            )

        gen = make([StalenessBoundError("behind", waited=0.9)])
        first = gen.run([{0: 0.001}], duration_seconds=0.5)
        assert first.stale_rejected == 1
        gen.simulator = _ScriptedSimulator([_ScriptedOutcome(1.0)])
        second = gen.run([{0: 0.001}], duration_seconds=0.5)
        assert second.stale_rejected == 0 and second.failed == 0
