"""Tests for GSQL accumulators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.graph.accumulators import (
    AndAccum,
    AvgAccum,
    BitwiseAndAccum,
    BitwiseOrAccum,
    HeapAccum,
    ListAccum,
    MapAccum,
    MaxAccum,
    MinAccum,
    OrAccum,
    SetAccum,
    SumAccum,
    VertexAccumMap,
    make_accumulator,
)


class TestScalarAccums:
    def test_sum(self):
        a = SumAccum()
        a += 3
        a += 4
        assert a.value == 7
        a.reset()
        assert a.value == 0

    def test_sum_strings(self):
        a = SumAccum(initial="")
        a += "ab"
        a += "cd"
        assert a.value == "abcd"

    def test_min_max(self):
        mn, mx = MinAccum(), MaxAccum()
        for v in (5, 2, 8):
            mn += v
            mx += v
        assert mn.value == 2
        assert mx.value == 8

    def test_min_empty_is_none(self):
        assert MinAccum().value is None

    def test_avg(self):
        a = AvgAccum()
        for v in (2, 4, 6):
            a += v
        assert a.value == 4
        assert a.count == 3
        assert AvgAccum().value == 0.0

    def test_or_and(self):
        o, n = OrAccum(), AndAccum()
        o += False
        n += True
        assert not o.value and n.value
        o += True
        n += False
        assert o.value and not n.value

    def test_bitwise(self):
        bo, ba = BitwiseOrAccum(), BitwiseAndAccum()
        bo += 0b101
        bo += 0b010
        ba += 0b111
        ba += 0b101
        assert bo.value == 0b111
        assert ba.value == 0b101


class TestContainerAccums:
    def test_list_extends_and_appends(self):
        a = ListAccum()
        a += 1
        a += [2, 3]
        assert a.value == [1, 2, 3]
        assert len(a) == 3

    def test_set_dedups(self):
        a = SetAccum()
        a += 1
        a += 1
        a += {2, 3}
        assert a.value == {1, 2, 3}
        assert 2 in a

    def test_map_overwrite(self):
        a = MapAccum()
        a += ("k", 1)
        a += ("k", 2)
        assert a.value == {"k": 2}
        assert a.get("k") == 2
        assert a.get("missing", -1) == -1

    def test_map_with_value_accum(self):
        a = MapAccum(value_accum=SumAccum)
        a += ("k", 1)
        a += ("k", 2)
        a += ("j", 5)
        assert a.value == {"k": 3, "j": 5}
        assert a.get("k") == 3

    def test_map_rejects_non_pairs(self):
        with pytest.raises(ReproError):
            MapAccum().accum(42)


class TestHeapAccum:
    def test_keeps_k_smallest(self):
        h = HeapAccum(3, ascending=True)
        for v in (5.0, 1.0, 4.0, 2.0, 3.0):
            h += (v, f"p{v}")
        assert [k for k, _ in h.value] == [1.0, 2.0, 3.0]

    def test_keeps_k_largest_descending(self):
        h = HeapAccum(2, ascending=False)
        for v in (1.0, 9.0, 5.0):
            h += (v, None)
        assert [k for k, _ in h.value] == [9.0, 5.0]

    def test_worst_key(self):
        h = HeapAccum(2)
        assert h.worst_key is None
        h += (1.0, "a")
        h += (5.0, "b")
        assert h.worst_key == 5.0
        h += (2.0, "c")
        assert h.worst_key == 2.0

    def test_payloads_never_compared(self):
        class Opaque:  # not orderable
            pass

        h = HeapAccum(2)
        h += (1.0, Opaque())
        h += (1.0, Opaque())
        h += (1.0, Opaque())
        assert len(h) == 2

    def test_merge(self):
        a = HeapAccum(3)
        b = HeapAccum(3)
        for v in (1.0, 5.0):
            a += (v, None)
        for v in (2.0, 0.5):
            b += (v, None)
        a.merge(b)
        assert [k for k, _ in a.value] == [0.5, 1.0, 2.0]

    def test_invalid_k(self):
        with pytest.raises(ReproError):
            HeapAccum(0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50), st.integers(1, 10))
    def test_matches_sorted_prefix_property(self, values, k):
        h = HeapAccum(k)
        for v in values:
            h += (v, None)
        expected = sorted(values)[:k]
        assert [key for key, _ in h.value] == pytest.approx(expected)


class TestVertexAccumMap:
    def test_lazy_per_vertex(self):
        vmap = VertexAccumMap(SumAccum)
        vmap.for_vertex(("P", 1)).accum(2)
        vmap.for_vertex(("P", 1)).accum(3)
        vmap.for_vertex(("P", 2)).accum(7)
        assert vmap.get(("P", 1)) == 5
        assert vmap.get(("P", 2)) == 7
        assert vmap.get(("P", 3)) is None
        assert len(vmap) == 2
        assert dict(vmap.items()) == {("P", 1): 5, ("P", 2): 7}


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_accumulator("SumAccum"), SumAccum)
        assert isinstance(make_accumulator("HeapAccum", 5), HeapAccum)
        assert isinstance(make_accumulator("Map"), MapAccum)

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            make_accumulator("BogusAccum")

    def test_fresh_copies_config(self):
        h = HeapAccum(7, ascending=False)
        g = h.fresh()
        assert g.k == 7 and g.ascending is False and len(g) == 0
