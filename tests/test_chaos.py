"""Seeded chaos tests: the acceptance criteria of the resilience layer.

Each test drives a workload while a :class:`FaultInjector` executes a
deterministic :class:`FaultPlan`, then asserts the availability contract:

- replication factor 2 + any single machine crash or straggler -> zero
  failed queries;
- unrecoverable segment loss in degraded mode -> partial results with
  ``coverage < 1.0`` reported, never an unhandled exception;
- identical fault seeds -> identical event traces.
"""

import numpy as np
import pytest

from repro.cluster import ClosedLoopLoadGenerator, ClusterSimulator, make_cluster
from repro.core.distributed import DistributedSearcher
from repro.errors import (
    FaultInjectionError,
    PartialResultError,
    QueryTimeoutError,
)
from repro.faults import FaultInjector, FaultPlan, ResiliencePolicy


def seg_times(n, each=0.002):
    return {s: each for s in range(n)}


def run_load(
    plan,
    *,
    rf=2,
    policy=None,
    machines=4,
    segments=8,
    cores=4,
    connections=16,
    duration=2.0,
    each=0.002,
):
    """One closed-loop chaos run; returns (LoadResult, injector)."""
    injector = FaultInjector(plan)
    sim = ClusterSimulator(
        make_cluster(machines, segments, cores=cores, replication_factor=rf),
        injector=injector,
        policy=policy,
    )
    result = ClosedLoopLoadGenerator(sim, connections=connections).run(
        [seg_times(segments, each=each)], duration_seconds=duration
    )
    return result, injector


class TestSingleFaultAvailability:
    def test_machine_crash_with_rf2_zero_failed_queries(self):
        plan = FaultPlan(seed=1).crash(2, at=0.2, recover_at=1.0)
        result, injector = run_load(plan)
        assert result.completed > 0
        assert result.failed == 0
        assert result.mean_coverage == 1.0
        kinds = injector.trace_kinds()
        assert "crash" in kinds and "recover" in kinds

    def test_crash_without_recovery_still_zero_failed(self):
        plan = FaultPlan(seed=2).crash(1, at=0.1)
        result, injector = run_load(plan)
        assert result.failed == 0
        assert "crash" in injector.trace_kinds()

    def test_straggler_with_hedging_zero_failed(self):
        plan = FaultPlan(seed=3).straggle(1, factor=20.0, start=0.0, end=2.0)
        result, injector = run_load(
            plan, policy=ResiliencePolicy(hedge_after=0.01)
        )
        assert result.failed == 0
        kinds = injector.trace_kinds()
        assert "straggle" in kinds
        assert "hedge" in kinds  # tail tolerance actually engaged

    def test_straggler_without_hedging_is_slow_but_complete(self):
        plan = FaultPlan(seed=4).straggle(1, factor=20.0, start=0.0, end=2.0)
        result, _ = run_load(plan)
        assert result.failed == 0

    def test_injected_segment_faults_absorbed_by_retries(self):
        plan = (
            FaultPlan(seed=5)
            .fail_segment(0, failures=2)
            .fail_segment(3, failures=1)
            .fail_segment(5, failures=2)
        )
        result, injector = run_load(plan)
        assert result.failed == 0
        assert injector.trace_kinds().count("segment-fault") == 5
        assert "retry" in injector.trace_kinds()

    def test_dispatch_drops_are_resent(self):
        plan = FaultPlan(seed=6).degrade_network(
            drop_probability=0.2, start=0.0, end=2.0
        )
        result, injector = run_load(plan)
        assert result.failed == 0
        assert "drop" in injector.trace_kinds()


class TestDegradedMode:
    def test_unrecoverable_loss_reports_partial_coverage(self):
        """RF=1 + permanent machine loss: explicit coverage, no exceptions."""
        plan = FaultPlan(seed=7).crash(1, at=0.1)
        result, injector = run_load(
            plan,
            rf=1,
            machines=2,
            policy=ResiliencePolicy(allow_partial=True),
        )
        assert result.failed == 0  # never an unhandled exception
        assert result.partial > 0
        assert result.mean_coverage < 1.0
        assert "segment-lost" in injector.trace_kinds()

    def test_unrecoverable_loss_without_degraded_mode_fails_queries(self):
        plan = FaultPlan(seed=8).crash(1, at=0.1)
        result, _ = run_load(plan, rf=1, machines=2)
        assert result.failed > 0

    def test_min_coverage_floor_fails_queries_below_it(self):
        plan = FaultPlan(seed=9).crash(1, at=0.1)
        result, _ = run_load(
            plan,
            rf=1,
            machines=2,
            policy=ResiliencePolicy(allow_partial=True, min_coverage=0.9),
        )
        assert result.failed > 0  # coverage 0.5 violates the floor

    def test_impossible_deadline_times_out_queries(self):
        result, injector = run_load(
            FaultPlan(seed=10),
            policy=ResiliencePolicy(deadline=1e-4, allow_partial=True),
        )
        assert result.failed == result.completed > 0

    def test_deadline_cuts_straggler_segments_in_degraded_mode(self):
        plan = FaultPlan(seed=11).straggle(1, factor=200.0, start=0.0, end=2.0)
        result, injector = run_load(
            plan,
            policy=ResiliencePolicy(deadline=0.05, allow_partial=True),
            connections=8,
        )
        assert result.failed == 0
        assert result.mean_coverage <= 1.0
        # every query either made the deadline fully or shed load explicitly
        assert result.partial == sum(
            1 for e in injector.trace if e.kind == "deadline"
        )


class TestFaultMatrixSweep:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_matrix_with_rf2_zero_failed(self, seed):
        """Acceptance: any seeded single-failure matrix, RF=2, no failures."""
        plan = FaultPlan.random(
            seed,
            num_machines=4,
            num_segments=8,
            duration=2.0,
            crashes=2,
            stragglers=1,
            segment_faults=2,
        )
        result, _ = run_load(plan)
        assert result.completed > 0
        assert result.failed == 0
        assert result.mean_coverage == 1.0

    def test_identical_seeds_reproduce_identical_traces(self):
        traces = []
        for _ in range(2):
            plan = FaultPlan.random(
                7, num_machines=4, num_segments=8, crashes=2, segment_faults=2
            )
            _, injector = run_load(plan)
            traces.append(injector.trace)
        assert traces[0]  # the run actually injected something
        assert traces[0] == traces[1]

    def test_breaker_quarantines_repeat_offender(self):
        """A machine failing every attempt trips the breaker; queries survive."""
        plan = FaultPlan(seed=12)
        for seg_no in range(8):
            plan.fail_segment(seg_no, failures=2, machine_id=1)
        result, injector = run_load(plan, policy=ResiliencePolicy(breaker_threshold=2))
        assert result.failed == 0
        assert "breaker-open" in injector.trace_kinds()


class TestRealSearcherChaos:
    """Chaos through the real distributed query path (not the simulator)."""

    def _searchers(self, db, plan=None, policy=None, rf=2, machines=2):
        store = db.service.store("Post", "content_emb")
        baseline = DistributedSearcher(store, machines, replication_factor=rf)
        chaotic = DistributedSearcher(
            store,
            machines,
            replication_factor=rf,
            injector=FaultInjector(plan) if plan is not None else None,
            policy=policy,
        )
        return store, baseline, chaotic

    def test_segment_faults_do_not_change_results(self, loaded_post_db):
        db = loaded_post_db
        plan = FaultPlan(seed=20).fail_segment(0, failures=2).fail_segment(2)
        _, baseline, chaotic = self._searchers(db, plan)
        query = db._test_vectors[17]
        with db.snapshot() as snap:
            want = baseline.search(query, 10, snapshot_tid=snap.tid, ef=64)
            got = chaotic.search(query, 10, snapshot_tid=snap.tid, ef=64)
        assert np.array_equal(want.result.ids, got.result.ids)
        assert np.allclose(want.result.distances, got.result.distances)
        assert got.coverage == 1.0
        assert got.failed_segments == []
        assert got.retries >= 3  # the injected failures were retried away

    def test_machine_crash_fails_over_between_queries(self, loaded_post_db):
        db = loaded_post_db
        plan = FaultPlan(seed=21).crash(1, at_query=1)
        _, baseline, chaotic = self._searchers(db, plan)
        queries = db._test_vectors[:3]
        with db.snapshot() as snap:
            for query in queries:
                want = baseline.search(query, 5, snapshot_tid=snap.tid, ef=64)
                got = chaotic.search(query, 5, snapshot_tid=snap.tid, ef=64)
                assert np.array_equal(want.result.ids, got.result.ids)
                assert got.coverage == 1.0
        assert "crash" in chaotic.injector.trace_kinds()

    def test_exhausted_segment_raises_partial_result_error(self, loaded_post_db):
        db = loaded_post_db
        plan = FaultPlan(seed=22).fail_segment(1, failures=10)
        _, _, chaotic = self._searchers(db, plan, rf=1)
        with db.snapshot() as snap:
            with pytest.raises(PartialResultError) as excinfo:
                chaotic.search(db._test_vectors[0], 5, snapshot_tid=snap.tid, ef=64)
        assert excinfo.value.coverage == 0.75  # 3 of 4 segments answered
        assert excinfo.value.result is not None  # partial top-k attached

    def test_exhausted_segment_degrades_when_allowed(self, loaded_post_db):
        db = loaded_post_db
        plan = FaultPlan(seed=23).fail_segment(1, failures=10)
        _, _, chaotic = self._searchers(
            db, plan, rf=1, policy=ResiliencePolicy(allow_partial=True)
        )
        with db.snapshot() as snap:
            out = chaotic.search(db._test_vectors[0], 5, snapshot_tid=snap.tid, ef=64)
        assert out.coverage == 0.75
        assert out.failed_segments == [1]
        assert out.retries >= 3
        assert len(out.result) == 5  # still a full top-k from live segments

    def test_zero_deadline_raises_query_timeout(self, loaded_post_db):
        db = loaded_post_db
        _, _, chaotic = self._searchers(
            db,
            FaultPlan(seed=24),
            policy=ResiliencePolicy(deadline=0.0, allow_partial=True),
        )
        with db.snapshot() as snap:
            with pytest.raises(QueryTimeoutError):
                chaotic.search(db._test_vectors[0], 5, snapshot_tid=snap.tid, ef=64)

    def test_store_level_fault_hook(self, loaded_post_db):
        """install_store routes search_segment through the injected gate."""
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        injector = FaultInjector(FaultPlan(seed=25).fail_segment(2, failures=1))
        injector.install_store(store)
        try:
            query = db._test_vectors[0]
            with db.snapshot() as snap:
                with pytest.raises(FaultInjectionError):
                    store.search_segment(2, query, 5, snapshot_tid=snap.tid)
                # the single injected failure is consumed; next attempt works
                out = store.search_segment(2, query, 5, snapshot_tid=snap.tid)
            assert out.seg_no == 2
        finally:
            store.fault_hook = None
