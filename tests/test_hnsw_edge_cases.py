"""HNSW edge cases and robustness tests."""

import numpy as np
import pytest

from repro.index import HNSWIndex
from repro.types import Metric


class TestDegenerateInputs:
    def test_single_vector(self):
        index = HNSWIndex(4, Metric.L2)
        index.update_items([7], np.ones((1, 4), dtype=np.float32))
        result = index.topk_search(np.ones(4, dtype=np.float32), 3)
        assert result.ids.tolist() == [7]

    def test_all_identical_vectors(self):
        index = HNSWIndex(4, Metric.L2, M=4, ef_construction=16)
        data = np.ones((50, 4), dtype=np.float32)
        index.update_items(np.arange(50), data)
        result = index.topk_search(np.ones(4, dtype=np.float32), 10, ef=32)
        assert len(result) == 10
        assert np.allclose(result.distances, 0.0, atol=1e-5)

    def test_zero_vectors_cosine(self):
        index = HNSWIndex(4, Metric.COSINE, M=4)
        data = np.zeros((10, 4), dtype=np.float32)
        data[5] = [1, 0, 0, 0]
        index.update_items(np.arange(10), data)
        result = index.topk_search(np.array([1, 0, 0, 0], dtype=np.float32), 1, ef=16)
        assert result.ids[0] == 5

    def test_zero_query_cosine(self):
        index = HNSWIndex(4, Metric.COSINE, M=4)
        index.update_items([0, 1], np.eye(2, 4, dtype=np.float32) + 1)
        result = index.topk_search(np.zeros(4, dtype=np.float32), 2, ef=16)
        assert len(result) == 2  # well-defined, no NaNs
        assert np.all(np.isfinite(result.distances))

    def test_huge_values(self):
        index = HNSWIndex(4, Metric.L2, M=4)
        data = np.full((20, 4), 1e18, dtype=np.float32)
        data[3] = 0.0
        index.update_items(np.arange(20), data)
        result = index.topk_search(np.zeros(4, dtype=np.float32), 1, ef=16)
        assert result.ids[0] == 3

    def test_negative_external_ids_rejected_gracefully(self):
        # external ids are arbitrary ints; negatives must round-trip
        index = HNSWIndex(4, Metric.L2, M=4)
        index.update_items([-5, -1], np.eye(2, 4, dtype=np.float32))
        assert -5 in index
        result = index.topk_search(np.array([1, 0, 0, 0], dtype=np.float32), 1, ef=16)
        assert result.ids[0] == -5

    def test_noncontiguous_ids(self):
        index = HNSWIndex(4, Metric.L2, M=4)
        ids = [10, 1000, 99999, 7]
        index.update_items(ids, np.eye(4, dtype=np.float32))
        for ext_id in ids:
            assert ext_id in index


class TestDeleteHeavyWorkloads:
    def test_delete_majority_then_search(self, rng):
        data = rng.standard_normal((300, 8)).astype(np.float32)
        index = HNSWIndex(8, Metric.L2, M=8, ef_construction=32)
        index.update_items(np.arange(300), data)
        index.delete_items(list(range(0, 300, 2)))  # delete half
        result = index.topk_search(data[1], 10, ef=128)
        assert result.ids[0] == 1
        assert all(i % 2 == 1 for i in result.ids)
        assert len(index) == 150

    def test_delete_everything(self, rng):
        data = rng.standard_normal((30, 8)).astype(np.float32)
        index = HNSWIndex(8, Metric.L2, M=8)
        index.update_items(np.arange(30), data)
        index.delete_items(list(range(30)))
        assert len(index) == 0
        result = index.topk_search(data[0], 5, ef=64)
        assert len(result) == 0

    def test_repeated_update_same_id(self, rng):
        index = HNSWIndex(8, Metric.L2, M=8)
        base = rng.standard_normal((20, 8)).astype(np.float32)
        index.update_items(np.arange(20), base)
        for round_no in range(10):
            vec = np.full(8, float(round_no), dtype=np.float32)
            index.update_items([3], vec.reshape(1, -1))
        assert np.allclose(index.get_embedding(3), 9.0)
        assert len(index) == 20
        result = index.topk_search(np.full(8, 9.0, np.float32), 1, ef=64)
        assert result.ids[0] == 3


class TestStatsAccounting:
    def test_hops_counted(self, rng):
        data = rng.standard_normal((200, 8)).astype(np.float32)
        index = HNSWIndex(8, Metric.L2, M=8, ef_construction=32)
        index.update_items(np.arange(200), data)
        before = index.stats.num_hops
        index.topk_search(data[0], 5, ef=64)
        assert index.stats.num_hops > before

    def test_build_seconds_accumulates(self, rng):
        index = HNSWIndex(8, Metric.L2, M=8)
        index.update_items([0], rng.standard_normal((1, 8)).astype(np.float32))
        first = index.stats.build_seconds
        index.update_items([1], rng.standard_normal((1, 8)).astype(np.float32))
        assert index.stats.build_seconds > first

    def test_deleted_count(self, rng):
        index = HNSWIndex(8, Metric.L2, M=8)
        index.update_items(np.arange(5), rng.standard_normal((5, 8)).astype(np.float32))
        index.delete_items([0, 1, 99])  # 99 doesn't exist
        assert index.stats.num_deleted == 2
