"""Tests for the write-ahead log."""

import numpy as np
import pytest

from repro.graph.wal import WriteAheadLog, _jsonify, _unjsonify


class TestJsonRoundtrip:
    def test_ndarray(self):
        arr = np.array([1.5, 2.5], dtype=np.float32)
        out = _unjsonify(_jsonify(arr))
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float32
        assert np.allclose(out, arr)

    def test_nested_structures(self):
        value = {"a": [1, (2, 3)], "b": {"c": np.array([1.0])}}
        out = _unjsonify(_jsonify(value))
        assert out["a"] == [1, [2, 3]]
        assert np.allclose(out["b"]["c"], [1.0])

    def test_numpy_scalars(self):
        assert _jsonify(np.int64(7)) == 7
        assert _jsonify(np.float32(1.5)) == 1.5


class TestMemoryLog:
    def test_append_replay(self):
        wal = WriteAheadLog()
        wal.append(1, [("upsert_vertex", "V", 1, {"x": 2})])
        wal.append(2, [("delete_vertex", "V", 1)])
        replayed = list(wal.replay())
        assert [tid for tid, _ in replayed] == [1, 2]
        assert replayed[0][1][0][0] == "upsert_vertex"


class TestFileLog:
    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(1, [("upsert_vertex", "V", 1, {"emb": np.ones(3)})])
        with WriteAheadLog(path) as wal:
            wal.append(2, [("delete_vertex", "V", 1)])
        replayed = list(WriteAheadLog(path).replay())
        assert len(replayed) == 2
        vec = replayed[0][1][0][3]["emb"]
        assert np.allclose(vec, 1.0)

    def test_replay_missing_file(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "nope" / "log.wal")
        wal.close()
        (tmp_path / "nope" / "log.wal").unlink()
        assert list(WriteAheadLog.__new__(WriteAheadLog).__class__(tmp_path / "other.wal").replay()) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(1, [("noop",)])
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(list(WriteAheadLog(path).replay())) == 1

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "log.wal"
        wal = WriteAheadLog(path)
        wal.append(1, [("noop",)])
        wal.close()
        assert path.exists()
