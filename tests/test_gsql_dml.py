"""Tests for GSQL DML: INSERT INTO / DELETE FROM."""

import numpy as np
import pytest

from repro import TigerVectorDB
from repro.errors import GSQLSemanticError


@pytest.fixture
def db():
    db = TigerVectorDB(segment_size=16)
    db.run_gsql(
        """
        CREATE VERTEX Doc (id INT PRIMARY KEY, title STRING, score INT);
        CREATE DIRECTED EDGE refs (FROM Doc, TO Doc);
        ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb (DIMENSION = 4, METRIC = L2);
        """
    )
    yield db
    db.close()


class TestInsertVertex:
    def test_positional_attributes(self, db):
        db.run_gsql('INSERT INTO Doc VALUES (1, "alpha", 7);')
        with db.snapshot() as snap:
            vid = snap.vid_for_pk("Doc", 1)
            assert snap.get_attr("Doc", vid, "title") == "alpha"
            assert snap.get_attr("Doc", vid, "score") == 7

    def test_trailing_embedding_value(self, db):
        db.run_gsql('INSERT INTO Doc VALUES (2, "b", 0, [1.0, 2.0, 3.0, 4.0]);')
        store = db.service.store("Doc", "emb")
        assert np.allclose(
            store.get_embedding(db.vid_for("Doc", 2)), [1, 2, 3, 4]
        )

    def test_partial_values_ok(self, db):
        db.run_gsql("INSERT INTO Doc VALUES (3);")
        with db.snapshot() as snap:
            assert snap.vid_for_pk("Doc", 3) is not None

    def test_too_many_values_rejected(self, db):
        with pytest.raises(GSQLSemanticError):
            db.run_gsql('INSERT INTO Doc VALUES (1, "a", 1, [1,2,3,4], [5,6,7,8]);')

    def test_insert_with_params(self, db):
        db.run_gsql("INSERT INTO Doc VALUES (pk, name, 0);", pk=9, name="param")
        with db.snapshot() as snap:
            vid = snap.vid_for_pk("Doc", 9)
            assert snap.get_attr("Doc", vid, "title") == "param"

    def test_upsert_semantics(self, db):
        db.run_gsql('INSERT INTO Doc VALUES (1, "v1", 1);')
        db.run_gsql('INSERT INTO Doc VALUES (1, "v2", 2);')
        with db.snapshot() as snap:
            assert snap.count("Doc") == 1
            vid = snap.vid_for_pk("Doc", 1)
            assert snap.get_attr("Doc", vid, "title") == "v2"


class TestInsertEdge:
    def test_edge(self, db):
        db.run_gsql('INSERT INTO Doc VALUES (1, "a", 0); INSERT INTO Doc VALUES (2, "b", 0);')
        db.run_gsql("INSERT INTO EDGE refs VALUES (1, 2);")
        with db.snapshot() as snap:
            v1 = snap.vid_for_pk("Doc", 1)
            assert snap.degree("Doc", v1, "refs") == 1

    def test_arity_checked(self, db):
        with pytest.raises(GSQLSemanticError):
            db.run_gsql("INSERT INTO EDGE refs VALUES (1);")


class TestDelete:
    def seed(self, db):
        for i in range(6):
            db.run_gsql(f'INSERT INTO Doc VALUES ({i}, "d{i}", {i * 10});')

    def test_delete_with_predicate(self, db):
        self.seed(db)
        n = db.run_gsql("DELETE FROM Doc d WHERE d.score >= 30;").result
        assert n == 3
        with db.snapshot() as snap:
            assert snap.count("Doc") == 3

    def test_delete_all(self, db):
        self.seed(db)
        n = db.run_gsql("DELETE FROM Doc;").result
        assert n == 6
        with db.snapshot() as snap:
            assert snap.count("Doc") == 0

    def test_delete_cascades_embeddings(self, db):
        db.run_gsql('INSERT INTO Doc VALUES (1, "a", 0, [1.0, 1, 1, 1]);')
        store = db.service.store("Doc", "emb")
        vid = db.vid_for("Doc", 1)
        assert store.get_embedding(vid) is not None
        db.run_gsql("DELETE FROM Doc d WHERE d.id == 1;")
        assert store.get_embedding(vid) is None

    def test_deleted_not_searchable(self, db):
        db.run_gsql('INSERT INTO Doc VALUES (1, "a", 0, [9.0, 9, 9, 9]);')
        db.run_gsql('INSERT INTO Doc VALUES (2, "b", 0, [1.0, 1, 1, 1]);')
        db.vacuum()
        db.run_gsql("DELETE FROM Doc d WHERE d.id == 1;")
        r = db.run_gsql(
            "SELECT s FROM (s:Doc) ORDER BY VECTOR_DIST(s.emb, [9.0,9,9,9]) LIMIT 1;"
        )
        (vtype, vid), _ = r.result.ranking[0]
        assert db.pk_for(vtype, vid) == 2
