"""Tests for product quantization: codebooks, the ADC kernel, and IVF_PQ.

The load-bearing properties (ISSUE 8 acceptance):

- ADC distances match the exact distance *to the reconstruction* within
  float tolerance on every metric, including zero vectors and rows that
  were replaced after encoding.
- The fused multi-query path is bit-identical to per-query evaluation
  (same gather + sum, so equality is exact, not approximate).
- When every row is distinct and fits the codebook (n <= 256 per
  subspace), reconstruction is exact and ADC equals the true distance.
"""

import numpy as np
import pytest

from repro.errors import VectorSearchError
from repro.index import (
    BruteForceIndex,
    IVFPQIndex,
    PQCodebook,
    PQCodes,
    PQKernel,
    PQSearchConfig,
    create_index,
)
from repro.index.pq import CODEBOOK_SIZE, _pad_table
from repro.types import IndexType, Metric, normalize

METRICS = [Metric.L2, Metric.IP, Metric.COSINE]


def reference_distances(decoded: np.ndarray, query: np.ndarray, metric: Metric):
    """Exact distance from ``query`` to each reconstructed row.

    COSINE follows the kernel contract: rows were L2-normalized *before*
    encoding, so the reconstruction is used as-is (no re-normalization)
    against the unit query.
    """
    decoded = np.asarray(decoded, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    if metric is Metric.L2:
        return np.maximum(((decoded - query) ** 2).sum(axis=1), 0.0)
    if metric is Metric.COSINE:
        norm = np.linalg.norm(query)
        unit = query if norm == 0.0 else query / norm
        return 1.0 - decoded @ unit
    return 1.0 - decoded @ query


@pytest.fixture
def rows(rng):
    return rng.standard_normal((300, 16)).astype(np.float32)


# ---------------------------------------------------------------------------
# codebook
# ---------------------------------------------------------------------------


class TestPQCodebook:
    def test_train_shapes(self, rows):
        book = PQCodebook.train(rows, 4)
        assert book.m == 4
        assert book.splits == [(0, 4), (4, 8), (8, 12), (12, 16)]
        for table in book.centroids:
            assert table.shape == (CODEBOOK_SIZE, 4)
            assert table.dtype == np.float32

    def test_uneven_split_allowed(self, rng):
        rows = rng.standard_normal((50, 10)).astype(np.float32)
        book = PQCodebook.train(rows, 3)
        widths = [stop - start for start, stop in book.splits]
        assert sorted(widths) == [3, 3, 4]
        assert book.splits[0][0] == 0 and book.splits[-1][1] == 10

    def test_encode_decode_roundtrip_small_n(self, rng):
        # 40 distinct rows, 40 < 256 per-subspace points: k-means places a
        # centroid on every point, so reconstruction is exact.
        rows = rng.standard_normal((40, 8)).astype(np.float32)
        book = PQCodebook.train(rows, 2, iterations=12)
        decoded = book.decode(book.encode(rows))
        np.testing.assert_allclose(decoded, rows, atol=1e-5)

    def test_train_validation(self, rows):
        with pytest.raises(VectorSearchError):
            PQCodebook.train(np.zeros((0, 8), dtype=np.float32), 2)
        with pytest.raises(VectorSearchError):
            PQCodebook.train(rows, 0)
        with pytest.raises(VectorSearchError):
            PQCodebook.train(rows, 17)  # m > dim

    def test_encode_dimension_check(self, rows):
        book = PQCodebook.train(rows, 4)
        with pytest.raises(VectorSearchError):
            book.encode(np.zeros((2, 5), dtype=np.float32))
        with pytest.raises(VectorSearchError):
            book.lut(np.zeros(5, dtype=np.float32), Metric.L2)

    def test_affine_matches_sq8_arithmetic(self):
        lo = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        scale = np.array([0.5, 0.25, 1.0], dtype=np.float32)
        book = PQCodebook.affine(lo, scale)
        assert book.m == 3 and book.dim == 3
        codes = np.array([[0, 4, 255], [255, 0, 1]], dtype=np.uint8)
        expected = codes.astype(np.float32) * scale + lo
        np.testing.assert_allclose(book.decode(codes), expected)
        # Encoding a decoded point returns the same codes (grid points).
        np.testing.assert_array_equal(book.encode(expected), codes)

    def test_affine_shape_mismatch(self):
        with pytest.raises(VectorSearchError):
            PQCodebook.affine(np.zeros(3), np.zeros(4))

    def test_pad_table_tiles(self):
        trained = np.arange(6, dtype=np.float32).reshape(3, 2)
        padded = _pad_table(trained)
        assert padded.shape == (CODEBOOK_SIZE, 2)
        np.testing.assert_array_equal(padded[:3], trained)
        np.testing.assert_array_equal(padded[3:6], trained)

    def test_memory_bytes(self, rows):
        book = PQCodebook.train(rows, 4)
        assert book.memory_bytes == 4 * CODEBOOK_SIZE * 4 * 4


# ---------------------------------------------------------------------------
# ADC correctness
# ---------------------------------------------------------------------------


class TestADC:
    @pytest.mark.parametrize("metric", METRICS)
    def test_adc_matches_reference_on_reconstruction(self, rows, rng, metric):
        pq = PQCodes.from_vectors(PQCodebook.train(rows, 4, metric=metric), rows, metric)
        kernel = pq.kernel(metric)
        decoded = pq.decode()
        for query in rng.standard_normal((5, 16)).astype(np.float32):
            ctx = kernel.query(query)
            got = kernel.distances_prefix(ctx, len(pq))
            want = reference_distances(decoded, query, metric)
            np.testing.assert_allclose(got, want, atol=1e-3, rtol=1e-4)

    @pytest.mark.parametrize("metric", METRICS)
    def test_adc_exact_when_reconstruction_exact(self, rng, metric):
        # n=40 distinct rows -> exact codebook -> ADC equals the true
        # distance to the *original* rows, not just the reconstruction.
        rows = rng.standard_normal((40, 8)).astype(np.float32)
        book = PQCodebook.train(rows, 2, metric=metric, iterations=12)
        pq = PQCodes.from_vectors(book, rows, metric)
        kernel = pq.kernel(metric)
        stored = normalize(rows) if metric is Metric.COSINE else rows
        query = rng.standard_normal(8).astype(np.float32)
        got = kernel.distances_prefix(kernel.query(query), 40)
        want = reference_distances(stored, query, metric)
        np.testing.assert_allclose(got, want, atol=1e-4)

    @pytest.mark.parametrize("metric", METRICS)
    def test_zero_query_and_zero_rows(self, rng, metric):
        rows = rng.standard_normal((30, 8)).astype(np.float32)
        rows[3] = 0.0
        rows[17] = 0.0
        book = PQCodebook.train(rows, 2, metric=metric, iterations=10)
        pq = PQCodes.from_vectors(book, rows, metric)
        kernel = pq.kernel(metric)
        decoded = pq.decode()
        for query in (np.zeros(8, dtype=np.float32), rows[3]):
            got = kernel.distances_prefix(kernel.query(query), 30)
            want = reference_distances(decoded, query, metric)
            np.testing.assert_allclose(got, want, atol=1e-3)
            assert np.all(np.isfinite(got))

    @pytest.mark.parametrize("metric", METRICS)
    def test_adc_after_row_replacement(self, rng, metric):
        # Re-encode a replaced row against the original codebook — the
        # tiered store's "cold snapshot built after updates" case.
        rows = rng.standard_normal((100, 8)).astype(np.float32)
        book = PQCodebook.train(rows, 2, metric=metric)
        replaced = rows.copy()
        replaced[7] = rng.standard_normal(8).astype(np.float32) * 2.0
        pq = PQCodes.from_vectors(book, replaced, metric)
        kernel = pq.kernel(metric)
        decoded = pq.decode()
        query = rng.standard_normal(8).astype(np.float32)
        got = kernel.distances_prefix(kernel.query(query), 100)
        want = reference_distances(decoded, query, metric)
        np.testing.assert_allclose(got, want, atol=1e-3, rtol=1e-4)

    def test_l2_rank_is_true_distance(self, rows):
        # q_sq is folded into the L2 LUT, so rank == true (module doc).
        pq = PQCodes.from_vectors(PQCodebook.train(rows, 4), rows, Metric.L2)
        kernel = pq.kernel(Metric.L2)
        ctx = kernel.query(rows[0])
        assert ctx.q_sq == 0.0
        rank = kernel.rank(ctx, np.arange(20))
        np.testing.assert_array_equal(kernel.to_true(ctx, rank.copy()), rank)


# ---------------------------------------------------------------------------
# kernel contract
# ---------------------------------------------------------------------------


class TestPQKernelContract:
    @pytest.fixture
    def kernel(self, rows):
        pq = PQCodes.from_vectors(PQCodebook.train(rows, 4), rows, Metric.L2)
        return pq.kernel(Metric.L2)

    def test_block_paths_agree(self, kernel, rows):
        ctx = kernel.query(rows[1])
        picked = np.array([0, 5, 17, 299])
        direct = kernel.rank(ctx, picked)
        via_block = kernel.rank_from_block(ctx, kernel.block(picked))
        np.testing.assert_array_equal(direct, via_block)
        for i, row in enumerate(picked):
            assert kernel.rank_one(ctx, int(row)) == pytest.approx(direct[i])

    @pytest.mark.parametrize("metric", METRICS)
    def test_fused_multi_bit_identical_to_solo(self, rows, rng, metric):
        pq = PQCodes.from_vectors(PQCodebook.train(rows, 4, metric=metric), rows, metric)
        kernel = pq.kernel(metric)
        queries = rng.standard_normal((6, 16)).astype(np.float32)
        picked = np.arange(0, 300, 7)
        mctx = kernel.queries(queries)
        fused = kernel.distances_multi(mctx, picked)
        solo = np.stack(
            [kernel.distances(kernel.query(q), picked) for q in queries]
        )
        np.testing.assert_array_equal(fused, solo)  # exact, not approx
        fused_prefix = kernel.distances_multi_prefix(kernel.queries(queries), 50)
        solo_prefix = np.stack(
            [kernel.distances_prefix(kernel.query(q), 50) for q in queries]
        )
        np.testing.assert_array_equal(fused_prefix, solo_prefix)

    def test_fused_counts_distances(self, kernel, rows):
        mctx = kernel.queries(rows[:3])
        kernel.distances_multi(mctx, np.arange(10))
        assert [ctx.num_distances for ctx in mctx.contexts] == [10, 10, 10]

    @pytest.mark.parametrize("metric", METRICS)
    def test_pairwise_matches_decoded_reference(self, rows, metric):
        pq = PQCodes.from_vectors(PQCodebook.train(rows, 4, metric=metric), rows, metric)
        kernel = pq.kernel(metric)
        picked = np.array([0, 3, 9, 41])
        got = kernel.pairwise(picked)
        decoded = pq.decode()[picked]
        if metric is Metric.L2:
            want = np.maximum(
                ((decoded[:, None, :] - decoded[None, :, :]) ** 2).sum(axis=2), 0.0
            )
        else:
            want = 1.0 - decoded @ decoded.T
        np.testing.assert_allclose(got, want, atol=1e-3)

    def test_cross_matches_per_query(self, kernel, rows, rng):
        queries = rng.standard_normal((3, 16)).astype(np.float32)
        got = kernel.cross(queries, n=40)
        want = np.stack(
            [kernel.distances_prefix(kernel.query(q), 40) for q in queries]
        )
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_immutable_binding(self, kernel, rows):
        with pytest.raises(VectorSearchError):
            kernel.attach(rows, 10)
        with pytest.raises(VectorSearchError):
            kernel.set_row(0, rows[0])
        with pytest.raises(VectorSearchError):
            kernel.set_rows([0, 1], rows[:2])

    def test_code_shape_validation(self, rows):
        book = PQCodebook.train(rows, 4)
        with pytest.raises(VectorSearchError):
            PQKernel(book, np.zeros((10, 3), dtype=np.uint8), Metric.L2)
        with pytest.raises(VectorSearchError):
            PQCodes(book, np.zeros(10, dtype=np.uint8))


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------


class TestPQSearchConfig:
    def test_candidates_inflation(self):
        cfg = PQSearchConfig(rerank=True, rerank_factor=4)
        assert cfg.candidates(10) == 40
        assert PQSearchConfig(rerank=False).candidates(10) == 10

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PQSearchConfig().m = 3


# ---------------------------------------------------------------------------
# IVF_PQ index
# ---------------------------------------------------------------------------


class TestIVFPQIndex:
    @pytest.fixture
    def data(self, rng):
        return rng.standard_normal((400, 16)).astype(np.float32)

    def test_refined_recall_vs_bruteforce(self, data, rng):
        index = IVFPQIndex(dim=16, nlist=8, nprobe=8, m=8)
        index.update_items(list(range(400)), data)
        truth = BruteForceIndex(dim=16)
        truth.update_items(list(range(400)), data)
        hits = total = 0
        for query in rng.standard_normal((20, 16)).astype(np.float32):
            got = set(index.topk_search(query, 10).ids.tolist())
            want = set(truth.topk_search(query, 10).ids.tolist())
            hits += len(got & want)
            total += len(want)
        assert hits / total >= 0.9
        # Full-probe rerank recovers the exact nearest neighbour.
        for query in data[:10]:
            assert index.topk_search(query, 1).ids[0] == truth.topk_search(query, 1).ids[0]

    def test_update_replaces_without_duplicates(self, data, rng):
        index = IVFPQIndex(dim=16, nlist=4, nprobe=4)
        index.update_items(list(range(50)), data[:50])
        moved = rng.standard_normal(16).astype(np.float32) * 10
        index.update_items([7], moved.reshape(1, -1))
        assert len(index) == 50
        result = index.topk_search(moved, 5)
        assert result.ids[0] == 7
        assert len(set(result.ids.tolist())) == len(result.ids)
        np.testing.assert_allclose(index.get_embedding(7), moved)

    def test_delete_items(self, data):
        index = IVFPQIndex(dim=16, nlist=4, nprobe=4)
        index.update_items(list(range(50)), data[:50])
        index.delete_items([0, 1, 2])
        assert len(index) == 47
        assert 0 not in index
        ids = index.topk_search(data[0], 10).ids.tolist()
        assert not {0, 1, 2} & set(ids)

    def test_memory_excludes_raw_rows(self, data):
        index = IVFPQIndex(dim=16, nlist=4, m=8)
        index.update_items(list(range(400)), data)
        raw_bytes = data.nbytes
        assert index.memory_bytes < raw_bytes  # 8 B codes vs 64 B rows + tables

    def test_no_refine_drops_raw(self, data):
        index = IVFPQIndex(dim=16, nlist=4, nprobe=4, m=8, refine=False)
        index.update_items(list(range(100)), data[:100])
        assert index._vectors.shape[0] == 0
        recon = index.get_embedding(3)
        assert recon.shape == (16,)
        # Quantized-only search still lands in the neighbourhood.
        ids = index.topk_search(data[3], 5).ids.tolist()
        assert 3 in ids

    def test_filter_and_empty(self, data):
        index = IVFPQIndex(dim=16, nlist=4, nprobe=4)
        assert len(index.topk_search(data[0], 3).ids) == 0
        index.update_items(list(range(20)), data[:20])
        result = index.topk_search(data[0], 5, filter_fn=lambda i: i % 2 == 0)
        assert all(i % 2 == 0 for i in result.ids.tolist())
        with pytest.raises(VectorSearchError):
            index.topk_search(data[0], 0)

    def test_range_search(self, data):
        index = IVFPQIndex(dim=16, nlist=4, nprobe=4)
        index.update_items(list(range(50)), data[:50])
        result = index.range_search(data[0], 1.0)
        assert 0 in result.ids.tolist()

    def test_constructor_validation(self):
        with pytest.raises(VectorSearchError):
            IVFPQIndex(dim=0)
        with pytest.raises(VectorSearchError):
            IVFPQIndex(dim=8, nlist=0)
        with pytest.raises(VectorSearchError):
            IVFPQIndex(dim=8, m=9)
        with pytest.raises(VectorSearchError):
            IVFPQIndex(dim=8, rerank_factor=0)

    def test_factory(self):
        index = create_index(
            IndexType.IVF_PQ, dim=12, metric=Metric.COSINE,
            index_params={"m": 4, "nlist": 8, "nprobe": 2, "refine": False},
        )
        assert isinstance(index, IVFPQIndex)
        assert index.m == 4 and index.nlist == 8 and not index.refine
        default = create_index(IndexType.IVF_PQ, dim=4, metric=Metric.L2)
        assert default.m == 4  # min(8, dim)

    def test_stats_tracked(self, data):
        index = IVFPQIndex(dim=16, nlist=4, nprobe=4)
        index.update_items(list(range(30)), data[:30])
        index.topk_search(data[0], 3)
        snap = index.stats.snapshot()
        assert snap["num_vectors"] == 30
        assert snap["num_searches"] == 1
        assert snap["num_distance_computations"] > 0
