"""Tests for the bench harness utilities."""

import numpy as np
import pytest

from repro.bench import (
    BenchScale,
    bench_scale,
    format_table,
    recall_at_k,
)
from repro.bench.harness import cached_system, embedding_store_for
from repro.datasets import make_sift_like


class TestRecall:
    def test_perfect(self):
        truth = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k([[1, 2, 3], [4, 5, 6]], truth, 3) == 1.0

    def test_partial(self):
        truth = np.array([[1, 2], [3, 4]])
        assert recall_at_k([[1, 9], [9, 9]], truth, 2) == 0.25

    def test_order_irrelevant(self):
        truth = np.array([[1, 2]])
        assert recall_at_k([[2, 1]], truth, 2) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            recall_at_k([[1]], np.array([[1], [2]]), 1)

    def test_extra_results_ignored(self):
        truth = np.array([[1, 2, 3, 4]])
        assert recall_at_k([[1, 2, 99]], truth, 2) == 1.0


class TestScale:
    def test_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale().name == "small"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        scale = bench_scale()
        assert scale.name == "smoke"
        assert scale.vector_count == 2_000

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            bench_scale()

    def test_scales_preserve_ratios(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "large")
        large = bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        small = bench_scale()
        assert large.vector_count / small.vector_count == 5.0
        assert large.ldbc_scale_factor > small.ldbc_scale_factor


class TestCaching:
    def test_builds_once_then_loads(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        import importlib

        import repro.bench.harness as harness

        importlib.reload(harness)
        calls = []

        def builder():
            calls.append(1)
            return {"value": 42}

        a = harness.cached_system("k1", builder)
        b = harness.cached_system("k1", builder)
        assert a == b == {"value": 42}
        assert len(calls) == 1
        importlib.reload(harness)  # restore default cache dir for other tests

    def test_distinct_keys_rebuild(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        import importlib

        import repro.bench.harness as harness

        importlib.reload(harness)
        assert harness.cached_system("a", lambda: 1) == 1
        assert harness.cached_system("b", lambda: 2) == 2
        importlib.reload(harness)


class TestEmbeddingStoreHelper:
    def test_roundtrip_search(self):
        ds = make_sift_like(300, num_queries=5).with_ground_truth(5)
        store = embedding_store_for(ds, segment_size=128)
        assert store.num_segments == 3
        assert store.live_count() == 300
        out = store.search_segment(0, ds.vectors[10], 1, snapshot_tid=1, ef=64)
        assert out.offsets[0] == 10

    def test_store_is_picklable(self):
        import pickle

        ds = make_sift_like(100, num_queries=2)
        store = embedding_store_for(ds, segment_size=64)
        clone = pickle.loads(pickle.dumps(store))
        out = clone.search_segment(0, ds.vectors[5], 1, snapshot_tid=1, ef=64)
        assert out.offsets[0] == 5


class TestTables:
    def test_alignment_and_floats(self):
        text = format_table(
            ["name", "value"],
            [["a", 0.12345], ["long-name", 1234.5]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.1234" in text or "0.1235" in text
        assert "1,234" in text or "1,235" in text
        # header separator aligns with the widest cell
        assert len(lines[1]) == len(lines[2])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
