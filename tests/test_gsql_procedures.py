"""Tests for GSQL procedures: composition, accumulators, control flow, Q2-Q4."""

import numpy as np
import pytest

from repro.errors import GSQLSemanticError


class TestQueryComposition:
    def test_q2_search_then_expand(self, loaded_post_db):
        """Paper Q2: VectorSearch feeds a 1-hop pattern via a set variable."""
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY Q2(List<FLOAT> topic_emb, INT k) {
              TopKMessages = VectorSearch({Post.content_emb}, topic_emb, k);
              Authors = SELECT p FROM (m:TopKMessages) - [:hasCreator] -> (p:Person);
              PRINT Authors;
            }
            """
        )
        r = db.gsql.run_query("Q2", topic_emb=db._test_vectors[0].tolist(), k=5)
        authors = r.prints[0]["vertices"]
        assert authors
        assert all(v.vertex_type == "Person" for v in authors)
        assert "TopKMessages" in r.sets
        assert len(r.sets["TopKMessages"]) == 5

    def test_q3_filter_and_distance_map(self, loaded_post_db):
        """Paper Q3: graph block output filters VectorSearch; distances out."""
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY Q3(List<FLOAT> topic_emb, INT k) {
              Map<VERTEX, FLOAT> @@disMap;
              EnPosts = SELECT t FROM (t:Post) WHERE t.language = "en";
              TopK = VectorSearch({Post.content_emb}, topic_emb, k,
                                  {filter: EnPosts, ef: 200, distanceMap: @@disMap});
              PRINT TopK;
              PRINT @@disMap;
            }
            """
        )
        r = db.gsql.run_query("Q3", topic_emb=db._test_vectors[1].tolist(), k=4)
        top = r.prints[0]["vertices"]
        assert len(top) == 4
        assert all(v.pk % 2 == 1 for v, _ in top)  # en posts are odd
        dis_map = r.prints[1]
        assert len(dis_map) == 4
        assert all(d >= 0 for d in dis_map.values())

    def test_q4_louvain_per_community_search(self, loaded_post_db):
        """Paper Q4: Louvain communities, then per-community top-k."""
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY Q4(List<FLOAT> topic_emb, INT k) {
              C_num = tg_louvain(["Person"], ["knows"]);
              FOREACH i IN RANGE[0, C_num] DO
                CommunityPosts = SELECT t FROM (s:Person)<-[e:hasCreator]-(t:Post)
                                 WHERE s.cid = i;
                TopKPosts = VectorSearch({Post.content_emb}, topic_emb, k,
                                         {filter: CommunityPosts});
                PRINT TopKPosts;
              END;
            }
            """
        )
        r = db.gsql.run_query("Q4", topic_emb=db._test_vectors[0].tolist(), k=2)
        nonempty = [p for p in r.prints if p["vertices"]]
        assert nonempty
        total = sum(len(p["vertices"]) for p in nonempty)
        assert total >= 2

    def test_set_operators_compose(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY ops() {
              En = SELECT t FROM (t:Post) WHERE t.language = "en";
              Long = SELECT t FROM (t:Post) WHERE t.length > 250;
              Both = En INTERSECT Long;
              Either = En UNION Long;
              OnlyEn = En MINUS Long;
              PRINT Both;
            }
            """
        )
        r = db.gsql.run_query("ops")
        both = r.sets["Both"]
        either = r.sets["Either"]
        only_en = r.sets["OnlyEn"]
        assert len(both) + len(only_en) == len(r.sets["En"])
        assert len(either) >= max(len(r.sets["En"]), len(r.sets["Long"]))
        pks = {loaded_post_db.pk_for("Post", vid) for _, vid in both}
        assert all(pk % 2 == 1 and pk > 150 for pk in pks)


class TestControlFlowAndAccums:
    def test_foreach_range_inclusive(self, post_db):
        post_db.gsql.install(
            """
            CREATE QUERY q() {
              SumAccum<INT> @@n;
              FOREACH i IN RANGE[1, 4] DO @@n += i; END;
              PRINT @@n;
            }
            """
        )
        r = post_db.gsql.run_query("q")
        assert r.prints[0] == 10  # GSQL RANGE is inclusive

    def test_while_with_limit(self, post_db):
        post_db.gsql.install(
            """
            CREATE QUERY q() {
              SumAccum<INT> @@n;
              WHILE @@n < 100 LIMIT 3 DO @@n += 10; END;
              PRINT @@n;
            }
            """
        )
        assert post_db.gsql.run_query("q").prints[0] == 30

    def test_if_else(self, post_db):
        post_db.gsql.install(
            """
            CREATE QUERY q(INT x) {
              IF x > 5 THEN PRINT "big"; ELSE PRINT "small"; END;
            }
            """
        )
        assert post_db.gsql.run_query("q", x=9).prints == ["big"]
        assert post_db.gsql.run_query("q", x=1).prints == ["small"]

    def test_accum_in_select_block(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q() {
              SumAccum<INT> @@count;
              MaxAccum<INT> @@longest;
              X = SELECT t FROM (t:Post) WHERE t.language = "fr"
                  ACCUM @@count += 1, @@longest += t.length;
              PRINT @@count;
              PRINT @@longest;
            }
            """
        )
        r = db.gsql.run_query("q")
        assert r.prints[0] == 100
        assert r.prints[1] == 298  # longest fr post: pk=198 -> length 298

    def test_missing_param_rejected(self, post_db):
        post_db.gsql.install("CREATE QUERY q(INT x) { PRINT x; }")
        with pytest.raises(GSQLSemanticError, match="missing query parameter"):
            post_db.gsql.run_query("q")

    def test_undeclared_accum_rejected(self, post_db):
        post_db.gsql.install("CREATE QUERY q() { @@nope += 1; }")
        with pytest.raises(GSQLSemanticError, match="undeclared"):
            post_db.gsql.run_query("q")

    def test_unknown_query_rejected(self, post_db):
        with pytest.raises(GSQLSemanticError, match="not installed"):
            post_db.gsql.run_query("ghost")

    def test_heap_accum_in_procedure(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q() {
              HeapAccum<FLOAT>(3) @@h;
              X = SELECT t FROM (t:Post) ACCUM @@h += (t.length, t);
              PRINT @@h;
            }
            """
        )
        r = db.gsql.run_query("q")
        heap = r.prints[0]
        assert [key for key, _ in heap] == [100, 101, 102]

    def test_tg_pagerank_builtin(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY pr() {
              N = tg_pagerank(["Person"], ["knows"]);
              Ranked = SELECT p FROM (p:Person) WHERE p.rank > 0.0;
              PRINT N;
              PRINT Ranked;
            }
            """
        )
        r = db.gsql.run_query("pr")
        assert r.prints[0] == 5
        assert len(r.prints[1]["vertices"]) == 5


class TestVectorSearchFunctionErrors:
    def test_bad_filter_type(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q(List<FLOAT> v) {
              X = VectorSearch({Post.content_emb}, v, 3, {filter: 42});
            }
            """
        )
        with pytest.raises(GSQLSemanticError, match="filter"):
            db.gsql.run_query("q", v=[0.0] * 16)

    def test_unknown_option(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q(List<FLOAT> v) {
              X = VectorSearch({Post.content_emb}, v, 3, {bogus: 1});
            }
            """
        )
        with pytest.raises(GSQLSemanticError, match="unknown VectorSearch option"):
            db.gsql.run_query("q", v=[0.0] * 16)

    def test_distance_map_must_be_map(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q(List<FLOAT> v) {
              SumAccum<INT> @@n;
              X = VectorSearch({Post.content_emb}, v, 3, {distanceMap: @@n});
            }
            """
        )
        with pytest.raises(GSQLSemanticError, match="Map"):
            db.gsql.run_query("q", v=[0.0] * 16)
