"""Elastic-tier chaos tests: live rebalances and server crashes under load.

The acceptance bar for the elastic PR (ISSUE 9): with client threads
hammering an :class:`ElasticTier`, a mid-run rebalance AND a hard server
crash must produce **zero failed queries** — the router re-routes lost
sub-requests to the surviving owners, bounded by ``_MAX_ROUTE_ROUNDS`` —
and **zero silently-stale SLA responses**: every ``max_staleness=0`` /
``session_token`` answer reflects the bound it promised or fails typed,
regardless of which replicas served the partials.

Worker-level fault injection (crashes/stalls inside one shard's pool)
composes with routing because each shard is a full ``QueryServer``; the
injected-fault sweep asserts the combined machinery still loses nothing.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.elastic import ElasticTier
from repro.errors import ReproError, StalenessBoundError
from repro.faults import FaultInjector, FaultPlan, ResiliencePolicy
from repro.serve import ServeConfig
from repro.telemetry import Telemetry, use_telemetry

ATTR = "Post.content_emb"
DIM = 16


def members(vset):
    return sorted(vset)


def chaos_config():
    return ServeConfig(workers=2, enable_batching=False, enable_cache=True)


class TestRebalanceUnderLoad:
    def test_continuous_rebalancing_zero_failures(self, loaded_post_db, rng):
        """Queries race a mover thread that bounces a group between servers;
        every query must succeed and match the direct path exactly."""
        db = loaded_post_db
        queries = rng.standard_normal((30, DIM)).astype(np.float32)
        want = [members(db.vector_search([ATTR], q, 5)) for q in queries]
        outcomes: dict[int, object] = {}
        lock = threading.Lock()
        telemetry = Telemetry()

        def fire(index: int, tier: ElasticTier) -> None:
            try:
                got = members(tier.search([ATTR], queries[index], 5))
            except ReproError as exc:  # pragma: no cover - the failure mode
                got = exc
            with lock:
                outcomes[index] = got

        with use_telemetry(telemetry), ElasticTier(
            db, num_servers=3, config=chaos_config()
        ) as tier:
            tier.search([ATTR], queries[0], 5)  # materialize ownership
            stop_moving = threading.Event()

            def mover() -> None:
                servers = sorted(tier.shards)
                flip = 0
                while not stop_moving.is_set():
                    tier.rebalance("default", 0, servers[flip % len(servers)])
                    tier.rebalance("default", 1, servers[(flip + 1) % len(servers)])
                    flip += 1

            mover_thread = threading.Thread(target=mover)
            mover_thread.start()
            threads = [
                threading.Thread(target=fire, args=(i, tier))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            stop_moving.set()
            mover_thread.join(timeout=60)
            assert not any(t.is_alive() for t in threads), "a query hung"

        assert len(outcomes) == len(queries), "a query was lost"
        for index, got in sorted(outcomes.items()):
            assert not isinstance(got, ReproError), f"query {index} failed: {got}"
            assert got == want[index], f"wrong answer for query {index}"
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["elastic.rebalances"] >= 2
        assert counters.get("elastic.crash_failovers", 0) == 0

    def test_rebalance_plus_crash_zero_failures(self, loaded_post_db, rng):
        """The headline chaos scenario: a live rebalance AND a hard server
        crash mid-run.  Zero failed queries; SLA answers stay fresh."""
        db = loaded_post_db
        queries = rng.standard_normal((36, DIM)).astype(np.float32)
        want = [members(db.vector_search([ATTR], q, 5)) for q in queries]
        outcomes: dict[int, object] = {}
        lock = threading.Lock()
        telemetry = Telemetry()
        started = threading.Event()

        def fire(index: int, tier: ElasticTier) -> None:
            started.set()
            # Every third query carries the freshness SLA: answered fresh
            # across whatever replicas survive, or failed typed.
            kwargs = {"max_staleness": 0} if index % 3 == 0 else {}
            try:
                got = members(tier.search([ATTR], queries[index], 5, **kwargs))
            except ReproError as exc:  # pragma: no cover - the failure mode
                got = exc
            with lock:
                outcomes[index] = got

        with use_telemetry(telemetry), ElasticTier(
            db, num_servers=4, config=chaos_config()
        ) as tier:
            tier.search([ATTR], queries[0], 5)  # materialize ownership
            threads = [
                threading.Thread(target=fire, args=(i, tier))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            started.wait(timeout=10)
            # Mid-run: move a group live, then hard-crash a server that
            # still owns keys.  The router must absorb both.
            victims = sorted(tier.shards)
            tier.rebalance("default", 0, victims[-1])
            tier.shards[victims[1]].stop()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads), "a query hung"
            post_crash = members(tier.search([ATTR], queries[1], 5))

        assert len(outcomes) == len(queries), "a query was lost"
        for index, got in sorted(outcomes.items()):
            assert not isinstance(got, ReproError), f"query {index} failed: {got}"
            # Static dataset: a "fresh" SLA answer and a plain answer both
            # have exactly one correct value — any drift would be a
            # silently-stale (or silently-partial) response.
            assert got == want[index], f"wrong/stale answer for query {index}"
        assert post_crash == want[1]
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["elastic.rebalances"] >= 1
        assert counters["elastic.crash_failovers"] >= 1
        assert counters.get("serve.staleness_rejections", 0) == 0

    def test_session_token_honored_across_replicas_under_moves(
        self, loaded_post_db, rng
    ):
        """Writers commit; readers demand their own writes via session
        tokens while groups move.  An answer below the token would be a
        silently-stale response — none may occur."""
        db = loaded_post_db
        telemetry = Telemetry()
        failures: list[str] = []
        lock = threading.Lock()
        stop_moving = threading.Event()

        def reader(worker: int, tier: ElasticTier) -> None:
            for round_no in range(4):
                pk = 9100 + worker * 10 + round_no
                vec = rng.standard_normal(DIM).astype(np.float32) * 0.001
                with db.begin() as txn:
                    txn.upsert_vertex("Post", pk, {"language": "en", "length": 1})
                    txn.set_embedding("Post", pk, "content_emb", vec)
                with db.snapshot() as snapshot:
                    token = snapshot.tid
                try:
                    got = members(
                        tier.search([ATTR], vec, 5, session_token=token)
                    )
                except StalenessBoundError:
                    continue  # typed refusal: visible, never silently stale
                except ReproError as exc:  # pragma: no cover
                    with lock:
                        failures.append(f"reader {worker}: {exc}")
                    return
                if ("Post", db.vid_for("Post", pk)) not in got:
                    with lock:
                        failures.append(
                            f"reader {worker} round {round_no}: own write "
                            f"missing at token {token}"
                        )

        with use_telemetry(telemetry), ElasticTier(
            db, num_servers=3, config=chaos_config()
        ) as tier:
            tier.search([ATTR], np.zeros(DIM, dtype=np.float32), 5)

            def mover() -> None:
                servers = sorted(tier.shards)
                flip = 0
                while not stop_moving.is_set():
                    tier.rebalance("default", flip % 2, servers[flip % len(servers)])
                    flip += 1
                    time.sleep(0.001)

            mover_thread = threading.Thread(target=mover)
            mover_thread.start()
            threads = [
                threading.Thread(target=reader, args=(i, tier)) for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            stop_moving.set()
            mover_thread.join(timeout=60)
            assert not any(t.is_alive() for t in threads), "a reader hung"
        assert failures == []


class TestInjectedWorkerFaults:
    def test_worker_crashes_inside_shards_not_lost(self, loaded_post_db, rng):
        """Per-shard fault injection composes with routing: crashed shard
        workers respawn and re-queue, so routed queries still all succeed."""
        db = loaded_post_db
        queries = rng.standard_normal((12, DIM)).astype(np.float32)
        want = [members(db.vector_search([ATTR], q, 5)) for q in queries]
        injectors = {
            "shard-0": FaultInjector(FaultPlan().crash_worker(1)),
            "shard-1": FaultInjector(FaultPlan().stall_worker(2, seconds=0.02)),
        }
        policy = ResiliencePolicy(max_attempts=3, backoff_base=0.0)
        telemetry = Telemetry()
        with use_telemetry(telemetry), ElasticTier(
            db,
            num_servers=2,
            config=chaos_config(),
            policy=policy,
            injectors=injectors,
        ) as tier:
            got = [members(tier.search([ATTR], q, 5)) for q in queries]
        assert got == want
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.worker_crashes"] >= 1
        assert counters["serve.worker_respawns"] >= 1
