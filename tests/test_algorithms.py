"""Tests for the graph algorithm library."""

import numpy as np
import pytest

from repro import Attribute, AttrType, GraphSchema
from repro.algorithms import (
    bfs_distances,
    louvain_communities,
    pagerank,
    single_source_shortest_path,
    weakly_connected_components,
)
from repro.algorithms.louvain import louvain_on_adjacency
from repro.graph.storage import GraphStore


@pytest.fixture
def two_cliques_store():
    """Two dense 6-cliques joined by a single bridge edge."""
    schema = GraphSchema()
    schema.create_vertex_type("V", [Attribute("id", AttrType.INT, primary_key=True)])
    schema.create_edge_type("e", "V", "V", directed=False)
    store = GraphStore(schema, segment_size=16)
    with store.begin() as txn:
        for i in range(12):
            txn.upsert_vertex("V", i, {})
        for lo in (0, 6):
            for i in range(lo, lo + 6):
                for j in range(i + 1, lo + 6):
                    txn.add_edge("e", i, j)
        txn.add_edge("e", 0, 6)
    return store


def member(store, pk):
    return ("V", store.vid_for_pk("V", pk))


class TestLouvain:
    def test_two_cliques_found(self, two_cliques_store):
        store = two_cliques_store
        with store.snapshot() as snap:
            communities = louvain_communities(snap, store.schema, ["V"], ["e"])
        assert len(set(communities.values())) == 2
        first = {communities[member(store, i)] for i in range(6)}
        second = {communities[member(store, i)] for i in range(6, 12)}
        assert len(first) == 1 and len(second) == 1 and first != second

    def test_dense_ids(self, two_cliques_store):
        store = two_cliques_store
        with store.snapshot() as snap:
            communities = louvain_communities(snap, store.schema, ["V"], ["e"])
        assert set(communities.values()) == {0, 1}

    def test_empty_graph(self):
        assert louvain_on_adjacency({}) == {}

    def test_singleton_nodes(self):
        adjacency = {("V", 0): [], ("V", 1): []}
        out = louvain_on_adjacency(adjacency)
        assert len(out) == 2

    def test_matches_networkx_modularity_direction(self, two_cliques_store):
        """Sanity-check quality against networkx's own Louvain."""
        import networkx as nx

        store = two_cliques_store
        graph = nx.Graph()
        with store.snapshot() as snap:
            for vid in snap.iter_vids("V"):
                graph.add_node(vid)
                for t in snap.neighbors("V", vid, "e"):
                    graph.add_edge(vid, t)
            ours = louvain_communities(snap, store.schema, ["V"], ["e"])
        groups: dict[int, set] = {}
        for (_, vid), cid in ours.items():
            groups.setdefault(cid, set()).add(vid)
        our_mod = nx.community.modularity(graph, list(groups.values()))
        nx_comms = nx.community.louvain_communities(graph, seed=1)
        nx_mod = nx.community.modularity(graph, nx_comms)
        assert our_mod >= nx_mod - 0.05


class TestPageRank:
    def test_sums_to_one(self, two_cliques_store):
        store = two_cliques_store
        with store.snapshot() as snap:
            ranks = pagerank(snap, store.schema, ["V"], ["e"])
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_bridge_nodes_rank_higher(self, two_cliques_store):
        store = two_cliques_store
        with store.snapshot() as snap:
            ranks = pagerank(snap, store.schema, ["V"], ["e"])
        bridge = ranks[member(store, 0)]
        ordinary = ranks[member(store, 3)]
        assert bridge > ordinary

    def test_empty(self):
        from repro.algorithms.pagerank import pagerank_on_adjacency

        assert pagerank_on_adjacency({}) == {}

    def test_dangling_mass_redistributed(self):
        from repro.algorithms.pagerank import pagerank_on_adjacency

        adjacency = {("V", 0): [("V", 1)], ("V", 1): []}
        ranks = pagerank_on_adjacency(adjacency, iterations=50)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)
        assert ranks[("V", 1)] > ranks[("V", 0)]


class TestWCCAndBFS:
    def test_wcc_two_components(self):
        schema = GraphSchema()
        schema.create_vertex_type("V", [Attribute("id", AttrType.INT, primary_key=True)])
        schema.create_edge_type("e", "V", "V")
        store = GraphStore(schema, segment_size=8)
        with store.begin() as txn:
            for i in range(6):
                txn.upsert_vertex("V", i, {})
            txn.add_edge("e", 0, 1)
            txn.add_edge("e", 1, 2)
            txn.add_edge("e", 3, 4)
        with store.snapshot() as snap:
            comp = weakly_connected_components(snap, store.schema, ["V"], ["e"])
        assert comp[member(store, 0)] == comp[member(store, 2)]
        assert comp[member(store, 3)] == comp[member(store, 4)]
        assert comp[member(store, 0)] != comp[member(store, 3)]
        assert len(set(comp.values())) == 3  # {0,1,2}, {3,4}, {5}

    def test_bfs_distances(self, two_cliques_store):
        store = two_cliques_store
        with store.snapshot() as snap:
            dist = bfs_distances(snap, store.schema, member(store, 1), ["V"], ["e"])
        assert dist[member(store, 1)] == 0
        assert dist[member(store, 0)] == 1
        assert dist[member(store, 6)] == 2  # via the bridge
        assert dist[member(store, 9)] == 3

    def test_bfs_max_depth(self, two_cliques_store):
        store = two_cliques_store
        with store.snapshot() as snap:
            dist = bfs_distances(
                snap, store.schema, member(store, 1), ["V"], ["e"], max_depth=1
            )
        assert max(dist.values()) == 1

    def test_shortest_path(self, two_cliques_store):
        store = two_cliques_store
        with store.snapshot() as snap:
            path = single_source_shortest_path(
                snap, store.schema, member(store, 3), member(store, 9), ["V"], ["e"]
            )
        assert path is not None
        assert path[0] == member(store, 3)
        assert path[-1] == member(store, 9)
        assert len(path) == 4  # 3 -> 0 -> 6 -> 9

    def test_unreachable(self):
        schema = GraphSchema()
        schema.create_vertex_type("V", [Attribute("id", AttrType.INT, primary_key=True)])
        schema.create_edge_type("e", "V", "V")
        store = GraphStore(schema, segment_size=8)
        with store.begin() as txn:
            txn.upsert_vertex("V", 0, {})
            txn.upsert_vertex("V", 1, {})
        with store.snapshot() as snap:
            assert (
                single_source_shortest_path(
                    snap, store.schema, member(store, 0), member(store, 1), ["V"], ["e"]
                )
                is None
            )
