"""Unit tests for the MVCC segment version-chain machinery."""

import numpy as np
import pytest

from repro import Attribute, AttrType
from repro.errors import ReproError
from repro.graph.schema import VertexType
from repro.graph.segment import DeltaOp, Segment, reverse_edge_key


@pytest.fixture
def vtype():
    return VertexType(
        "T",
        [Attribute("id", AttrType.INT, primary_key=True), Attribute("x", AttrType.INT)],
    )


@pytest.fixture
def segment(vtype):
    return Segment(vtype, seg_no=0, capacity=8)


def upsert(tid, offset, **attrs):
    return DeltaOp(tid, "upsert", offset, {"id": offset, "x": 0, **attrs})


class TestDeltaOrdering:
    def test_tid_order_enforced(self, segment):
        segment.append_delta(upsert(5, 0))
        with pytest.raises(ReproError):
            segment.append_delta(upsert(3, 1))

    def test_equal_tids_allowed(self, segment):
        segment.append_delta(upsert(5, 0))
        segment.append_delta(upsert(5, 1))  # same txn touches two vertices
        assert segment.pending_delta_count == 2


class TestReadStates:
    def test_snapshot_boundaries(self, segment):
        segment.append_delta(upsert(1, 0, x=10))
        segment.append_delta(upsert(2, 0, x=20))
        assert segment.read_state(0).exists(0) is False
        assert segment.read_state(1).get_attr(0, "x") == 10
        assert segment.read_state(2).get_attr(0, "x") == 20

    def test_delete_visibility(self, segment):
        segment.append_delta(upsert(1, 3))
        segment.append_delta(DeltaOp(2, "delete", 3))
        assert segment.read_state(1).exists(3)
        assert not segment.read_state(2).exists(3)

    def test_edges_in_state(self, segment):
        segment.append_delta(upsert(1, 0))
        segment.append_delta(DeltaOp(2, "add_edge", 0, ("e", 42, None)))
        segment.append_delta(DeltaOp(3, "add_edge", 0, ("e", 43, None)))
        segment.append_delta(DeltaOp(4, "del_edge", 0, ("e", 42, None)))
        assert [t for t, _ in segment.read_state(3).neighbors(0, "e")] == [42, 43]
        assert [t for t, _ in segment.read_state(4).neighbors(0, "e")] == [43]

    def test_valid_mask(self, segment):
        segment.append_delta(upsert(1, 0))
        segment.append_delta(upsert(1, 2))
        mask = segment.read_state(1).valid_mask()
        assert mask.tolist() == [True, False, True] + [False] * 5

    def test_copy_on_write_isolated_from_base(self, segment):
        segment.append_delta(upsert(1, 0, x=1))
        segment.vacuum(1)
        base = segment.version_for(1)
        segment.append_delta(upsert(2, 0, x=2))
        state = segment.read_state(2)
        assert state.get_attr(0, "x") == 2
        assert base.columns["x"][0] == 1  # base untouched


class TestVacuumVersions:
    def test_vacuum_creates_version(self, segment):
        segment.append_delta(upsert(1, 0))
        assert segment.vacuum(1) is not None
        assert segment.versions[-1].base_tid == 1
        assert segment.vacuum(1) is None  # nothing new

    def test_partial_vacuum(self, segment):
        segment.append_delta(upsert(1, 0, x=1))
        segment.append_delta(upsert(5, 0, x=5))
        segment.vacuum(3)  # folds only tid 1
        assert segment.versions[-1].base_tid == 1
        assert segment.read_state(5).get_attr(0, "x") == 5

    def test_version_selection(self, segment):
        segment.append_delta(upsert(1, 0, x=1))
        segment.vacuum(1)
        segment.append_delta(upsert(2, 0, x=2))
        segment.vacuum(2)
        assert segment.version_for(1).base_tid == 1
        assert segment.version_for(2).base_tid == 2
        assert segment.version_for(99).base_tid == 2

    def test_gc_drops_unreachable(self, segment):
        segment.append_delta(upsert(1, 0))
        segment.vacuum(1)
        segment.append_delta(upsert(2, 0))
        segment.vacuum(2)
        assert len(segment.versions) == 3  # empty + v1 + v2
        dropped = segment.gc_versions(min_active_snapshot_tid=2)
        assert dropped == 2
        assert len(segment.versions) == 1
        assert segment.pending_delta_count == 0

    def test_gc_keeps_needed_versions(self, segment):
        segment.append_delta(upsert(1, 0))
        segment.vacuum(1)
        segment.append_delta(upsert(2, 0))
        segment.vacuum(2)
        segment.gc_versions(min_active_snapshot_tid=1)
        # version v1 must survive for the snapshot pinned at tid 1
        assert any(v.base_tid == 1 for v in segment.versions)
        assert segment.read_state(1).exists(0)

    def test_delete_clears_edges_on_vacuum(self, segment):
        segment.append_delta(upsert(1, 0))
        segment.append_delta(DeltaOp(2, "add_edge", 0, ("e", 9, None)))
        segment.append_delta(DeltaOp(3, "delete", 0))
        segment.vacuum(3)
        state = segment.read_state(3)
        assert state.neighbors(0, "e") == []


def test_reverse_edge_key_distinct():
    assert reverse_edge_key("knows") == "~knows"
    assert reverse_edge_key("knows") != "knows"
