"""Tests for the MPP primitives (VertexAction / EdgeAction)."""

import threading

import pytest

from repro import Attribute, AttrType, GraphSchema
from repro.graph.mpp import MPPExecutor, edge_action, vertex_action
from repro.graph.storage import GraphStore


@pytest.fixture
def store():
    schema = GraphSchema()
    schema.create_vertex_type(
        "Node",
        [Attribute("id", AttrType.INT, primary_key=True), Attribute("v", AttrType.INT)],
    )
    schema.create_edge_type("e", "Node", "Node")
    store = GraphStore(schema, segment_size=8)
    with store.begin() as txn:
        for i in range(30):  # 4 segments
            txn.upsert_vertex("Node", i, {"v": i * 2})
        for i in range(29):
            txn.add_edge("e", i, i + 1)
    return store


class TestVertexAction:
    def test_visits_every_live_vertex(self, store):
        with store.snapshot() as snap:
            out = vertex_action(snap, "Node", lambda vid, row: row["v"])
        assert sorted(out) == [i * 2 for i in range(30)]

    def test_none_results_dropped(self, store):
        with store.snapshot() as snap:
            out = vertex_action(
                snap, "Node", lambda vid, row: row["v"] if row["v"] > 40 else None
            )
        assert len(out) == len([i for i in range(30) if i * 2 > 40])

    def test_deterministic_segment_order(self, store):
        with store.snapshot() as snap:
            a = vertex_action(snap, "Node", lambda vid, row: vid)
            b = vertex_action(snap, "Node", lambda vid, row: vid)
        assert a == b

    def test_runs_in_pool_threads(self, store):
        names = set()

        def fn(vid, row):
            names.add(threading.current_thread().name)
            return None

        with store.snapshot() as snap:
            vertex_action(snap, "Node", fn, executor=MPPExecutor(max_workers=4))
        assert any(name.startswith("mpp") for name in names)

    def test_serial_mode(self, store):
        with store.snapshot() as snap:
            out = vertex_action(snap, "Node", lambda vid, row: 1, parallel=False)
        assert len(out) == 30

    def test_skips_deleted(self, store):
        with store.begin() as txn:
            txn.delete_vertex("Node", 5)
        with store.snapshot() as snap:
            out = vertex_action(snap, "Node", lambda vid, row: vid)
        assert len(out) == 29


class TestEdgeAction:
    def test_visits_every_edge(self, store):
        with store.snapshot() as snap:
            out = edge_action(snap, "Node", "e", lambda s, t, attrs: (s, t))
        assert len(out) == 29

    def test_reverse_traversal(self, store):
        with store.snapshot() as snap:
            fwd = set(edge_action(snap, "Node", "e", lambda s, t, a: (s, t)))
            rev = set(edge_action(snap, "Node", "e", lambda s, t, a: (t, s), reverse=True))
        assert fwd == rev


class TestExecutor:
    def test_context_manager_shutdown(self):
        with MPPExecutor(max_workers=2) as executor:
            assert executor.max_workers == 2
        assert executor._pool is None

    def test_map_segments_subset(self, store):
        executor = MPPExecutor(max_workers=2)
        with store.snapshot() as snap:
            out = executor.map_segments(
                lambda seg_no, state: seg_no, snap, "Node", seg_nos=[1, 3]
            )
        assert out == [1, 3]
        executor.shutdown()
