"""Property-based tests for the GSQL pipeline.

Hypothesis generates random (but schema-valid) data and checks executor
invariants: declarative results must equal engine-level results, filtered
top-k must be the true nearest among the filtered subset, and the
similarity join must match brute force.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Attribute, AttrType, Metric, TigerVectorDB
from repro.types import batch_distances

DIM = 6


def build_db(vector_seeds, languages):
    db = TigerVectorDB(segment_size=4)
    db.schema.create_vertex_type(
        "Doc",
        [Attribute("id", AttrType.INT, primary_key=True), Attribute("lang", AttrType.STRING)],
    )
    db.schema.add_embedding_attribute("Doc", "emb", dimension=DIM, metric=Metric.L2)
    vectors = []
    with db.begin() as txn:
        for i, (seed, lang) in enumerate(zip(vector_seeds, languages)):
            rng = np.random.default_rng(seed)
            vec = rng.standard_normal(DIM).astype(np.float32)
            vectors.append(vec)
            txn.upsert_vertex("Doc", i, {"lang": lang})
            txn.set_embedding("Doc", i, "emb", vec)
    db.vacuum()
    return db, np.stack(vectors)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seeds=st.lists(st.integers(0, 10_000), min_size=3, max_size=20, unique=True),
    k=st.integers(1, 5),
)
def test_declarative_topk_matches_bruteforce(seeds, k):
    db, vectors = build_db(seeds, ["en"] * len(seeds))
    try:
        q = np.zeros(DIM, dtype=np.float32)
        r = db.run_gsql(
            "SELECT s FROM (s:Doc) ORDER BY VECTOR_DIST(s.emb, qv) LIMIT k;",
            qv=q.tolist(), k=k,
        )
        dists = batch_distances(q, vectors, Metric.L2)
        k_eff = min(k, len(seeds))
        boundary = sorted(dists)[k_eff - 1]
        got = [db.pk_for(t, v) for (t, v), _ in r.result.ranking]
        assert len(got) == k_eff
        # with ef defaulting high relative to these sizes, results are exact
        # up to distance ties at the boundary
        for pk in got:
            assert dists[pk] <= boundary + 1e-5
    finally:
        db.close()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seeds=st.lists(st.integers(0, 10_000), min_size=4, max_size=16, unique=True),
    lang_bits=st.lists(st.booleans(), min_size=4, max_size=16),
)
def test_filtered_topk_respects_filter_exactly(seeds, lang_bits):
    langs = ["en" if b else "fr" for b in lang_bits[: len(seeds)]]
    while len(langs) < len(seeds):
        langs.append("fr")
    db, vectors = build_db(seeds, langs)
    try:
        q = np.zeros(DIM, dtype=np.float32)
        r = db.run_gsql(
            'SELECT s FROM (s:Doc) WHERE s.lang = "en" '
            "ORDER BY VECTOR_DIST(s.emb, qv) LIMIT 3;",
            qv=q.tolist(),
        )
        allowed = [i for i, lang in enumerate(langs) if lang == "en"]
        got = [db.pk_for(t, v) for (t, v), _ in r.result.ranking]
        assert set(got).issubset(set(allowed))
        assert len(got) == min(3, len(allowed))
        if allowed:
            dists = batch_distances(q, vectors, Metric.L2)
            allowed_sorted = sorted(allowed, key=lambda i: dists[i])
            boundary = dists[allowed_sorted[min(3, len(allowed)) - 1]]
            for pk in got:
                assert dists[pk] <= boundary + 1e-5
    finally:
        db.close()


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seeds=st.lists(st.integers(0, 10_000), min_size=3, max_size=10, unique=True))
def test_range_search_sound(seeds):
    """Range results are a subset of the true within-radius set."""
    db, vectors = build_db(seeds, ["en"] * len(seeds))
    try:
        q = np.zeros(DIM, dtype=np.float32)
        threshold = float(np.median(batch_distances(q, vectors, Metric.L2))) + 0.1
        r = db.run_gsql(
            "SELECT s FROM (s:Doc) WHERE VECTOR_DIST(s.emb, qv) < t;",
            qv=q.tolist(), t=threshold,
        )
        dists = batch_distances(q, vectors, Metric.L2)
        within = {i for i in range(len(seeds)) if dists[i] < threshold}
        got = {db.pk_for(t, v) for (t, v), _ in r.result.ranking}
        assert got.issubset(within)
        assert len(got) >= max(1, int(0.6 * len(within)))
    finally:
        db.close()
