"""Integration tests: the full LDBC-like hybrid pipeline, end to end."""

import numpy as np
import pytest

from repro import TigerVectorDB
from repro.datasets import (
    IC_QUERIES,
    LDBCConfig,
    build_ic_query,
    generate_ldbc,
    load_ldbc_into,
)


@pytest.fixture(scope="module")
def hybrid_db():
    data = generate_ldbc(LDBCConfig(scale_factor=0.5, embedding_dim=16, seed=77))
    db = TigerVectorDB(segment_size=512)
    load_ldbc_into(db, data)
    yield db, data
    db.close()


class TestLoadedGraph:
    def test_counts(self, hybrid_db):
        db, data = hybrid_db
        with db.snapshot() as snap:
            assert snap.count("Person") == len(data.persons)
            assert snap.count("Post") == len(data.posts)
            assert snap.count("Comment") == len(data.comments)
            assert snap.count("Country") == len(data.countries)

    def test_embeddings_loaded_and_searchable(self, hybrid_db):
        db, data = hybrid_db
        store = db.service.store("Post", "content_emb")
        assert store.live_count() == len(data.posts)
        q = data.post_embeddings[3]
        result = db.vector_search(["Post.content_emb"], q, k=1)
        assert next(iter(result)) == ("Post", db.vid_for("Post", 3))

    def test_multi_type_message_search(self, hybrid_db):
        db, data = hybrid_db
        q = data.comment_embeddings[5]
        result = db.vector_search(
            ["Post.content_emb", "Comment.content_emb"], q, k=1
        )
        assert next(iter(result)) == ("Comment", db.vid_for("Comment", 5))

    def test_reply_chain_traversal(self, hybrid_db):
        db, data = hybrid_db
        comment_id, post_id = data.reply_of[0]
        r = db.run_gsql(
            "SELECT p FROM (c:Comment) - [:replyOf] -> (p:Post) WHERE c.id == cid;",
            cid=comment_id,
        )
        assert r.result.members() == {("Post", db.vid_for("Post", post_id))}


class TestICQueries:
    @pytest.mark.parametrize("name", sorted(IC_QUERIES))
    def test_every_ic_query_runs(self, hybrid_db, name):
        db, data = hybrid_db
        qname, text = build_ic_query(name, 2)
        db.gsql.install(text)
        r = db.gsql.run_query(
            qname, pid=0, topic_emb=data.post_embeddings[0].tolist(), k=5
        )
        printed = r.prints[0]
        assert "vertices" in printed
        assert len(printed["vertices"]) <= 5
        assert "num_candidates" in r.metrics or not printed["vertices"]

    def test_candidate_profile_matches_paper(self, hybrid_db):
        """IC5 collects the most, IC9 exactly <= 20, IC3 the fewest-ish."""
        db, data = hybrid_db
        sizes = {}
        for name in IC_QUERIES:
            qname, text = build_ic_query(name, 3)
            db.gsql.install(text)
            r = db.gsql.run_query(
                qname, pid=0, topic_emb=data.post_embeddings[0].tolist(), k=5
            )
            sizes[name] = r.metrics.get("num_candidates", 0)
        assert sizes["IC5"] == max(sizes.values())
        assert sizes["IC9"] <= 20
        assert sizes["IC3"] <= sizes["IC5"]

    def test_hops_grow_candidates(self, hybrid_db):
        db, data = hybrid_db
        counts = []
        for hops in (2, 3, 4):
            qname, text = build_ic_query("IC5", hops)
            db.gsql.install(text)
            r = db.gsql.run_query(
                qname, pid=0, topic_emb=data.post_embeddings[0].tolist(), k=5
            )
            counts.append(r.metrics.get("num_candidates", 0))
        assert counts[0] <= counts[1] <= counts[2]

    def test_topk_results_respect_candidates(self, hybrid_db):
        """Every returned vertex must belong to the collected candidate set."""
        db, data = hybrid_db
        qname, text = build_ic_query("IC6", 2)
        db.gsql.install(text)
        r = db.gsql.run_query(
            qname, pid=0, topic_emb=data.post_embeddings[0].tolist(), k=5
        )
        candidates = r.sets["Candidates"]
        top = r.sets["TopK"]
        assert all(member in candidates for member in top)


class TestConcurrentReadersAndVacuum:
    def test_search_under_concurrent_updates(self, hybrid_db):
        """Readers stay consistent while updates and vacuums interleave."""
        import threading

        db, data = hybrid_db
        store = db.service.store("Post", "content_emb")
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                with db.begin() as txn:
                    txn.set_embedding(
                        "Post", i % 20, "content_emb",
                        np.random.default_rng(i).standard_normal(16).astype(np.float32),
                    )
                i += 1

        def vacuumer():
            while not stop.is_set():
                db.vacuum()

        def reader():
            q = data.post_embeddings[0]
            while not stop.is_set():
                try:
                    result = db.vector_search(["Post.content_emb"], q, k=5)
                    assert len(result) <= 5
                except Exception as exc:  # pragma: no cover - failure capture
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=vacuumer),
            threading.Thread(target=reader),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(1.0)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors, errors
