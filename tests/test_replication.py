"""Tests for segment replication and failover (paper Sec. 4.2)."""

import pytest

from repro.cluster import ClosedLoopLoadGenerator, ClusterSimulator, make_cluster
from repro.errors import ClusterError


def seg_times(n, each=0.002):
    return {s: each for s in range(n)}


class TestPlacement:
    def test_rf2_places_each_segment_twice(self):
        machines = make_cluster(4, 8, replication_factor=2)
        holder_count = {}
        for m in machines:
            for s in m.segments:
                holder_count[s] = holder_count.get(s, 0) + 1
        assert all(count == 2 for count in holder_count.values())

    def test_replicas_on_distinct_machines(self):
        machines = make_cluster(4, 8, replication_factor=3)
        for s in range(8):
            holders = [m.machine_id for m in machines if s in m.segments]
            assert len(set(holders)) == 3

    def test_rf_validation(self):
        with pytest.raises(ClusterError):
            make_cluster(2, 4, replication_factor=0)
        with pytest.raises(ClusterError):
            make_cluster(2, 4, replication_factor=3)


class TestFailover:
    def test_requests_survive_single_failure_with_rf2(self):
        sim = ClusterSimulator(make_cluster(4, 8, cores=4, replication_factor=2))
        before = sim.simulate_request(0.0, seg_times(8))
        sim.fail_machine(2)
        sim.reset()
        after = sim.simulate_request(0.0, seg_times(8))
        assert after > 0  # still serviceable
        # fewer machines share the same work: latency should not improve
        assert after >= before * 0.9

    def test_failure_without_replicas_is_fatal(self):
        sim = ClusterSimulator(make_cluster(4, 8, cores=4, replication_factor=1))
        sim.fail_machine(1)
        with pytest.raises(ClusterError, match="no alive replica"):
            sim.simulate_request(0.0, seg_times(8))

    def test_recover_machine(self):
        sim = ClusterSimulator(make_cluster(2, 4, cores=4, replication_factor=1))
        sim.fail_machine(1)
        sim.recover_machine(1)
        assert sim.simulate_request(0.0, seg_times(4)) > 0

    def test_unknown_machine(self):
        sim = ClusterSimulator(make_cluster(2, 4))
        with pytest.raises(ClusterError):
            sim.fail_machine(99)

    def test_throughput_degrades_gracefully(self):
        """Losing 1 of 4 machines costs throughput but not availability."""
        samples = [seg_times(16, each=0.003)]
        healthy = ClusterSimulator(make_cluster(4, 16, cores=4, replication_factor=2))
        degraded = ClusterSimulator(make_cluster(4, 16, cores=4, replication_factor=2))
        degraded.fail_machine(3)
        q_healthy = ClosedLoopLoadGenerator(healthy, connections=32).run(
            samples, duration_seconds=2.0
        ).qps
        q_degraded = ClosedLoopLoadGenerator(degraded, connections=32).run(
            samples, duration_seconds=2.0
        ).qps
        assert 0.5 < q_degraded / q_healthy < 1.02

    def test_no_duplicate_segment_work_with_replicas(self):
        """Each segment is searched once per request even with RF=3."""
        sim = ClusterSimulator(make_cluster(3, 3, cores=1, replication_factor=3))
        # 3 segments x 10ms, 3 machines x 1 core: if each segment ran on all
        # replicas, per-machine work would be 30ms; correct assignment is
        # ~10ms/machine -> total latency close to 10ms + overheads.
        done = sim.simulate_request(0.0, seg_times(3, each=0.010))
        assert done < 0.025


class TestRecoveryCycles:
    def test_recover_then_refail_cycles(self):
        """Machines can fail, recover, and re-fail repeatedly; with RF=2 a
        single down machine never makes a request unserviceable."""
        sim = ClusterSimulator(make_cluster(4, 8, cores=4, replication_factor=2))
        for cycle in range(3):
            victim = 1 + cycle  # a different machine each cycle
            sim.fail_machine(victim)
            sim.reset()
            assert sim.simulate_request(0.0, seg_times(8)) > 0
            sim.recover_machine(victim)
            sim.reset()
            assert sim.simulate_request(0.0, seg_times(8)) > 0

    def test_refailure_of_recovered_machine(self):
        sim = ClusterSimulator(make_cluster(2, 4, cores=4, replication_factor=2))
        sim.fail_machine(1)
        sim.recover_machine(1)
        sim.fail_machine(1)  # re-failure after recovery routes around again
        sim.reset()
        outcome = sim.simulate_request_outcome(0.0, seg_times(4))
        assert outcome.coverage == 1.0

    def test_recover_readmits_past_the_breaker(self):
        sim = ClusterSimulator(make_cluster(2, 4, cores=4, replication_factor=2))
        sim.breaker.record_failure(1, now=0.0)
        sim.breaker.record_failure(1, now=0.0)
        sim.breaker.record_failure(1, now=0.0)
        assert sim.breaker.open_machines() == [1]
        sim.recover_machine(1)
        assert sim.breaker.open_machines() == []

    def test_all_replicas_down_raises(self):
        """When every holder of a segment is dead the request must fail
        loudly, both in assignment and in the full pipeline."""
        machines = make_cluster(4, 8, cores=4, replication_factor=2)
        sim = ClusterSimulator(machines)
        for machine_id in [m.machine_id for m in machines if 0 in m.segments]:
            sim.fail_machine(machine_id)
        with pytest.raises(ClusterError, match="no alive replica"):
            sim._assign_segments(seg_times(8))
        with pytest.raises(ClusterError, match="no alive replica"):
            sim.simulate_request(0.0, seg_times(8))

    def test_empty_request_raises(self):
        """An empty assignment is a caller bug: refuse to invent a latency."""
        sim = ClusterSimulator(make_cluster(2, 4))
        with pytest.raises(ClusterError, match="empty assignment"):
            sim.simulate_request(0.0, {})
