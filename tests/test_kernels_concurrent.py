"""Concurrency regressions for the kernel-backed HNSW search stack.

Three races this PR fixed or must never reintroduce:

1. **Visited-scratch sharing** — searches used to share one ``_visited``
   array keyed by a non-atomically bumped generation counter; colliding
   concurrent searches could land on the same generation, treat each
   other's frontier as already-visited, and silently return truncated
   top-k.  Exclusive scratch checkout makes every concurrent search equal
   its serial twin.
2. **Torn persistence snapshots** — ``save()`` / ``__getstate__`` copy the
   payload under ``_write_lock``, so a pickle taken mid-``update_items``
   always loads to a consistent index.
3. **Telemetry misattribution** — per-search distance/hop counters live on
   the :class:`~repro.index.kernels.QueryContext`, never on the shared
   cumulative ``IndexStats``; overlapping searches observe exactly the
   values a serial run would.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.index.hnsw import HNSWIndex
from repro.telemetry import Telemetry, use_telemetry
from repro.types import Metric

DIM = 12


def build_index(rng, n=400, **kwargs):
    kwargs.setdefault("metric", Metric.L2)
    index = HNSWIndex(dim=DIM, M=8, ef_construction=64, seed=11, **kwargs)
    vectors = rng.standard_normal((n, DIM)).astype(np.float32)
    index.update_items(list(range(n)), vectors)
    return index, vectors


def run_threads(workers):
    threads = [threading.Thread(target=fn) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestConcurrentSearchIdentity:
    def test_concurrent_topk_equals_serial(self, rng):
        """Colliding searches must not share visited scratch (truncation bug)."""
        index, _ = build_index(rng)
        queries = rng.standard_normal((16, DIM)).astype(np.float32)
        expected = [index.topk_search(q, 5, ef=48) for q in queries]

        num_threads = 8
        rounds = 30
        barrier = threading.Barrier(num_threads)
        failures: list[str] = []

        def worker(tid: int) -> None:
            barrier.wait()
            for r in range(rounds):
                qi = (tid + r) % len(queries)
                got = index.topk_search(queries[qi], 5, ef=48)
                want = expected[qi]
                if list(got.ids) != list(want.ids) or not np.array_equal(
                    got.distances, want.distances
                ):
                    failures.append(
                        f"thread {tid} round {r} query {qi}: "
                        f"{got.ids} != {want.ids}"
                    )
                    return

        run_threads([lambda tid=t: worker(tid) for t in range(num_threads)])
        assert not failures, failures[0]

    def test_concurrent_fused_equals_serial(self, rng):
        index, _ = build_index(rng)
        queries = rng.standard_normal((12, DIM)).astype(np.float32)
        expected = index.topk_search_multi(queries, 4, ef=40)

        barrier = threading.Barrier(6)
        failures: list[str] = []

        def worker() -> None:
            barrier.wait()
            for _ in range(10):
                got = index.topk_search_multi(queries, 4, ef=40)
                for g, w in zip(got, expected):
                    if list(g.ids) != list(w.ids):
                        failures.append(f"{g.ids} != {w.ids}")
                        return

        run_threads([worker] * 6)
        assert not failures, failures[0]

    def test_search_during_inserts_returns_valid_results(self, rng):
        """Searches racing inserts never crash and only return live ids.

        No k-completeness assertion: mid-insert a freshly promoted entry
        point may not have its links wired yet, so a racing reader can see
        a short frontier.  What must hold is memory-safety (the visited
        scratch never indexes past its checkout-time capacity), id
        validity, and sorted distances.
        """
        index, _ = build_index(rng, n=100)
        stop = threading.Event()
        errors: list[BaseException] = []

        def inserter() -> None:
            local = np.random.default_rng(7)
            next_id = 100
            try:
                while not stop.is_set() and next_id < 400:
                    batch = local.standard_normal((10, DIM)).astype(np.float32)
                    index.update_items(list(range(next_id, next_id + 10)), batch)
                    next_id += 10
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def searcher() -> None:
            local = np.random.default_rng(13)
            try:
                while not stop.is_set():
                    q = local.standard_normal(DIM).astype(np.float32)
                    result = index.topk_search(q, 5, ef=32)
                    assert 1 <= len(result.ids) <= 5
                    assert all(0 <= int(i) < 400 for i in result.ids)
                    dists = result.distances
                    assert all(dists[i] <= dists[i + 1] for i in range(len(dists) - 1))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=inserter)] + [
            threading.Thread(target=searcher) for _ in range(3)
        ]
        for t in threads:
            t.start()
        threads[0].join()  # inserter finishes its 300 inserts
        stop.set()
        for t in threads[1:]:
            t.join()
        assert not errors, errors[0]


class TestAtomicPersistence:
    def test_save_under_concurrent_inserts_loads_consistent(self, rng, tmp_path):
        """Every snapshot taken mid-insert must load and search cleanly."""
        index, _ = build_index(rng, n=50)
        stop = threading.Event()
        errors: list[BaseException] = []

        def inserter() -> None:
            local = np.random.default_rng(3)
            next_id = 50
            try:
                while next_id < 350:
                    batch = local.standard_normal((5, DIM)).astype(np.float32)
                    index.update_items(list(range(next_id, next_id + 5)), batch)
                    next_id += 5
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        paths = []

        def saver() -> None:
            i = 0
            try:
                while not stop.is_set():
                    path = tmp_path / f"snap-{i}.idx"
                    index.save(path)
                    paths.append(path)
                    i += 1
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        run_threads([inserter, saver])
        assert not errors, errors[0]
        assert paths, "saver thread never produced a snapshot"
        q = rng.standard_normal(DIM).astype(np.float32)
        for path in paths:
            loaded = HNSWIndex.load(path)
            result = loaded.topk_search(q, 3)
            assert len(result.ids) == min(3, len(loaded))
            # Loaded snapshot answers identically to a fresh search of itself.
            again = loaded.topk_search(q, 3)
            assert list(result.ids) == list(again.ids)

    def test_pickle_under_concurrent_inserts_roundtrips(self, rng):
        index, _ = build_index(rng, n=50)
        stop = threading.Event()
        errors: list[BaseException] = []
        blobs: list[bytes] = []

        def inserter() -> None:
            local = np.random.default_rng(5)
            next_id = 50
            try:
                while next_id < 250:
                    batch = local.standard_normal((5, DIM)).astype(np.float32)
                    index.update_items(list(range(next_id, next_id + 5)), batch)
                    next_id += 5
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def pickler() -> None:
            try:
                while not stop.is_set():
                    blobs.append(pickle.dumps(index))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        run_threads([inserter, pickler])
        assert not errors, errors[0]
        assert blobs
        q = rng.standard_normal(DIM).astype(np.float32)
        for blob in blobs[:: max(1, len(blobs) // 8)]:
            clone = pickle.loads(blob)
            result = clone.topk_search(q, 3)
            assert len(result.ids) == min(3, len(clone))


class TestTelemetryAttribution:
    def test_concurrent_observations_match_serial(self, rng):
        """Per-search counters come from the query context, so the histogram
        of observed distance computations is identical however the same
        search set is scheduled across threads."""
        index, _ = build_index(rng)
        queries = rng.standard_normal((24, DIM)).astype(np.float32)

        serial = Telemetry()
        with use_telemetry(serial):
            for q in queries:
                index.topk_search(q, 5, ef=48)
        want = serial.registry.snapshot()["histograms"]

        concurrent = Telemetry()
        barrier = threading.Barrier(6)

        def worker(tid: int) -> None:
            barrier.wait()
            for qi in range(tid, len(queries), 6):
                index.topk_search(queries[qi], 5, ef=48)

        with use_telemetry(concurrent):
            run_threads([lambda tid=t: worker(tid) for t in range(6)])
        got = concurrent.registry.snapshot()["histograms"]

        for name in ("hnsw.distance_computations", "hnsw.hops"):
            assert got[name]["count"] == want[name]["count"] == len(queries)
            assert got[name]["sum"] == want[name]["sum"]
            assert got[name]["min"] == want[name]["min"]
            assert got[name]["max"] == want[name]["max"]

    def test_fused_observes_per_query_values(self, rng):
        """Fused traversal reports one observation per query, equal to the
        solo path's (the beams are bit-identical)."""
        index, _ = build_index(rng)
        queries = rng.standard_normal((10, DIM)).astype(np.float32)

        solo = Telemetry()
        with use_telemetry(solo):
            for q in queries:
                index.topk_search(q, 5, ef=40)
        fused = Telemetry()
        with use_telemetry(fused):
            index.topk_search_multi(queries, 5, ef=40)

        want = solo.registry.snapshot()
        got = fused.registry.snapshot()
        name = "hnsw.distance_computations"
        assert got["histograms"][name]["count"] == len(queries)
        assert got["histograms"][name]["sum"] == want["histograms"][name]["sum"]
        assert got["counters"]["hnsw.fused_searches"] == len(queries)
