"""Tests for the quantization-based index extensions (IVF-Flat and SQ8)."""

import numpy as np
import pytest

from repro.errors import VectorSearchError
from repro.index import BruteForceIndex, IVFFlatIndex, SQ8FlatIndex, create_index, kmeans
from repro.types import IndexType, Metric


@pytest.fixture
def clustered_data(rng):
    centers = rng.standard_normal((8, 16)).astype(np.float32) * 5
    assign = rng.integers(0, 8, 600)
    return (centers[assign] + rng.standard_normal((600, 16))).astype(np.float32)


class TestKMeans:
    def test_centroid_count(self, clustered_data):
        centroids = kmeans(clustered_data, 8)
        assert centroids.shape == (8, 16)

    def test_k_capped_at_n(self, rng):
        data = rng.standard_normal((3, 4)).astype(np.float32)
        assert kmeans(data, 10).shape == (3, 4)

    def test_empty_rejected(self):
        with pytest.raises(VectorSearchError):
            kmeans(np.zeros((0, 4), dtype=np.float32), 2)

    def test_recovers_separated_centers(self, rng):
        centers = np.array([[0.0] * 8, [50.0] * 8], dtype=np.float32)
        assign = rng.integers(0, 2, 200)
        data = centers[assign] + rng.standard_normal((200, 8)).astype(np.float32)
        found = kmeans(data, 2, iterations=20)
        found = found[np.argsort(found[:, 0])]
        assert np.allclose(found[0], 0.0, atol=1.0)
        assert np.allclose(found[1], 50.0, atol=1.0)


class TestIVFFlat:
    def build(self, data, **kw):
        index = IVFFlatIndex(data.shape[1], Metric.L2, nlist=8, nprobe=4, **kw)
        index.update_items(np.arange(len(data)), data)
        return index

    def test_recall_vs_bruteforce(self, clustered_data):
        index = self.build(clustered_data)
        bf = BruteForceIndex(16, Metric.L2)
        bf.update_items(np.arange(len(clustered_data)), clustered_data)
        hits = 0
        for qi in range(20):
            q = clustered_data[qi] + 0.1
            got = set(index.topk_search(q, 5, ef=8).ids.tolist())  # all lists
            exact = set(bf.topk_search(q, 5).ids.tolist())
            hits += len(got & exact)
        assert hits / 100 > 0.95

    def test_nprobe_recall_tradeoff(self, clustered_data):
        index = self.build(clustered_data)
        bf = BruteForceIndex(16, Metric.L2)
        bf.update_items(np.arange(len(clustered_data)), clustered_data)

        def recall(nprobe):
            hits = 0
            for qi in range(20):
                q = clustered_data[qi] + 0.1
                got = set(index.topk_search(q, 5, ef=nprobe).ids.tolist())
                exact = set(bf.topk_search(q, 5).ids.tolist())
                hits += len(got & exact)
            return hits / 100

        assert recall(8) >= recall(1)

    def test_exact_match(self, clustered_data):
        index = self.build(clustered_data)
        result = index.topk_search(clustered_data[42], 1, ef=8)
        assert result.ids[0] == 42

    def test_delete(self, clustered_data):
        index = self.build(clustered_data)
        index.delete_items([42])
        assert 42 not in index
        result = index.topk_search(clustered_data[42], 3, ef=8)
        assert 42 not in result.ids
        assert len(index) == 599

    def test_update_moves_vector(self, clustered_data):
        index = self.build(clustered_data)
        new = np.full(16, 99.0, dtype=np.float32)
        index.update_items([7], new.reshape(1, -1))
        assert np.allclose(index.get_embedding(7), new)
        result = index.topk_search(new, 1, ef=8)
        assert result.ids[0] == 7
        # old location no longer returns id 7
        old = index.topk_search(clustered_data[7], 10, ef=8)
        assert list(old.ids).count(7) <= 1

    def test_filter_fn(self, clustered_data):
        index = self.build(clustered_data)
        result = index.topk_search(
            clustered_data[0], 5, ef=8, filter_fn=lambda i: i % 2 == 0
        )
        assert all(i % 2 == 0 for i in result.ids)

    def test_empty_search(self):
        index = IVFFlatIndex(4, Metric.L2)
        assert len(index.topk_search(np.zeros(4, dtype=np.float32), 3)) == 0

    def test_factory(self):
        index = create_index(IndexType.IVF_FLAT, 8, Metric.L2, {"nlist": 4, "nprobe": 2})
        assert isinstance(index, IVFFlatIndex)
        assert index.nlist == 4

    def test_range_search(self, clustered_data):
        index = self.build(clustered_data)
        result = index.range_search(clustered_data[0], threshold=8.0, ef=8)
        assert np.all(result.distances < 8.0)


class TestSQ8:
    def build(self, data):
        index = SQ8FlatIndex(data.shape[1], Metric.L2)
        index.update_items(np.arange(len(data)), data)
        return index

    def test_recall_close_to_exact(self, clustered_data):
        index = self.build(clustered_data)
        bf = BruteForceIndex(16, Metric.L2)
        bf.update_items(np.arange(len(clustered_data)), clustered_data)
        hits = 0
        for qi in range(20):
            q = clustered_data[qi] + 0.05
            got = set(index.topk_search(q, 5).ids.tolist())
            exact = set(bf.topk_search(q, 5).ids.tolist())
            hits += len(got & exact)
        assert hits / 100 > 0.85  # quantization loses a little

    def test_memory_is_quarter_of_float32(self, clustered_data):
        index = self.build(clustered_data)
        float_bytes = clustered_data.nbytes
        assert index.memory_bytes == float_bytes // 4

    def test_decode_roundtrip_error_bounded(self, clustered_data):
        index = self.build(clustered_data)
        decoded = index.get_embedding(3)
        span = clustered_data.max(axis=0) - clustered_data.min(axis=0)
        assert np.all(np.abs(decoded - clustered_data[3]) <= span / 255.0 + 1e-5)

    def test_delete_swap(self, clustered_data):
        index = self.build(clustered_data)
        index.delete_items([0, 599])
        assert len(index) == 598
        assert 0 not in index

    def test_update(self, clustered_data):
        index = self.build(clustered_data)
        v = clustered_data[10] * 0.5
        index.update_items([10], v.reshape(1, -1))
        assert np.allclose(index.get_embedding(10), v, atol=0.2)

    def test_factory(self):
        index = create_index(IndexType.SQ8, 8, Metric.L2)
        assert isinstance(index, SQ8FlatIndex)

    def test_range_search(self, clustered_data):
        index = self.build(clustered_data)
        result = index.range_search(clustered_data[0], threshold=10.0)
        assert np.all(result.distances < 10.0)


class TestEmbeddingAttributeWithIVF:
    def test_ivf_index_in_schema(self, rng):
        """A vertex embedding attribute can declare INDEX = IVF_FLAT."""
        from tests.conftest import make_post_db

        db = make_post_db()
        db.schema.add_embedding_attribute(
            "Person", "pemb", dimension=8, index=IndexType.IVF_FLAT,
            metric=Metric.L2, index_params={"nlist": 4, "nprobe": 4},
        )
        with db.begin() as txn:
            for i in range(50):
                txn.upsert_vertex("Person", i, {})
                txn.set_embedding("Person", i, "pemb", rng.standard_normal(8))
        db.vacuum()
        q = db.service.store("Person", "pemb").get_embedding(db.vid_for("Person", 5))
        result = db.vector_search(["Person.pemb"], q, k=1)
        assert next(iter(result)) == ("Person", db.vid_for("Person", 5))
        db.close()

    def test_gsql_ddl_ivf(self):
        from repro import TigerVectorDB

        db = TigerVectorDB()
        db.run_gsql(
            "CREATE VERTEX P (id INT PRIMARY KEY);"
            "ALTER VERTEX P ADD EMBEDDING ATTRIBUTE e "
            "(DIMENSION = 8, INDEX = IVF_FLAT, METRIC = L2);"
        )
        emb = db.schema.vertex_type("P").embedding("e")
        assert emb.index is IndexType.IVF_FLAT
        db.close()
