"""Additional GSQL behaviour tests: edge cases across the pipeline."""

import numpy as np
import pytest

from repro import RankedVertexSet, TigerVectorDB, VertexSet
from repro.errors import GSQLParseError, GSQLSemanticError


class TestRangeSearchEdgeCases:
    def test_empty_range(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql(
            "SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.content_emb, qv) < 0.000001;",
            qv=(np.full(16, 100.0)).tolist(),
        )
        assert len(r.result) == 0

    def test_range_threshold_expression(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql(
            "SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.content_emb, qv) < 2.0 + 3.0;",
            qv=db._test_vectors[0].tolist(),
        )
        assert ("Post", db.vid_for("Post", 0)) in r.result

    def test_le_operator_also_range(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql(
            "SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.content_emb, qv) <= 5.0;",
            qv=db._test_vectors[0].tolist(),
        )
        assert isinstance(r.result, RankedVertexSet)


class TestVertexSetVariableStart:
    def test_from_set_variable(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q() {
              Odd = SELECT t FROM (t:Post) WHERE t.language == "en";
              Authors = SELECT p FROM (m:Odd) - [:hasCreator] -> (p:Person);
              PRINT Authors;
            }
            """
        )
        r = db.gsql.run_query("q")
        assert len(r.prints[0]["vertices"]) == 5  # all five authors have en posts

    def test_set_variable_filter_in_topk(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q(List<FLOAT> v) {
              Long = SELECT t FROM (t:Post) WHERE t.length > 280;
              Top = SELECT s FROM (s:Long)
                    ORDER BY VECTOR_DIST(s.content_emb, v) LIMIT 3;
              PRINT Top;
            }
            """
        )
        r = db.gsql.run_query("q", v=db._test_vectors[0].tolist())
        pks = [v.pk for v, _ in r.prints[0]["vertices"]]
        assert pks and all(pk > 180 for pk in pks)


class TestAccumEdgeCases:
    def test_vertex_local_accum_in_select(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q() {
              SumAccum<INT> @cnt;
              X = SELECT p FROM (m:Post) - [:hasCreator] -> (p:Person)
                  ACCUM p.@cnt += 1;
              Busy = SELECT p FROM (p:X) WHERE p.@cnt >= 40;
              PRINT Busy;
            }
            """
        )
        r = db.gsql.run_query("q")
        assert len(r.prints[0]["vertices"]) == 5  # 200 posts / 5 people

    def test_map_accum_with_tuple(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q() {
              MapAccum<VERTEX, INT> @@lengths;
              X = SELECT t FROM (t:Post) WHERE t.id < 3
                  ACCUM @@lengths += (t, t.length);
              PRINT @@lengths;
            }
            """
        )
        r = db.gsql.run_query("q")
        assert len(r.prints[0]) == 3

    def test_avg_accum(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q() {
              AvgAccum @@mean;
              X = SELECT t FROM (t:Post) ACCUM @@mean += t.length;
              PRINT @@mean;
            }
            """
        )
        r = db.gsql.run_query("q")
        assert r.prints[0] == pytest.approx(100 + 199 / 2)


class TestErrorLocations:
    def test_parse_error_reports_line(self):
        db = TigerVectorDB()
        with pytest.raises(GSQLParseError) as err:
            db.run_gsql("CREATE VERTEX X (\n  id INT PRIMARY KEY\n  name STRING\n);")
        assert err.value.line == 3
        db.close()

    def test_semantic_error_mentions_name(self, loaded_post_db):
        with pytest.raises(GSQLSemanticError, match="ghost"):
            loaded_post_db.run_gsql("SELECT s FROM (s:ghost);")


class TestDistinctAndProjection:
    def test_multi_alias_projection_dedups(self, loaded_post_db):
        db = loaded_post_db
        rows = db.run_gsql(
            "SELECT m, p FROM (m:Post) - [:hasCreator] -> (p:Person) "
            "WHERE m.id < 4;"
        ).result
        assert len(rows) == 4
        assert {type(r["m"]).__name__ for r in rows} == {"Vertex"}

    def test_distinct_keyword_accepted(self, loaded_post_db):
        r = loaded_post_db.run_gsql(
            'SELECT DISTINCT p FROM (m:Post) - [:hasCreator] -> (p:Person);'
        )
        assert len(r.result) == 5


class TestSnapshotConsistencyInQueries:
    def test_query_sees_one_snapshot(self, loaded_post_db):
        """A procedure's blocks all read the snapshot taken at start."""
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q() {
              A = SELECT t FROM (t:Post) WHERE t.id < 5;
              B = SELECT t FROM (t:Post) WHERE t.id < 5;
              PRINT A;
              PRINT B;
            }
            """
        )
        r = db.gsql.run_query("q")
        assert r.prints[0] == r.prints[1]
