"""Tests for the update-vs-rebuild mechanics behind Figure 11."""

import pickle
import time

import numpy as np
import pytest

from repro.index import HNSWIndex
from repro.types import Metric


@pytest.fixture(scope="module")
def base():
    rng = np.random.default_rng(3)
    data = rng.standard_normal((1200, 16)).astype(np.float32)
    index = HNSWIndex(16, Metric.L2, M=8, ef_construction=48)
    start = time.perf_counter()
    index.update_items(np.arange(1200), data)
    build_seconds = time.perf_counter() - start
    return index, data, build_seconds


class TestUpdateMechanics:
    def test_update_tombstones_old_row(self, base):
        index, data, _ = base
        clone = pickle.loads(pickle.dumps(index))
        before_rows = clone._count
        clone.update_items([5], (data[5] + 1.0).reshape(1, -1))
        assert clone._count == before_rows + 1  # fresh row appended
        assert len(clone) == 1200  # logical size unchanged

    def test_update_cost_exceeds_fresh_insert(self, base):
        """The Figure-11 crossover mechanism: updating into a dense graph
        costs more than batch-build inserts did on average."""
        index, data, build_seconds = base
        per_insert = build_seconds / 1200
        clone = pickle.loads(pickle.dumps(index))
        rng = np.random.default_rng(4)
        ids = rng.choice(1200, size=100, replace=False)
        start = time.perf_counter()
        clone.update_items(ids.tolist(), data[ids] + 0.5)
        per_update = (time.perf_counter() - start) / 100
        assert per_update > 0.7 * per_insert  # at least comparable, usually >

    def test_small_update_beats_rebuild(self, base):
        index, data, build_seconds = base
        clone = pickle.loads(pickle.dumps(index))
        rng = np.random.default_rng(5)
        ids = rng.choice(1200, size=12, replace=False)  # 1%
        start = time.perf_counter()
        clone.update_items(ids.tolist(), data[ids] + 0.5)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5 * build_seconds

    def test_updated_index_quality_preserved(self, base):
        """After updates, search still finds the moved vectors."""
        index, data, _ = base
        clone = pickle.loads(pickle.dumps(index))
        rng = np.random.default_rng(6)
        ids = rng.choice(1200, size=60, replace=False)
        moved = data[ids] + 20.0
        clone.update_items(ids.tolist(), moved)
        hits = 0
        for row, ext_id in zip(moved[:20], ids[:20]):
            result = clone.topk_search(row, 1, ef=64)
            hits += int(result.ids[0] == ext_id)
        assert hits >= 18

    def test_monotone_update_cost(self, base):
        index, data, _ = base
        rng = np.random.default_rng(7)
        times = []
        for frac in (0.02, 0.1, 0.3):
            count = int(1200 * frac)
            ids = rng.choice(1200, size=count, replace=False)
            clone = pickle.loads(pickle.dumps(index))
            start = time.perf_counter()
            clone.update_items(ids.tolist(), data[ids] + 0.1)
            times.append(time.perf_counter() - start)
        assert times[0] < times[1] < times[2]
