"""Tests for GSQL expression evaluation details."""

import numpy as np
import pytest

from repro.errors import GSQLSemanticError
from repro.gsql.executor import ExecutionContext, eval_expr
from repro.gsql.parser import parse_expression


@pytest.fixture
def ctx(loaded_post_db):
    with loaded_post_db.snapshot() as snap:
        yield ExecutionContext(db=loaded_post_db, snapshot=snap)


def ev(ctx, text, env=None, **vars):
    ctx.vars.update(vars)
    return eval_expr(parse_expression(text), ctx, env)


class TestScalars:
    def test_arithmetic(self, ctx):
        assert ev(ctx, "1 + 2 * 3 - 4 / 2") == 5.0
        assert ev(ctx, "7 % 3") == 1
        assert ev(ctx, "-(2 + 3)") == -5

    def test_comparisons(self, ctx):
        assert ev(ctx, "3 < 4") is True
        assert ev(ctx, "3 >= 4") is False
        assert ev(ctx, '"a" != "b"') is True

    def test_boolean_short_circuit(self, ctx):
        # the right side would raise (unknown var) if evaluated
        assert ev(ctx, "FALSE AND nonexistent") is False
        assert ev(ctx, "TRUE OR nonexistent") is True

    def test_in_operator(self, ctx):
        assert ev(ctx, "2 IN [1, 2, 3]") is True
        assert ev(ctx, "9 IN [1, 2, 3]") is False

    def test_params(self, ctx):
        assert ev(ctx, "x * 2", x=21) == 42

    def test_unknown_variable(self, ctx):
        with pytest.raises(GSQLSemanticError, match="unknown variable"):
            ev(ctx, "ghost")


class TestVertexContext:
    def test_attr_ref_via_env(self, ctx, loaded_post_db):
        env = {"p": ("Post", loaded_post_db.vid_for("Post", 7))}
        assert ev(ctx, "p.length", env=env) == 107
        assert ev(ctx, 'p.language == "en"', env=env) is True

    def test_embedding_attr_access(self, ctx, loaded_post_db):
        env = {"p": ("Post", loaded_post_db.vid_for("Post", 3))}
        vec = ev(ctx, "p.content_emb", env=env)
        assert np.allclose(vec, loaded_post_db._test_vectors[3])

    def test_unknown_attr(self, ctx, loaded_post_db):
        env = {"p": ("Post", 0)}
        with pytest.raises(GSQLSemanticError, match="no attribute"):
            ev(ctx, "p.bogus", env=env)

    def test_runtime_attr_resolution(self, ctx):
        ctx.set_runtime_attr(("Post", 0), "cid", 5)
        env = {"p": ("Post", 0)}
        assert ev(ctx, "p.cid", env=env) == 5

    def test_vertex_in_set(self, ctx, loaded_post_db):
        from repro.graph.vertex_set import VertexSet

        vid = loaded_post_db.vid_for("Post", 1)
        ctx.vars["S"] = VertexSet([("Post", vid)])
        env = {"p": ("Post", vid)}
        assert ev(ctx, "p IN S", env=env) is True

    def test_vector_dist_between_env_vertices(self, ctx, loaded_post_db):
        db = loaded_post_db
        env = {
            "a": ("Post", db.vid_for("Post", 0)),
            "b": ("Post", db.vid_for("Post", 1)),
        }
        dist = ev(ctx, "VECTOR_DIST(a.content_emb, b.content_emb)", env=env)
        from repro.types import Metric, distance

        expected = distance(db._test_vectors[0], db._test_vectors[1], Metric.L2)
        assert dist == pytest.approx(expected, rel=1e-4)

    def test_vector_dist_with_literal(self, ctx, loaded_post_db):
        db = loaded_post_db
        env = {"a": ("Post", db.vid_for("Post", 0))}
        zeros = "[" + ", ".join("0.0" for _ in range(16)) + "]"
        dist = ev(ctx, f"VECTOR_DIST(a.content_emb, {zeros})", env=env)
        assert dist == pytest.approx(float(np.sum(db._test_vectors[0] ** 2)), rel=1e-4)


class TestBuiltins:
    def test_split(self, ctx):
        out = ev(ctx, 'split("1.5:2.5:3", ":")')
        assert np.allclose(out, [1.5, 2.5, 3.0])

    def test_size_and_count(self, ctx):
        assert ev(ctx, "size([1,2,3])") == 3
        assert ev(ctx, "count([1])") == 1

    def test_math(self, ctx):
        assert ev(ctx, "abs(-3)") == 3
        assert ev(ctx, "sqrt(16)") == 4
        assert ev(ctx, "floor(2.7)") == 2
        assert ev(ctx, "ceil(2.1)") == 3

    def test_string_helpers(self, ctx):
        assert ev(ctx, 'upper("ab")') == "AB"
        assert ev(ctx, 'lower("AB")') == "ab"
        assert ev(ctx, "to_string(7)") == "7"

    def test_unknown_function(self, ctx):
        with pytest.raises(GSQLSemanticError, match="unknown function"):
            ev(ctx, "frobnicate(1)")


class TestSetOps:
    def test_union_requires_sets(self, ctx):
        ctx.vars["A"] = 1
        ctx.vars["B"] = 2
        with pytest.raises(GSQLSemanticError):
            ev(ctx, "A UNION B")

    def test_set_algebra(self, ctx):
        from repro.graph.vertex_set import VertexSet

        ctx.vars["A"] = VertexSet([("P", 1), ("P", 2)])
        ctx.vars["B"] = VertexSet([("P", 2)])
        assert len(ev(ctx, "A UNION B")) == 2
        assert len(ev(ctx, "A INTERSECT B")) == 1
        assert len(ev(ctx, "A MINUS B")) == 1
