"""Shared fixtures for the test suite.

Set ``REPRO_SANITIZE=1`` to run every test with instrumented locks: the
runtime sanitizer (repro.analysis.sanitizer) records the lock-order graph,
reports it in the terminal summary, and fails the session on any lock-order
inversion or held-across-commit violation.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Attribute, AttrType, Metric, TigerVectorDB

_SANITIZE = os.environ.get("REPRO_SANITIZE") == "1"

if _SANITIZE:
    # Patch before any fixture/test constructs a store, so every repro lock
    # in the session is instrumented.
    from repro.analysis import sanitizer

    sanitizer.patch_locks()


@pytest.fixture(scope="session", autouse=True)
def _lock_sanitizer_gate():
    """Fail the session (at teardown) if the sanitizer recorded violations."""
    if not _SANITIZE:
        yield
        return
    from repro.analysis import sanitizer

    sanitizer.reset()
    yield
    found = sanitizer.violations()
    assert not found, sanitizer.format_report()


@pytest.fixture(autouse=True)
def _lock_sanitizer_context(request):
    """Tag sanitizer violations with the pytest test id that triggered them."""
    if not _SANITIZE:
        yield
        return
    from repro.analysis import sanitizer

    sanitizer.set_context(request.node.nodeid)
    yield
    sanitizer.set_context("")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _SANITIZE:
        from repro.analysis import sanitizer

        terminalreporter.write_line(sanitizer.summary_line())


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_post_db(segment_size: int = 64, dim: int = 16) -> TigerVectorDB:
    """A small Post/Person graph with one embedding attribute."""
    db = TigerVectorDB(segment_size=segment_size)
    db.schema.create_vertex_type(
        "Post",
        [
            Attribute("id", AttrType.INT, primary_key=True),
            Attribute("language", AttrType.STRING),
            Attribute("length", AttrType.INT),
        ],
    )
    db.schema.create_vertex_type(
        "Person",
        [
            Attribute("id", AttrType.INT, primary_key=True),
            Attribute("firstName", AttrType.STRING),
        ],
    )
    db.schema.create_edge_type("hasCreator", "Post", "Person")
    db.schema.create_edge_type("knows", "Person", "Person", directed=False)
    db.schema.add_embedding_attribute(
        "Post", "content_emb", dimension=dim, model="GPT4", metric=Metric.L2
    )
    return db


@pytest.fixture
def post_db():
    db = make_post_db()
    yield db
    db.close()


@pytest.fixture
def loaded_post_db(rng):
    """Post/Person graph with 200 posts + embeddings, vacuumed."""
    db = make_post_db()
    vectors = rng.standard_normal((200, 16)).astype(np.float32)
    with db.begin() as txn:
        for i in range(5):
            txn.upsert_vertex("Person", i, {"firstName": f"P{i}"})
        for i in range(200):
            txn.upsert_vertex(
                "Post", i, {"language": "en" if i % 2 else "fr", "length": 100 + i}
            )
            txn.set_embedding("Post", i, "content_emb", vectors[i])
        for i in range(200):
            txn.add_edge("hasCreator", i, i % 5)
        for i in range(4):
            txn.add_edge("knows", i, i + 1)
    db.vacuum()
    db._test_vectors = vectors
    yield db
    db.close()
