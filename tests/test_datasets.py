"""Tests for the synthetic dataset generators and workloads."""

import numpy as np
import pytest

from repro.datasets import (
    IC_QUERIES,
    LDBCConfig,
    build_ic_query,
    generate_ldbc,
    ground_truth,
    make_deep_like,
    make_queries,
    make_sift_like,
)
from repro.types import Metric, batch_distances


class TestVectorDatasets:
    def test_sift_like_shape_and_range(self):
        ds = make_sift_like(500, num_queries=10)
        assert ds.vectors.shape == (500, 128)
        assert ds.queries.shape == (10, 128)
        assert ds.vectors.min() >= 0
        assert ds.vectors.max() <= 218
        assert np.allclose(ds.vectors, np.round(ds.vectors))  # integer-valued
        assert ds.metric is Metric.L2

    def test_deep_like_normalized(self):
        ds = make_deep_like(300, num_queries=5)
        assert ds.vectors.shape == (300, 96)
        norms = np.linalg.norm(ds.vectors, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-5)

    def test_seeded_determinism(self):
        a = make_sift_like(100, seed=7)
        b = make_sift_like(100, seed=7)
        c = make_sift_like(100, seed=8)
        assert np.array_equal(a.vectors, b.vectors)
        assert not np.array_equal(a.vectors, c.vectors)

    def test_ground_truth_blocked_matches_direct(self, rng):
        ds = make_sift_like(300, num_queries=8)
        gt = ground_truth(ds.vectors, ds.queries, 5, Metric.L2, block=64)
        for qi, q in enumerate(ds.queries):
            dists = batch_distances(q, ds.vectors, Metric.L2)
            expected = np.argsort(dists, kind="stable")[:5]
            assert set(gt[qi].tolist()) == set(expected.tolist())

    def test_with_ground_truth_caches(self):
        ds = make_sift_like(200, num_queries=4)
        ds.with_ground_truth(10)
        first = ds.gt_ids
        ds.with_ground_truth(5)
        assert ds.gt_ids is first  # wider cache reused

    def test_make_queries(self):
        ds = make_sift_like(200, num_queries=4)
        qs = make_queries(ds, 17)
        assert qs.shape == (17, 128)


class TestLDBCGenerator:
    def test_counts_scale_with_sf(self):
        small = generate_ldbc(LDBCConfig(scale_factor=1.0, seed=5))
        big = generate_ldbc(LDBCConfig(scale_factor=3.0, seed=5))
        assert len(big.persons) == 3 * len(small.persons)
        assert 2.0 < len(big.posts) / len(small.posts) < 4.0

    def test_structure_consistency(self):
        data = generate_ldbc(LDBCConfig(scale_factor=0.5))
        n_person = len(data.persons)
        assert all(0 <= a < n_person and 0 <= b < n_person for a, b in data.knows)
        assert all(a != b for a, b in data.knows)
        assert len(data.post_creator) == len(data.posts)
        assert len(data.comment_creator) == len(data.comments)
        assert len(data.reply_of) == len(data.comments)
        assert data.post_embeddings.shape == (len(data.posts), data.config.embedding_dim)

    def test_power_law_degrees(self):
        data = generate_ldbc(LDBCConfig(scale_factor=2.0))
        degree: dict[int, int] = {}
        for a, b in data.knows:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        degrees = sorted(degree.values(), reverse=True)
        # heavy tail: max degree much larger than median
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_alice_exists(self):
        data = generate_ldbc(LDBCConfig(scale_factor=0.5))
        assert any(p["firstName"] == "Alice" for p in data.persons)

    def test_determinism(self):
        a = generate_ldbc(LDBCConfig(scale_factor=0.5, seed=3))
        b = generate_ldbc(LDBCConfig(scale_factor=0.5, seed=3))
        assert a.knows == b.knows
        assert np.array_equal(a.post_embeddings, b.post_embeddings)


class TestICWorkloads:
    def test_all_queries_parse(self):
        from repro.gsql.parser import parse

        for name in IC_QUERIES:
            for hops in (2, 3, 4):
                qname, text = build_ic_query(name, hops)
                (node,) = parse(text)
                assert node.name == qname

    def test_hop_count_embedded(self):
        _, text = build_ic_query("IC5", 4)
        assert "knows*4" in text

    def test_specs_cover_paper_queries(self):
        assert set(IC_QUERIES) == {"IC3", "IC5", "IC6", "IC9", "IC11"}
