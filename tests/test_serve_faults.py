"""Serve-tier chaos tests: injected worker crashes, stalls, poisoned batches.

The chaos matrix for the serving layer (ISSUE 7): with a
:class:`~repro.faults.FaultInjector` attached to a :class:`QueryServer`,

- a worker crash mid-query re-queues the in-flight batch (bounded by the
  resilience policy) and respawns a replacement — requests are delayed,
  never lost;
- a stalled worker delays its own batch while the rest of the pool keeps
  draining;
- a fused batch poisoned by an injected segment fault degrades to
  per-query execution instead of failing every rider;
- under a combined fault schedule every request resolves with a result or
  a typed error, and every successful answer matches the direct search
  path — zero lost, zero silently-stale.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import FaultInjectionError, ReproError
from repro.faults import FaultInjector, FaultPlan, ResiliencePolicy
from repro.serve import QueryServer, ServeConfig
from repro.telemetry import Telemetry, use_telemetry

ATTR = "Post.content_emb"
DIM = 16


def members(vset):
    return sorted(vset)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestWorkerCrash:
    def test_crashed_worker_batch_requeued_not_lost(self, loaded_post_db, rng):
        db = loaded_post_db
        injector = FaultInjector(FaultPlan().crash_worker(1))
        config = ServeConfig(workers=2, enable_batching=False, enable_cache=False)
        policy = ResiliencePolicy(max_attempts=3)
        queries = rng.standard_normal((8, DIM)).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(
            db, config, policy=policy, injector=injector
        ) as server:
            futures = [server.submit_search([ATTR], q, 3) for q in queries]
            results = [f.result(timeout=30) for f in futures]
        for q, got in zip(queries, results):
            assert members(got) == members(db.vector_search([ATTR], q, 3))
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.worker_crashes"] == 1
        assert counters["serve.worker_respawns"] == 1
        assert counters["serve.worker_requeues"] >= 1
        assert any(event.kind == "worker-crash" for event in injector.trace)

    def test_repeated_crashes_exhaust_retry_budget_typed(self, loaded_post_db, rng):
        """A request that has been through ``max_attempts`` crashed workers
        fails with a typed error instead of cycling forever."""
        db = loaded_post_db
        injector = FaultInjector(FaultPlan().crash_worker(1))
        config = ServeConfig(workers=1, enable_batching=False, enable_cache=False)
        policy = ResiliencePolicy(max_attempts=1)
        q = rng.standard_normal(DIM).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(
            db, config, policy=policy, injector=injector
        ) as server:
            future = server.submit_search([ATTR], q, 3)
            with pytest.raises(FaultInjectionError, match="retry budget"):
                future.result(timeout=30)
            # The respawned worker still serves fresh traffic.
            ok = server.search([ATTR], q, 3)
            assert members(ok) == members(db.vector_search([ATTR], q, 3))
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.worker_crashes"] == 1
        assert counters["serve.completed"] == 2  # typed failure + success


class TestWorkerStall:
    def test_straggler_delays_one_batch_pool_keeps_draining(
        self, loaded_post_db, rng
    ):
        db = loaded_post_db
        injector = FaultInjector(FaultPlan().stall_worker(1, seconds=0.3))
        config = ServeConfig(workers=2, enable_batching=False, enable_cache=False)
        queries = rng.standard_normal((6, DIM)).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(db, config, injector=injector) as server:
            futures = [server.submit_search([ATTR], q, 3) for q in queries]
            results = [f.result(timeout=30) for f in futures]
        for q, got in zip(queries, results):
            assert members(got) == members(db.vector_search([ATTR], q, 3))
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.worker_stalls"] == 1
        assert counters["serve.completed"] == len(queries)
        assert any(event.kind == "worker-stall" for event in injector.trace)


class TestBatchPoison:
    def test_poisoned_fused_batch_degrades_to_per_query(self, loaded_post_db, rng):
        """An injected segment fault inside the fused scan must not fail
        every rider: the batch degrades to per-query execution on the same
        snapshot, the singles run after the one-shot fault is consumed,
        and every answer matches the direct path."""
        db = loaded_post_db
        injector = FaultInjector(FaultPlan().fail_segment(0, failures=1))
        injector.install_store(db.service.store("Post", "content_emb"))
        config = ServeConfig(
            workers=1,
            enable_batching=True,
            enable_cache=False,
            batch_window_seconds=0.2,
            max_batch=8,
            min_fused=2,
        )
        policy = ResiliencePolicy(max_attempts=1)  # no in-kernel retry
        queries = rng.standard_normal((4, DIM)).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(
            db, config, policy=policy, injector=injector
        ) as server:
            futures = [server.submit_search([ATTR], q, 5) for q in queries]
            results = [f.result(timeout=30) for f in futures]
        for q, got in zip(queries, results):
            assert members(got) == members(db.vector_search([ATTR], q, 5))
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.batch_poison_degrades"] == 1
        assert counters["serve.completed"] == len(queries)
        assert any(event.kind == "segment-fault" for event in injector.trace)

    def test_retry_budget_absorbs_poison_without_degrade(self, loaded_post_db, rng):
        """With retries available, the fused path recovers in-kernel and
        the degrade path is never taken."""
        db = loaded_post_db
        injector = FaultInjector(FaultPlan().fail_segment(0, failures=1))
        injector.install_store(db.service.store("Post", "content_emb"))
        config = ServeConfig(
            workers=1,
            enable_batching=True,
            enable_cache=False,
            batch_window_seconds=0.2,
            max_batch=8,
            min_fused=2,
        )
        policy = ResiliencePolicy(max_attempts=3, backoff_base=0.0)
        queries = rng.standard_normal((4, DIM)).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(
            db, config, policy=policy, injector=injector
        ) as server:
            futures = [server.submit_search([ATTR], q, 5) for q in queries]
            for f in futures:
                assert f.exception(timeout=30) is None
        counters = telemetry.registry.snapshot()["counters"]
        assert counters.get("serve.batch_poison_degrades", 0) == 0
        assert counters.get("resilience.retries", 0) >= 1


class TestChaosSweep:
    def test_combined_faults_zero_lost_zero_stale(self, loaded_post_db, rng):
        """The serve-tier chaos matrix: crashes + stalls + segment faults
        at once.  Every submitted request resolves (result or typed error),
        and every successful answer — including staleness-bounded ones —
        matches the direct search path on this static dataset."""
        db = loaded_post_db
        plan = (
            FaultPlan()
            .crash_worker(2)
            .stall_worker(3, seconds=0.05)
            .fail_segment(1, failures=2)
        )
        injector = FaultInjector(plan)
        injector.install_store(db.service.store("Post", "content_emb"))
        config = ServeConfig(
            workers=3,
            enable_batching=True,
            enable_cache=True,
            batch_window_seconds=0.002,
            min_fused=2,
        )
        policy = ResiliencePolicy(max_attempts=3, backoff_base=0.0)
        queries = rng.standard_normal((24, DIM)).astype(np.float32)
        outcomes: list[tuple[int, object]] = []
        lock = threading.Lock()

        def fire(index: int, server: QueryServer) -> None:
            kwargs = {"max_staleness": 0} if index % 3 == 0 else {}
            try:
                got = server.search([ATTR], queries[index], 5, **kwargs)
            except ReproError as exc:
                with lock:
                    outcomes.append((index, exc))
                return
            with lock:
                outcomes.append((index, got))

        telemetry = Telemetry()
        with use_telemetry(telemetry), QueryServer(
            db, config, policy=policy, injector=injector
        ) as server:
            threads = [
                threading.Thread(target=fire, args=(i, server))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads), "a request hung"
        assert len(outcomes) == len(queries), "a request was lost"
        successes = 0
        for index, outcome in outcomes:
            if isinstance(outcome, ReproError):
                continue  # typed failure: visible, accounted, acceptable
            successes += 1
            want = members(db.vector_search([ATTR], queries[index], 5))
            assert members(outcome) == want, f"stale/wrong answer for {index}"
        assert successes > 0, "chaos schedule starved every request"
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.worker_crashes"] >= 1
        assert counters["serve.completed"] >= successes
