"""Concurrent cache-correctness test for the serving layer.

Run under the runtime sanitizer to also check lock discipline::

    REPRO_SANITIZE=1 PYTHONPATH=src python -m pytest tests/test_serve_cache_concurrent.py

Protocol: reader threads hammer a caching, batching :class:`QueryServer`
with a fixed probe-query set while a writer commits embedding deltas (new
vertices whose vectors sit exactly on probe queries, plus updates to
existing ones) and a vacuum thread runs delta_merge/index_merge rounds
concurrently.  After every round the system quiesces and each probe query
is answered once more through the server (cache ON, so a stale entry keyed
at the current watermark *would* be served) and compared against a direct
cold ``vector_search`` — any mismatch means the MVCC-watermark keys let a
stale top-k survive a commit or a merge.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ReproError
from repro.graph.accumulators import MapAccum
from repro.serve import QueryServer, ServeConfig
from repro.telemetry import Telemetry, use_telemetry


ROUNDS = 4
READERS = 3
SEARCHES_PER_READER = 12
PROBES = 6
DIM = 16


def assert_same_topk(served, served_map, direct, direct_map, label):
    """Members must match exactly; distances to 1e-5.

    The tolerance exists because a cached entry may have been produced by
    the fused brute-force kernel, whose BLAS reduction order differs from
    the per-query HNSW distance path in the last ulp (same math, same
    ranking, different rounding).
    """
    got, want = sorted(served), sorted(direct)
    assert got == want, f"stale top-k members for {label}: {got} != {want}"
    got_d, want_d = dict(served_map.items()), dict(direct_map.items())
    for member in got:
        assert abs(got_d[member] - want_d[member]) < 1e-4, (
            f"stale distance for {label} member {member}: "
            f"{got_d[member]} != {want_d[member]}"
        )


def test_midcommit_watermark_race_never_poisons_cache(loaded_post_db, rng):
    """Deterministic reproduction of the hook-before-publish interleaving.

    ``GraphStore._commit`` fires embedding hooks (which bump
    ``delta_store.max_tid``, a watermark component) *before* publishing
    ``_last_tid``.  A hook that stalls mid-commit freezes exactly that
    window: a search served now reads a post-commit watermark but pins a
    pre-commit snapshot.  The server must serve it *uncached* — otherwise,
    once the commit publishes, every identical query computes the same
    watermark, hits the poisoned entry, and misses the new exact-match
    vertex until an unrelated commit moves the key.
    """
    db = loaded_post_db
    config = ServeConfig(workers=2, enable_batching=False, enable_cache=True)
    q = rng.standard_normal(DIM).astype(np.float32)
    entered = threading.Event()
    release = threading.Event()

    def stalling_hook(tid, ops):
        # Registered after the embedding service's hook, so by the time
        # this runs the delta records for `tid` are appended (watermark
        # bumped) while store._last_tid still reads tid-1.
        entered.set()
        release.wait(timeout=30)

    db.store.register_embedding_hook(stalling_hook)
    telemetry = Telemetry()
    with use_telemetry(telemetry), db, QueryServer(db, config) as server:

        def commit():
            with db.begin() as txn:
                txn.upsert_vertex("Post", 900, {"language": "en", "length": 1})
                txn.set_embedding("Post", 900, "content_emb", q)

        committer = threading.Thread(target=commit)
        committer.start()
        assert entered.wait(timeout=10), "commit never reached the hook"
        # Served while the commit is wedged mid-publication: watermark
        # includes the commit, the pinned snapshot does not.
        during = server.search(["Post.content_emb"], q, 3)
        release.set()
        committer.join(timeout=30)
        assert not committer.is_alive()

        served_map, direct_map = MapAccum(), MapAccum()
        after = server.search(["Post.content_emb"], q, 3, distance_map=served_map)
        direct = db.vector_search(["Post.content_emb"], q, 3, distance_map=direct_map)
        vid_900 = db.store.vid_for_pk("Post", 900)
        assert ("Post", vid_900) not in during  # pre-commit view was correct
        assert ("Post", vid_900) in after, "stale cached top-k served post-commit"
        assert_same_topk(after, served_map, direct, direct_map, "post-commit probe")

    counters = telemetry.registry.snapshot()["counters"]
    assert counters.get("serve.cache_bypass_commit_race", 0) >= 1


@pytest.mark.slow
def test_concurrent_cached_searches_never_serve_stale_topk(loaded_post_db, rng):
    db = loaded_post_db
    config = ServeConfig(
        workers=3,
        enable_batching=True,
        enable_cache=True,
        batch_window_seconds=0.001,
        min_fused=2,
    )
    probes = rng.standard_normal((PROBES, DIM)).astype(np.float32)
    errors: list[BaseException] = []
    next_pk = 500

    def reader(server: QueryServer, stop: threading.Event) -> None:
        local = np.random.default_rng(threading.get_ident() % 2**16)
        count = 0
        while count < SEARCHES_PER_READER and not stop.is_set():
            q = probes[int(local.integers(PROBES))]
            try:
                server.search(["Post.content_emb"], q, 5)
            except ReproError as exc:  # typed failures are visible, not fatal
                errors.append(exc)
            count += 1

    with db, QueryServer(db, config) as server:
        for round_no in range(ROUNDS):
            stop = threading.Event()
            threads = [
                threading.Thread(target=reader, args=(server, stop))
                for _ in range(READERS)
            ]

            def writer() -> None:
                nonlocal next_pk
                with db.begin() as txn:
                    for probe_no in range(PROBES):
                        # A vertex sitting exactly on the probe becomes the
                        # definitive nearest neighbor — a stale cached top-k
                        # from before this commit cannot contain it.
                        txn.upsert_vertex(
                            "Post", next_pk, {"language": "en", "length": next_pk}
                        )
                        txn.set_embedding(
                            "Post", next_pk, "content_emb", probes[probe_no]
                        )
                        next_pk += 1
                    victim = int(rng.integers(200))
                    txn.set_embedding(
                        "Post", victim, "content_emb", rng.standard_normal(DIM)
                    )

            def vacuum() -> None:
                try:
                    db.vacuum()
                except ReproError as exc:
                    errors.append(exc)

            writer_thread = threading.Thread(target=writer)
            vacuum_thread = threading.Thread(target=vacuum)
            for t in [*threads, writer_thread, vacuum_thread]:
                t.start()
            writer_thread.join(timeout=60)
            vacuum_thread.join(timeout=60)
            for t in threads:
                t.join(timeout=60)
            stop.set()
            assert not writer_thread.is_alive() and not vacuum_thread.is_alive()
            assert not any(t.is_alive() for t in threads), "reader hung"

            # Quiescent check: the (possibly cached) served answer must match
            # a direct cold search on the same data.
            for probe_no, q in enumerate(probes):
                served_map, direct_map = MapAccum(), MapAccum()
                served = server.search(
                    ["Post.content_emb"], q, 5, distance_map=served_map
                )
                direct = db.vector_search(
                    ["Post.content_emb"], q, 5, distance_map=direct_map
                )
                assert_same_topk(
                    served, served_map, direct, direct_map,
                    f"probe {probe_no} round {round_no}",
                )

        stats = server.cache.stats()

    fatal = [e for e in errors if not isinstance(e, ReproError)]
    assert not fatal
    # The workload must actually exercise the cache: hits happen within a
    # round; commits/vacuum between rounds force misses.
    assert stats["misses"] > 0
