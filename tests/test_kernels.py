"""Equivalence suite for the metric-specialized distance-kernel layer.

Property-style checks that :class:`repro.index.kernels.DistanceKernel`
agrees with the straightforward formulations in :mod:`repro.types`
(``batch_distances`` / ``pairwise_distances``) within 1e-4 relative error
for every metric, including the awkward corners — zero vectors, dim-1
matrices, replaced rows in incremental binding mode — and that the fused
multi-query HNSW traversal returns exactly the per-query path's ids and
distances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.bruteforce import BruteForceIndex
from repro.index.hnsw import HNSWIndex
from repro.index.kernels import DistanceKernel
from repro.types import (
    Metric,
    batch_distances,
    batch_distances_multi,
    pairwise_distances,
)

METRICS = [Metric.L2, Metric.IP, Metric.COSINE]


def rel_err(got: np.ndarray, want: np.ndarray) -> float:
    got = np.asarray(got, dtype=np.float64)
    want = np.asarray(want, dtype=np.float64)
    denom = np.maximum(np.abs(want), 1.0)
    return float(np.max(np.abs(got - want) / denom)) if got.size else 0.0


def make_case(rng, n, dim, *, zeros=False):
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    if zeros and n >= 3:
        vectors[0] = 0.0
        vectors[n // 2] = 0.0
    return vectors


# --------------------------------------------------------------------------
# kernel vs batch_distances / pairwise_distances
# --------------------------------------------------------------------------


class TestKernelEquivalence:
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("dim", [1, 3, 16])
    @pytest.mark.parametrize("zeros", [False, True])
    def test_distances_match_batch_distances(self, rng, metric, dim, zeros):
        vectors = make_case(rng, 64, dim, zeros=zeros)
        kernel = DistanceKernel.for_matrix(vectors, metric)
        queries = rng.standard_normal((8, dim)).astype(np.float32)
        queries[0] = 0.0  # zero query: cosine distance defined as 1.0
        for q in queries:
            want = batch_distances(q, vectors, metric)
            ctx = kernel.query(q)
            got = kernel.distances_prefix(ctx, len(vectors))
            assert rel_err(got, want) <= 1e-4
            rows = np.arange(len(vectors), dtype=np.int64)
            assert rel_err(kernel.distances(ctx, rows), want) <= 1e-4
            for row in (0, len(vectors) // 2, len(vectors) - 1):
                assert rel_err(
                    [kernel.distance_one(ctx, row)], [want[row]]
                ) <= 1e-4

    @pytest.mark.parametrize("metric", METRICS)
    def test_multi_contexts_match_solo(self, rng, metric):
        vectors = make_case(rng, 40, 8, zeros=True)
        kernel = DistanceKernel.for_matrix(vectors, metric)
        queries = rng.standard_normal((5, 8)).astype(np.float32)
        queries[2] = 0.0
        mctx = kernel.queries(queries)
        fused = kernel.distances_multi_prefix(mctx, len(vectors))
        for qi, q in enumerate(queries):
            solo = kernel.distances_prefix(kernel.query(q), len(vectors))
            assert rel_err(fused[qi], solo) <= 1e-4

    @pytest.mark.parametrize("metric", METRICS)
    def test_pairwise_matches_pairwise_distances(self, rng, metric):
        vectors = make_case(rng, 24, 6, zeros=True)
        kernel = DistanceKernel.for_matrix(vectors, metric)
        rows = np.arange(len(vectors), dtype=np.int64)
        want = pairwise_distances(vectors, vectors, metric)
        assert rel_err(kernel.pairwise(rows), want) <= 1e-4

    @pytest.mark.parametrize("metric", METRICS)
    def test_cross_matches_batch_distances_multi(self, rng, metric):
        vectors = make_case(rng, 32, 5, zeros=True)
        kernel = DistanceKernel.for_matrix(vectors, metric)
        queries = rng.standard_normal((7, 5)).astype(np.float32)
        want = batch_distances_multi(queries, vectors, metric)
        assert rel_err(kernel.cross(queries), want) <= 1e-4

    @pytest.mark.parametrize("metric", METRICS)
    def test_replaced_rows_incremental_binding(self, rng, metric):
        """set_row/set_rows keep the cache equal to a from-scratch rebuild."""
        vectors = make_case(rng, 20, 4)
        kernel = DistanceKernel(metric, vectors.copy(), precompute=True)
        # Replace a few rows (one with a zero vector) through the owner's
        # mutation protocol, exactly like BruteForceIndex.update_items.
        replacements = {3: rng.standard_normal(4).astype(np.float32),
                        7: np.zeros(4, dtype=np.float32),
                        19: rng.standard_normal(4).astype(np.float32)}
        current = vectors.copy()
        for row, vec in replacements.items():
            current[row] = vec
            kernel._vectors[row] = vec
            kernel.set_row(row, vec)
        q = rng.standard_normal(4).astype(np.float32)
        want = batch_distances(q, current, metric)
        got = kernel.distances_prefix(kernel.query(q), len(current))
        assert rel_err(got, want) <= 1e-4
        # Bit-identity with a bulk-rebuilt kernel over the same data: the
        # incremental and precomputed paths share one reduction order.
        rebuilt = DistanceKernel.for_matrix(current, metric)
        np.testing.assert_array_equal(
            kernel._aug[: len(current)], rebuilt._aug
        )

    @pytest.mark.parametrize("metric", METRICS)
    def test_rank_to_true_round_trip(self, rng, metric):
        vectors = make_case(rng, 16, 3, zeros=True)
        kernel = DistanceKernel.for_matrix(vectors, metric)
        q = rng.standard_normal(3).astype(np.float32)
        ctx = kernel.query(q)
        rows = np.arange(len(vectors), dtype=np.int64)
        rank = kernel.rank(ctx, rows)
        true = kernel.to_true(ctx, rank)
        # Rank distances preserve order; to_true restores values.
        assert list(np.argsort(rank, kind="stable")) == list(
            np.argsort(true, kind="stable")
        )
        assert rel_err(true, batch_distances(q, vectors, metric)) <= 1e-4
        if metric is Metric.L2:
            assert float(true.min()) >= 0.0


# --------------------------------------------------------------------------
# index backends route through the kernel and stay exact
# --------------------------------------------------------------------------


class TestBackendEquivalence:
    @pytest.mark.parametrize("metric", METRICS)
    def test_bruteforce_matches_oracle(self, rng, metric):
        dim = 6
        vectors = make_case(rng, 50, dim, zeros=True)
        index = BruteForceIndex(dim=dim, metric=metric)
        index.update_items(list(range(50)), vectors)
        # Replace some rows and delete one (exercises set_row + swap-remove).
        index.update_items([4, 9], rng.standard_normal((2, dim)).astype(np.float32))
        index.delete_items([17])
        q = rng.standard_normal(dim).astype(np.float32)
        result = index.topk_search(q, 10)
        live = {i: index.get_embedding(i) for i in range(50) if i != 17}
        ids = list(live)
        want = batch_distances(q, np.stack([live[i] for i in ids]), metric)
        oracle = sorted(zip(want.tolist(), ids))[:10]
        assert list(result.ids) == [i for _, i in oracle]
        assert rel_err(result.distances, [d for d, _ in oracle]) <= 1e-4


# --------------------------------------------------------------------------
# fused multi-query HNSW == per-query HNSW
# --------------------------------------------------------------------------


def build_hnsw(rng, metric, n=300, dim=12, **kwargs):
    index = HNSWIndex(dim=dim, metric=metric, M=8, ef_construction=64, seed=5, **kwargs)
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    index.update_items(list(range(n)), vectors)
    return index, vectors


class TestFusedTraversalIdentity:
    @pytest.mark.parametrize("metric", METRICS)
    def test_fused_ids_and_distances_equal_per_query(self, rng, metric):
        index, _ = build_hnsw(rng, metric)
        queries = rng.standard_normal((70, 12)).astype(np.float32)  # > chunk
        fused = index.topk_search_multi(queries, 5, ef=32)
        for q, got in zip(queries, fused):
            want = index.topk_search(q, 5, ef=32)
            assert list(got.ids) == list(want.ids)
            np.testing.assert_array_equal(got.distances, want.distances)

    def test_fused_with_filters_and_deletes(self, rng):
        index, _ = build_hnsw(rng, Metric.L2)
        index.delete_items(list(range(0, 300, 7)))

        def filter_fn(ext_id: int) -> bool:
            return ext_id % 3 != 0

        queries = rng.standard_normal((9, 12)).astype(np.float32)
        fused = index.topk_search_multi(queries, 4, ef=48, filter_fn=filter_fn)
        for q, got in zip(queries, fused):
            want = index.topk_search(q, 4, ef=48, filter_fn=filter_fn)
            assert list(got.ids) == list(want.ids)
            np.testing.assert_array_equal(got.distances, want.distances)
        assert all(int(i) % 3 != 0 for r in fused for i in r.ids)

    def test_fused_dim1_zero_query_cosine(self, rng):
        index = HNSWIndex(dim=1, metric=Metric.COSINE, M=4, ef_construction=16, seed=3)
        vectors = rng.standard_normal((20, 1)).astype(np.float32)
        vectors[5] = 0.0
        index.update_items(list(range(20)), vectors)
        queries = np.vstack([
            rng.standard_normal((3, 1)).astype(np.float32),
            np.zeros((1, 1), dtype=np.float32),
        ])
        fused = index.topk_search_multi(queries, 3)
        for q, got in zip(queries, fused):
            want = index.topk_search(q, 3)
            assert list(got.ids) == list(want.ids)
            np.testing.assert_array_equal(got.distances, want.distances)


# --------------------------------------------------------------------------
# fused store path == per-query store path (explicit ef)
# --------------------------------------------------------------------------


class TestSegmentMultiIdentity:
    def test_search_segment_multi_equals_solo(self, loaded_post_db, rng):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        queries = rng.standard_normal((6, 16)).astype(np.float32)
        with db.snapshot() as snap:
            for seg_no in range(store.num_segments):
                multi = store.search_segment_multi(
                    seg_no, queries, 5, snapshot_tid=snap.tid, ef=40
                )
                for q, got in zip(queries, multi):
                    want = store.search_segment(
                        seg_no, q, 5, snapshot_tid=snap.tid, ef=40
                    )
                    assert got.offsets == want.offsets
                    assert got.distances == want.distances

    def test_search_segment_multi_sees_overlay(self, loaded_post_db, rng):
        db = loaded_post_db
        probe = rng.standard_normal(16).astype(np.float32)
        with db.begin() as txn:
            txn.upsert_vertex("Post", 321, {"language": "en", "length": 1})
            txn.set_embedding("Post", 321, "content_emb", probe)
        store = db.service.store("Post", "content_emb")
        vid = db.vid_for("Post", 321)
        queries = np.stack([probe, rng.standard_normal(16).astype(np.float32)])
        with db.snapshot() as snap:
            seg_no = vid // store.segment_size
            multi = store.search_segment_multi(
                seg_no, queries, 3, snapshot_tid=snap.tid, ef=40
            )
        offset = vid % store.segment_size
        assert multi[0].offsets[0] == offset
        assert multi[0].distances[0] == pytest.approx(0.0, abs=1e-5)
