"""Tests for the cluster simulation: machines, network, coordinator, loadgen."""

import pytest

from repro.cluster import (
    ClosedLoopLoadGenerator,
    ClusterSimulator,
    NEPTUNE_1024_MNCU,
    NetworkModel,
    TIGERVECTOR_N2D,
    make_cluster,
)
from repro.errors import ClusterError


class TestMachines:
    def test_round_robin_placement(self):
        machines = make_cluster(3, 10)
        assert [len(m.segments) for m in machines] == [4, 3, 3]
        assert machines[0].segments == [0, 3, 6, 9]

    def test_invalid_config(self):
        with pytest.raises(ClusterError):
            make_cluster(0, 4)

    def test_default_cores_match_paper_hardware(self):
        machines = make_cluster(1, 1)
        assert machines[0].cores == 32  # n2d-standard-32


class TestNetworkModel:
    def test_transfer_includes_latency_and_bandwidth(self):
        net = NetworkModel(latency_seconds=1e-4, bandwidth_bytes_per_second=1e9)
        assert net.transfer_seconds(0) == pytest.approx(1e-4)
        assert net.transfer_seconds(10**9) == pytest.approx(1.0 + 1e-4)

    def test_payload_sizes(self):
        net = NetworkModel()
        assert net.query_dispatch_bytes(128) == 4 * 128 + 128
        assert net.result_bytes(10) == 12 * 10 + 64


class TestCosts:
    def test_paper_cost_ratio(self):
        """Sec 6.2: Neptune hardware is 22.42x more expensive."""
        ratio = NEPTUNE_1024_MNCU.cost_ratio(TIGERVECTOR_N2D)
        assert ratio == pytest.approx(22.42, rel=0.01)

    def test_cost_per_million_queries(self):
        cost = TIGERVECTOR_N2D.dollars_per_million_queries(1000.0)
        assert cost == pytest.approx(1.37 / 3.6, rel=1e-6)
        assert TIGERVECTOR_N2D.dollars_per_million_queries(0) == float("inf")


class TestClusterSimulator:
    def segment_times(self, num_segments, each=0.001):
        return {seg: each for seg in range(num_segments)}

    def test_single_machine_trace(self):
        sim = ClusterSimulator(make_cluster(1, 4, cores=4))
        trace = sim.trace(self.segment_times(4))
        # 4 segments x 1ms on 4 cores ~ 1ms + overheads, no network
        assert 0.001 < trace.total_seconds < 0.002
        assert trace.network_seconds == 0.0

    def test_more_machines_cut_latency(self):
        times = self.segment_times(16, each=0.002)
        lat = []
        for n in (1, 2, 4):
            sim = ClusterSimulator(make_cluster(n, 16, cores=2))
            lat.append(sim.trace(times).total_seconds)
        assert lat[0] > lat[1] > lat[2]

    def test_network_hop_charged_for_workers_only(self):
        times = self.segment_times(2, each=0.001)
        sim = ClusterSimulator(make_cluster(2, 2, cores=4))
        trace = sim.trace(times)
        assert trace.network_seconds > 0

    def test_concurrent_requests_queue(self):
        sim = ClusterSimulator(make_cluster(1, 1, cores=1))
        times = {0: 0.01}
        first = sim.simulate_request(0.0, times)
        second = sim.simulate_request(0.0, times)
        assert second > first  # one core: the second request waits

    def test_reset_clears_queues(self):
        sim = ClusterSimulator(make_cluster(1, 1, cores=1))
        times = {0: 0.01}
        a = sim.simulate_request(0.0, times)
        sim.reset()
        b = sim.simulate_request(0.0, times)
        assert a == pytest.approx(b)

    def test_needs_machines(self):
        with pytest.raises(ClusterError):
            ClusterSimulator([])


class TestLoadGenerator:
    def test_throughput_scales_with_machines(self):
        """The fig-9 mechanism: doubling machines nearly doubles QPS."""
        times = [{seg: 0.004 for seg in range(16)}]
        qps = []
        for n in (1, 2, 4):
            sim = ClusterSimulator(make_cluster(n, 16, cores=8))
            gen = ClosedLoopLoadGenerator(sim, connections=64)
            qps.append(gen.run(times, duration_seconds=2.0).qps)
        assert 1.5 < qps[1] / qps[0] <= 2.2
        assert 1.5 < qps[2] / qps[1] <= 2.2

    def test_latency_percentiles_ordered(self):
        sim = ClusterSimulator(make_cluster(2, 8, cores=4))
        gen = ClosedLoopLoadGenerator(sim, connections=16)
        out = gen.run([{seg: 0.001 for seg in range(8)}], duration_seconds=1.0)
        assert out.p50_latency_seconds <= out.p99_latency_seconds
        assert out.completed > 0
        assert out.qps > 0

    def test_needs_samples(self):
        sim = ClusterSimulator(make_cluster(1, 1))
        gen = ClosedLoopLoadGenerator(sim, connections=1)
        with pytest.raises(ClusterError):
            gen.run([], duration_seconds=0.1)

    def test_needs_connections(self):
        sim = ClusterSimulator(make_cluster(1, 1))
        with pytest.raises(ClusterError):
            ClosedLoopLoadGenerator(sim, connections=0)

    def test_samples_cycled(self):
        """Alternating cheap/expensive samples -> intermediate mean latency."""
        sim = ClusterSimulator(make_cluster(1, 1, cores=4))
        gen = ClosedLoopLoadGenerator(sim, connections=1)
        cheap = {0: 0.001}
        costly = {0: 0.009}
        out = gen.run([cheap, costly], duration_seconds=1.0)
        assert 0.002 < out.mean_latency_seconds < 0.008


class TestDistributedSearcher:
    def test_results_invariant_to_machine_count(self, loaded_post_db):
        """Local top-k + global merge equals the single-machine answer."""
        from repro.core.distributed import DistributedSearcher

        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        q = db._test_vectors[33]
        with db.snapshot() as snap:
            results = []
            for machines in (1, 2, 4):
                searcher = DistributedSearcher(store, machines)
                out = searcher.search(q, 5, snapshot_tid=snap.tid, ef=128)
                results.append(out.result.ids.tolist())
        assert results[0] == results[1] == results[2]

    def test_measures_per_segment_times(self, loaded_post_db):
        from repro.core.distributed import DistributedSearcher

        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        with db.snapshot() as snap:
            searcher = DistributedSearcher(store, 2)
            out = searcher.search(db._test_vectors[0], 5, snapshot_tid=snap.tid)
        assert set(out.segment_seconds) == {0, 1, 2, 3}
        assert all(t > 0 for t in out.segment_seconds.values())
        assert set(out.per_machine_seconds) == {0, 1}
