"""Tests for the vector delta store and the two-stage vacuum."""

import numpy as np
import pytest

from repro.core.delta import DELETE, UPSERT, DeltaFile, DeltaRecord, DeltaStore
from repro.core.vacuum import tune_merge_threads
from repro.errors import ReproError


def rec(action, vid, tid, dim=4):
    vector = np.full(dim, float(vid), dtype=np.float32) if action == UPSERT else None
    return DeltaRecord(action, vid, tid, vector)


class TestDeltaRecord:
    def test_schema_fields(self):
        r = rec(UPSERT, 3, 7)
        assert (r.action, r.vid, r.tid) == (UPSERT, 3, 7)
        assert r.vector is not None

    def test_upsert_requires_vector(self):
        with pytest.raises(ReproError):
            DeltaRecord(UPSERT, 1, 1, None)

    def test_invalid_action(self):
        with pytest.raises(ReproError):
            DeltaRecord("frobnicate", 1, 1, None)


class TestDeltaStore:
    def test_append_and_window(self):
        store = DeltaStore()
        store.append([rec(UPSERT, 1, 1), rec(UPSERT, 2, 2), rec(DELETE, 1, 3)])
        assert len(store) == 3
        window = store.records_between(1, 2)
        assert [r.tid for r in window] == [2]
        assert store.max_tid == 3

    def test_tid_order_enforced(self):
        store = DeltaStore()
        store.append([rec(UPSERT, 1, 5)])
        with pytest.raises(ReproError):
            store.append([rec(UPSERT, 2, 3)])

    def test_cut_detaches_prefix(self):
        store = DeltaStore()
        store.append([rec(UPSERT, i, i + 1) for i in range(5)])
        dfile = store.cut(3)
        assert dfile is not None
        assert [r.tid for r in dfile] == [1, 2, 3]
        assert dfile.from_tid == 0 and dfile.to_tid == 3
        assert len(store) == 2
        assert store.flushed_tid == 3

    def test_cut_nothing_new(self):
        store = DeltaStore()
        store.append([rec(UPSERT, 1, 1)])
        assert store.cut(1) is not None
        assert store.cut(1) is None

    def test_cut_empty_window_advances_tid(self):
        store = DeltaStore()
        assert store.cut(10) is None
        assert store.flushed_tid == 10


class TestDeltaFile:
    def test_save_load_roundtrip(self, tmp_path):
        dfile = DeltaFile([rec(UPSERT, 1, 1), rec(DELETE, 2, 2)], 0, 2)
        path = tmp_path / "x.delta"
        dfile.save(path)
        loaded = DeltaFile.load(path)
        assert len(loaded) == 2
        assert loaded.from_tid == 0 and loaded.to_tid == 2
        assert loaded.records[0].action == UPSERT
        assert np.allclose(loaded.records[0].vector, 1.0)
        assert loaded.records[1].vector is None


class TestThreadTuning:
    def test_idle_machine_uses_all_threads(self):
        assert tune_merge_threads(0.0, max_threads=8) == 8

    def test_busy_machine_backs_off(self):
        assert tune_merge_threads(0.9, max_threads=8) == 1

    def test_half_busy(self):
        assert tune_merge_threads(0.5, max_threads=8) == 4

    def test_always_at_least_one(self):
        assert tune_merge_threads(1.0, max_threads=16) == 1

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            tune_merge_threads(1.5)


class TestVacuumEndToEnd:
    def test_two_stage_vacuum(self, loaded_post_db):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        # new updates since the fixture's vacuum
        with db.begin() as txn:
            txn.set_embedding("Post", 0, "content_emb", np.ones(16, np.float32))
            txn.set_embedding("Post", 1, "content_emb", np.ones(16, np.float32) * 2)
        assert len(store.delta_store) == 2
        flushed = db.vacuum_manager.delta_merge(store)
        assert flushed == 2
        assert len(store.delta_files) == 1
        assert len(store.delta_store) == 0
        merged = db.vacuum_manager.index_merge(store)
        assert merged == 2
        assert store.delta_files == []
        # the merged value is served from the index snapshot now
        assert np.allclose(store.get_embedding(db.vid_for("Post", 0)), 1.0)

    def test_vacuum_stats(self, loaded_post_db):
        db = loaded_post_db
        with db.begin() as txn:
            txn.set_embedding("Post", 5, "content_emb", np.zeros(16, np.float32))
        db.vacuum()
        stats = db.vacuum_manager.stats
        assert stats.delta_merges >= 1
        assert stats.index_merges >= 1
        assert stats.records_merged >= 1
        assert stats.snapshots_installed >= 1

    def test_spill_to_disk(self, tmp_path, rng):
        from tests.conftest import make_post_db

        db = make_post_db()
        db.vacuum_manager.spill_dir = tmp_path
        with db.begin() as txn:
            txn.upsert_vertex("Post", 1, {})
            txn.set_embedding("Post", 1, "content_emb", rng.standard_normal(16))
        store = db.service.store("Post", "content_emb")
        db.vacuum_manager.delta_merge(store)
        spilled = list(tmp_path.glob("*.delta"))
        assert len(spilled) == 1
        db.vacuum_manager.index_merge(store)
        assert list(tmp_path.glob("*.delta")) == []  # consumed and removed
        db.close()

    def test_old_snapshot_still_readable_during_merge(self, loaded_post_db):
        db = loaded_post_db
        vectors = db._test_vectors
        snap = db.snapshot()  # pin the pre-update state
        with db.begin() as txn:
            txn.set_embedding("Post", 0, "content_emb", np.ones(16, np.float32) * 9)
        db.vacuum()
        store = db.service.store("Post", "content_emb")
        vid = db.vid_for("Post", 0)
        old = store.get_embedding(vid, snapshot_tid=snap.tid)
        assert np.allclose(old, vectors[0])
        new = store.get_embedding(vid)
        assert np.allclose(new, 9.0)
        snap.release()

    def test_background_vacuum_threads(self, loaded_post_db):
        import time

        db = loaded_post_db
        db.vacuum_manager.start(delta_interval=0.01, index_interval=0.02)
        try:
            with db.begin() as txn:
                txn.set_embedding("Post", 3, "content_emb", np.ones(16, np.float32))
            store = db.service.store("Post", "content_emb")
            deadline = time.time() + 5.0
            while time.time() < deadline and store.pending_delta_count() > 0:
                time.sleep(0.02)
            assert store.pending_delta_count() == 0
        finally:
            db.vacuum_manager.stop()
