"""Unit tests for the fault-injection harness (repro.faults) and the
durability-side crash machinery (torn WAL tails, mid-commit failpoints)."""

import json

import pytest

from repro import Attribute, AttrType, GraphSchema, Metric
from repro.errors import (
    FaultInjectionError,
    SimulatedCrash,
    WALCorruptionError,
)
from repro.faults import CircuitBreaker, FaultInjector, FaultPlan, ResiliencePolicy
from repro.graph.storage import GraphStore
from repro.graph.wal import WriteAheadLog


def make_schema():
    schema = GraphSchema()
    schema.create_vertex_type(
        "Person",
        [
            Attribute("id", AttrType.INT, primary_key=True),
            Attribute("name", AttrType.STRING),
        ],
    )
    schema.create_edge_type("knows", "Person", "Person")
    schema.add_embedding_attribute("Person", "emb", dimension=4, metric=Metric.L2)
    return schema


class TestFaultPlan:
    def test_crash_needs_a_clock(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan().crash(machine_id=1)

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan().straggle(0, factor=0.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan().degrade_network(drop_probability=1.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan().crash_commit(1, mode="halt-and-catch-fire")
        with pytest.raises(FaultInjectionError):
            FaultPlan().crash_commit(1, torn_fraction=1.0)

    def test_builder_chains(self):
        plan = (
            FaultPlan(seed=3)
            .crash(1, at=0.5, recover_at=1.0)
            .straggle(2, factor=4.0)
            .fail_segment(0, failures=2)
        )
        assert len(plan.crashes) == 1
        assert len(plan.stragglers) == 1
        assert plan.segment_faults[0].failures == 2

    def test_random_plan_is_reproducible(self):
        a = FaultPlan.random(seed=11, num_machines=4, num_segments=16)
        b = FaultPlan.random(seed=11, num_machines=4, num_segments=16)
        assert a == b
        c = FaultPlan.random(seed=12, num_machines=4, num_segments=16)
        assert a != c

    def test_random_crash_windows_are_serialized(self):
        plan = FaultPlan.random(seed=5, num_machines=4, num_segments=8, crashes=3)
        windows = sorted((f.at, f.recover_at) for f in plan.crashes)
        for (_, end), (start, _) in zip(windows, windows[1:]):
            assert end <= start  # one machine down at a time


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown=10.0)
        assert not breaker.record_failure(1, now=0.0)
        assert not breaker.record_failure(1, now=0.0)
        assert breaker.record_failure(1, now=0.0)  # newly opened
        assert not breaker.allow(1, now=1.0)
        assert breaker.open_machines() == [1]

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(threshold=1, cooldown=5.0)
        breaker.record_failure(2, now=0.0)
        assert not breaker.allow(2, now=4.9)
        assert breaker.allow(2, now=5.0)  # half-open probe
        breaker.record_success(2)
        assert breaker.state(2) == "closed"

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=5.0)
        breaker.record_failure(2, now=0.0)
        assert breaker.allow(2, now=6.0)
        breaker.record_failure(2, now=6.0)  # probe fails
        assert not breaker.allow(2, now=10.9)  # fresh cooldown from t=6
        assert breaker.allow(2, now=11.0)

    def test_success_clears_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown=1.0)
        breaker.record_failure(3, now=0.0)
        breaker.record_success(3)
        assert not breaker.record_failure(3, now=0.0)  # streak restarted

    def test_reset_readmits(self):
        breaker = CircuitBreaker(threshold=1, cooldown=100.0)
        breaker.record_failure(1, now=0.0)
        breaker.reset(1)
        assert breaker.allow(1, now=0.0)


class TestInjectorDeterminism:
    def test_segment_faults_consumed_in_order(self):
        injector = FaultInjector(FaultPlan().fail_segment(3, failures=2))
        assert injector.segment_attempt_fails(3, 0, 0)
        assert injector.segment_attempt_fails(3, 1, 1)
        assert not injector.segment_attempt_fails(3, 0, 2)
        assert [e.kind for e in injector.trace] == ["segment-fault", "segment-fault"]

    def test_machine_scoped_segment_fault(self):
        injector = FaultInjector(FaultPlan().fail_segment(1, failures=1, machine_id=7))
        assert not injector.segment_attempt_fails(1, 0, 0)  # other machine
        assert injector.segment_attempt_fails(1, 7, 0)

    def test_raise_segment_fault(self):
        injector = FaultInjector(FaultPlan().fail_segment(0))
        with pytest.raises(FaultInjectionError):
            injector.raise_segment_fault(0, machine_id=2, attempt=0)
        injector.raise_segment_fault(0, machine_id=2, attempt=1)  # drained

    def test_identical_seeds_identical_drop_sequences(self):
        plan = FaultPlan(seed=21).degrade_network(drop_probability=0.5)
        a = FaultInjector(plan)
        b = FaultInjector(FaultPlan(seed=21).degrade_network(drop_probability=0.5))
        seq_a = [a.drop_dispatch(1, now=0.1) for _ in range(50)]
        seq_b = [b.drop_dispatch(1, now=0.1) for _ in range(50)]
        assert seq_a == seq_b
        assert a.trace == b.trace

    def test_slowdown_window(self):
        injector = FaultInjector(FaultPlan().straggle(2, factor=8.0, start=1.0, end=2.0))
        assert injector.slowdown(2, now=0.5) == 1.0
        assert injector.slowdown(2, now=1.5) == 8.0
        assert injector.slowdown(2, now=2.5) == 1.0
        assert injector.slowdown(1, now=1.5) == 1.0
        # announced exactly once despite repeated queries
        assert injector.trace_kinds().count("straggle") == 1


class TestTornWalReplay:
    def test_torn_tail_tolerated_and_truncated(self, tmp_path, caplog):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(1, [("upsert_vertex", "V", 1, {"x": 1})])
            wal.append(2, [("upsert_vertex", "V", 2, {"x": 2})])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"tid": 3, "ops": [["upsert_ver')  # torn mid-append
        with caplog.at_level("WARNING", logger="repro.graph.wal"):
            replayed = list(WriteAheadLog(path).replay())
        assert [tid for tid, _ in replayed] == [1, 2]
        assert any("torn trailing record" in r.message for r in caplog.records)
        # the torn bytes are physically gone: next append starts clean
        with WriteAheadLog(path) as wal:
            wal.append(3, [("upsert_vertex", "V", 3, {"x": 3})])
        assert [tid for tid, _ in WriteAheadLog(path).replay()] == [1, 2, 3]

    def test_mid_file_corruption_refused(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(1, [("noop",)])
            wal.append(2, [("noop",)])
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:10]  # corrupt a *committed* record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WALCorruptionError):
            list(WriteAheadLog(path).replay())

    def test_non_dict_record_is_torn(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(1, [("noop",)])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("42\n")  # valid JSON, not a record
        assert [tid for tid, _ in WriteAheadLog(path).replay()] == [1]

    def test_arm_torn_write_tears_and_crashes(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path)
        wal.append(1, [("noop",)])
        wal.arm_torn_write(fraction=0.4)
        with pytest.raises(SimulatedCrash):
            wal.append(2, [("upsert_vertex", "V", 9, {"x": 9})])
        wal.close()
        raw = path.read_text()
        assert raw.count("\n") == 1  # torn record has no newline
        assert [tid for tid, _ in WriteAheadLog(path).replay()] == [1]

    def test_arm_torn_write_validation(self):
        wal = WriteAheadLog()
        with pytest.raises(ValueError):
            wal.arm_torn_write(fraction=0.0)

    def test_memory_log_torn_write_loses_record(self):
        wal = WriteAheadLog()
        wal.append(1, [("noop",)])
        wal.arm_torn_write()
        with pytest.raises(SimulatedCrash):
            wal.append(2, [("noop",)])
        assert [tid for tid, _ in wal.replay()] == [1]


class TestMidCommitCrashRecovery:
    def _commit_one(self, store, pk, name):
        with store.begin() as txn:
            txn.upsert_vertex("Person", pk, {"name": name})

    def test_torn_wal_crash_recovers_to_previous_commit(self, tmp_path):
        """Crash mid-append: the transaction never committed."""
        wal_path = tmp_path / "store.wal"
        store = GraphStore(make_schema(), segment_size=4, wal_path=wal_path)
        injector = FaultInjector(FaultPlan().crash_commit(at_commit=2, mode="torn-wal"))
        injector.install_commit_faults(store)
        self._commit_one(store, 1, "alice")
        with pytest.raises(SimulatedCrash):
            with store.begin() as txn:
                txn.upsert_vertex("Person", 2, {"name": "bob"})
                txn.commit()
        store.wal.close()  # the process is dead; recover from disk
        recovered = GraphStore.recover(make_schema(), wal_path, segment_size=4)
        assert recovered.last_tid == 1
        with recovered.snapshot() as snap:
            assert snap.vid_for_pk("Person", 1) is not None
            assert snap.vid_for_pk("Person", 2) is None
        assert "commit-crash" in injector.trace_kinds()

    def test_mid_apply_crash_recovers_full_transaction(self, tmp_path):
        """Crash after the WAL append: the transaction IS durable, even if
        the dying process only applied part of it in memory."""
        wal_path = tmp_path / "store.wal"
        store = GraphStore(make_schema(), segment_size=4, wal_path=wal_path)
        injector = FaultInjector(
            FaultPlan().crash_commit(at_commit=2, mode="mid-apply", after_ops=1)
        )
        injector.install_commit_faults(store)
        self._commit_one(store, 1, "alice")
        with pytest.raises(SimulatedCrash):
            with store.begin() as txn:
                txn.upsert_vertex("Person", 2, {"name": "bob"})
                txn.upsert_vertex("Person", 3, {"name": "carol"})
                txn.commit()
        store.wal.close()
        recovered = GraphStore.recover(make_schema(), wal_path, segment_size=4)
        assert recovered.last_tid == 2
        with recovered.snapshot() as snap:
            assert snap.get_attr(
                "Person", snap.vid_for_pk("Person", 2), "name"
            ) == "bob"
            assert snap.get_attr(
                "Person", snap.vid_for_pk("Person", 3), "name"
            ) == "carol"

    def test_post_wal_crash_recovers_full_transaction(self, tmp_path):
        wal_path = tmp_path / "store.wal"
        store = GraphStore(make_schema(), segment_size=4, wal_path=wal_path)
        injector = FaultInjector(FaultPlan().crash_commit(at_commit=1, mode="post-wal"))
        injector.install_commit_faults(store)
        with pytest.raises(SimulatedCrash):
            with store.begin() as txn:
                txn.upsert_vertex("Person", 7, {"name": "dora"})
                txn.commit()
        store.wal.close()
        recovered = GraphStore.recover(make_schema(), wal_path, segment_size=4)
        assert recovered.last_tid == 1
        with recovered.snapshot() as snap:
            assert snap.vid_for_pk("Person", 7) is not None

    def test_recovery_is_idempotent_across_repeated_crashes(self, tmp_path):
        wal_path = tmp_path / "store.wal"
        store = GraphStore(make_schema(), segment_size=4, wal_path=wal_path)
        injector = FaultInjector(FaultPlan().crash_commit(at_commit=3, mode="torn-wal"))
        injector.install_commit_faults(store)
        self._commit_one(store, 1, "a")
        self._commit_one(store, 2, "b")
        with pytest.raises(SimulatedCrash):
            self._commit_one(store, 3, "c")
        store.wal.close()
        once = GraphStore.recover(make_schema(), wal_path, segment_size=4)
        once.wal.close()
        twice = GraphStore.recover(make_schema(), wal_path, segment_size=4)
        assert twice.last_tid == once.last_tid == 2
        with twice.snapshot() as snap:
            assert snap.count("Person") == 2

    def test_torn_record_equivalence_with_clean_history(self, tmp_path):
        """Recovered state is byte-equivalent to never having started the
        torn transaction: the WAL files match after truncation."""
        crashed_path = tmp_path / "crashed.wal"
        clean_path = tmp_path / "clean.wal"
        crashed = GraphStore(make_schema(), segment_size=4, wal_path=crashed_path)
        clean = GraphStore(make_schema(), segment_size=4, wal_path=clean_path)
        injector = FaultInjector(FaultPlan().crash_commit(at_commit=2, mode="torn-wal"))
        injector.install_commit_faults(crashed)
        for store in (crashed, clean):
            with store.begin() as txn:
                txn.upsert_vertex("Person", 1, {"name": "a"})
        with pytest.raises(SimulatedCrash):
            self._commit_one(crashed, 2, "b")
        crashed.wal.close()
        clean.wal.close()
        list(WriteAheadLog(crashed_path).replay())  # triggers truncation
        assert crashed_path.read_bytes() == clean_path.read_bytes()
        assert json.loads(crashed_path.read_text().splitlines()[0])["tid"] == 1
