"""Tests for repro.elastic: the sharded, consistent-hash-routed serve tier.

Covers the acceptance contracts of the elastic PR:

- the consistent-hash ring: deterministic ownership, key-distribution
  uniformity bounds, minimal key movement on join/leave, pins, and the
  bounded-load assignment cap;
- byte identity: sharded partials merged by ``merge_sharded_topk`` equal
  ``vector_search_merged`` for every partition of the group universe, and
  an :class:`ElasticTier` (1 or N servers) answers exactly like a single
  ``QueryServer`` / direct ``db.vector_search``;
- live rebalancing: drain-at-a-TID handoff records, ownership movement,
  identity preserved under moves, scale out/in migration;
- replica-coherent caching: a commit advances the watermark vector, so
  no replica can serve a pre-commit partial for a post-commit request;
- the telemetry-driven autoscaler's decision debouncing;
- EDF dequeue within a tenant (satellite): fewer deadline misses than
  FIFO at equal throughput, ``serve.deadline_reorders`` accounting, and
  untouched cross-tenant fairness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core.search import (
    merge_sharded_topk,
    vector_search_merged,
    vector_search_sharded,
)
from repro.elastic import (
    AutoscalePolicy,
    Autoscaler,
    ConsistentHashRing,
    ElasticTier,
    ShardServer,
    SimulatedElasticServe,
)
from repro.errors import ElasticError, SegmentOwnershipError, ServeError
from repro.graph.accumulators import MapAccum
from repro.serve import QueryServer, ServeConfig, Tenant, TenantRegistry, WeightedFairQueue
from repro.telemetry import Telemetry, use_telemetry

ATTR = "Post.content_emb"
DIM = 16


def members(vset):
    return sorted(vset)


def direct(db, query, k):
    dmap = MapAccum()
    vset = db.vector_search([ATTR], query, k, distance_map=dmap)
    return members(vset), dict(dmap.items())


def merged_triples(db, query, k):
    """Direct-path ordered (dist, vtype, vid) triples — the byte-identity oracle."""
    with db.snapshot() as snapshot:
        return list(
            vector_search_merged(db.service, snapshot, [ATTR], query, k)
        )


# --------------------------------------------------------------------------
# consistent-hash ring properties (satellite 2)
# --------------------------------------------------------------------------


class TestRingBasics:
    def test_owner_deterministic(self):
        ring = ConsistentHashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        owners = [ring.owner("default", g) for g in range(20)]
        again = ConsistentHashRing()
        for name in ("c", "a", "b"):  # insertion order must not matter
            again.add(name)
        assert owners == [again.owner("default", g) for g in range(20)]

    def test_empty_ring_raises(self):
        ring = ConsistentHashRing()
        with pytest.raises(ElasticError):
            ring.owner("default", 0)

    def test_add_is_idempotent(self):
        ring = ConsistentHashRing(vnodes=8)
        ring.add("a")
        ring.add("a")
        assert len(ring) == 1
        assert ring.servers() == ["a"]

    def test_pin_overrides_and_dissolves(self):
        ring = ConsistentHashRing()
        ring.add("a")
        ring.add("b")
        hash_owner = ring.hash_owner("default", 7)
        other = "a" if hash_owner == "b" else "b"
        ring.pin("default", 7, other)
        assert ring.owner("default", 7) == other
        assert ring.hash_owner("default", 7) == hash_owner
        # Pinning back to the hash owner drops the override entirely.
        ring.pin("default", 7, hash_owner)
        assert ring.pins() == {}
        # A pin to a departed server dissolves to hash ownership.
        ring.pin("default", 7, other)
        ring.remove(other)
        assert ring.pins() == {}
        assert ring.owner("default", 7) == "a" if other == "b" else "b"

    def test_pin_unknown_server_raises(self):
        ring = ConsistentHashRing()
        ring.add("a")
        with pytest.raises(ElasticError):
            ring.pin("default", 0, "ghost")


class TestRingDistribution:
    """Property tests: uniformity bounds and minimal movement."""

    NUM_KEYS = 3000

    def test_key_distribution_uniformity(self):
        servers = [f"s{i}" for i in range(4)]
        ring = ConsistentHashRing(vnodes=96)
        for name in servers:
            ring.add(name)
        counts = dict.fromkeys(servers, 0)
        for group in range(self.NUM_KEYS):
            counts[ring.owner("default", group)] += 1
        share = {name: counts[name] / self.NUM_KEYS for name in servers}
        # 96 vnodes/server keeps raw hash shares well inside [1/2n, 2/n].
        for name in servers:
            assert 1 / (2 * len(servers)) <= share[name] <= 2 / len(servers), share

    def test_balanced_assignment_exact_cap(self):
        ring = ConsistentHashRing()
        for name in ("a", "b", "c"):
            ring.add(name)
        groups = list(range(20))
        plan = ring.balanced_assignment("default", groups)
        assert sorted(plan) == groups
        loads = [list(plan.values()).count(name) for name in ("a", "b", "c")]
        assert max(loads) <= math.ceil(len(groups) / 3)
        assert sum(loads) == len(groups)

    def test_balanced_assignment_honors_pins(self):
        ring = ConsistentHashRing()
        ring.add("a")
        ring.add("b")
        target = "a" if ring.hash_owner("t", 0) == "b" else "b"
        ring.pin("t", 0, target)
        plan = ring.balanced_assignment("t", range(10))
        assert plan[0] == target

    def test_minimal_movement_on_join(self):
        servers = [f"s{i}" for i in range(3)]
        ring = ConsistentHashRing(vnodes=96)
        for name in servers:
            ring.add(name)
        before = ring.assignment("default", range(self.NUM_KEYS))
        ring.add("joiner")
        after = ring.assignment("default", range(self.NUM_KEYS))
        moved = [g for g in before if before[g] != after[g]]
        # Every moved key moved *to* the joiner — nothing reshuffles
        # between incumbents — and the moved fraction is close to the
        # expected 1/n arc capture (generous 2x tolerance).
        assert all(after[g] == "joiner" for g in moved)
        assert len(moved) / self.NUM_KEYS <= 2 / (len(servers) + 1)
        assert moved, "joiner captured no keys at all"

    def test_minimal_movement_on_leave(self):
        servers = [f"s{i}" for i in range(4)]
        ring = ConsistentHashRing(vnodes=96)
        for name in servers:
            ring.add(name)
        before = ring.assignment("default", range(self.NUM_KEYS))
        ring.remove("s2")
        after = ring.assignment("default", range(self.NUM_KEYS))
        for group, owner in before.items():
            if owner != "s2":
                # Only the departed server's keys change hands.
                assert after[group] == owner
            else:
                assert after[group] != "s2"


# --------------------------------------------------------------------------
# sharded search byte identity
# --------------------------------------------------------------------------


class TestShardedIdentity:
    def partitions(self, num_groups):
        yield [list(range(num_groups))]  # everything in one shard
        yield [[g] for g in range(num_groups)]  # one group per shard
        half = num_groups // 2
        yield [list(range(half)), list(range(half, num_groups))]
        yield [list(range(0, num_groups, 2)), list(range(1, num_groups, 2))]

    def test_merge_reconstructs_unsharded_topk(self, loaded_post_db, rng):
        db = loaded_post_db
        store = db.service.store("Post", "content_emb")
        num_groups = store.num_segments
        assert num_groups >= 2, "fixture must span multiple segments"
        queries = rng.standard_normal((6, DIM)).astype(np.float32)
        for q in queries:
            want = merged_triples(db, q, 5)
            for partition in self.partitions(num_groups):
                with db.snapshot() as snapshot:
                    parts = [
                        vector_search_sharded(
                            db.service,
                            snapshot,
                            [ATTR],
                            q,
                            5,
                            groups=frozenset(shard),
                            group_size=1,
                        )
                        for shard in partition
                    ]
                assert merge_sharded_topk(parts, 5) == want

    def test_group_size_coarsens_partitioning(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        want = merged_triples(db, q, 5)
        with db.snapshot() as snapshot:
            parts = [
                vector_search_sharded(
                    db.service, snapshot, [ATTR], q, 5,
                    groups=frozenset([g]), group_size=2,
                )
                for g in range(2)
            ]
        assert merge_sharded_topk(parts, 5) == want

    def test_empty_group_set_yields_empty_partial(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        with db.snapshot() as snapshot:
            parts = vector_search_sharded(
                db.service, snapshot, [ATTR], q, 5,
                groups=frozenset([999]), group_size=1,
            )
        assert parts == [("Post", ())]


# --------------------------------------------------------------------------
# the elastic tier
# --------------------------------------------------------------------------


def tier_config():
    return ServeConfig(workers=2, enable_batching=False, enable_cache=True)


class TestElasticTier:
    def test_single_server_matches_query_server(self, loaded_post_db, rng):
        db = loaded_post_db
        queries = rng.standard_normal((8, DIM)).astype(np.float32)
        config = tier_config()
        with QueryServer(db, config) as server, ElasticTier(
            db, num_servers=1, config=config
        ) as tier:
            for q in queries:
                dmap_t, dmap_s = MapAccum(), MapAccum()
                got = tier.search([ATTR], q, 5, distance_map=dmap_t)
                want = server.search([ATTR], q, 5, distance_map=dmap_s)
                assert members(got) == members(want)
                assert dict(dmap_t.items()) == dict(dmap_s.items())

    def test_multi_server_matches_direct(self, loaded_post_db, rng):
        db = loaded_post_db
        queries = rng.standard_normal((8, DIM)).astype(np.float32)
        with ElasticTier(db, num_servers=3, config=tier_config()) as tier:
            for q in queries:
                dmap = MapAccum()
                got = tier.search([ATTR], q, 5, distance_map=dmap)
                want_members, want_dists = direct(db, q, 5)
                assert members(got) == want_members
                assert dict(dmap.items()) == want_dists

    def test_routing_fans_out_to_owners(self, loaded_post_db, rng):
        db = loaded_post_db
        telemetry = Telemetry()
        q = rng.standard_normal(DIM).astype(np.float32)
        with use_telemetry(telemetry), ElasticTier(
            db, num_servers=2, config=tier_config()
        ) as tier:
            tier.search([ATTR], q, 5)
            ownership = tier.ownership()
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["elastic.routed_requests"] == 1
        owners_touched = len(ownership)
        assert counters["elastic.shard_requests"] == owners_touched
        granted = sorted(
            g for per_tenant in ownership.values() for g in per_tenant["default"]
        )
        assert granted == tier.group_universe([ATTR])

    def test_search_requires_start(self, loaded_post_db, rng):
        tier = ElasticTier(loaded_post_db, num_servers=2)
        with pytest.raises(ServeError):
            tier.search([ATTR], rng.standard_normal(DIM).astype(np.float32), 3)

    def test_rebalance_moves_ownership_live(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        with ElasticTier(db, num_servers=2, config=tier_config()) as tier:
            want_members, want_dists = direct(db, q, 5)
            tier.search([ATTR], q, 5)
            group = 0
            src = next(
                name
                for name, shard in tier.shards.items()
                if shard.owns("default", group)
            )
            dst = next(name for name in tier.shards if name != src)
            record = tier.rebalance("default", group, dst)
            assert record is not None
            assert record["from"] == src and record["to"] == dst
            assert record["drain_tid"] >= 0
            assert tier.shards[dst].owns("default", group)
            assert not tier.shards[src].owns("default", group)
            # No-op move reports None and changes nothing.
            assert tier.rebalance("default", group, dst) is None
            dmap = MapAccum()
            got = tier.search([ATTR], q, 5, distance_map=dmap)
            assert members(got) == want_members
            assert dict(dmap.items()) == want_dists
            assert tier.stats()["rebalances"] == 1

    def test_rebalance_unknown_target_raises(self, loaded_post_db):
        with ElasticTier(loaded_post_db, num_servers=2) as tier:
            with pytest.raises(ElasticError):
                tier.rebalance("default", 0, "ghost")

    def test_rebalance_evenly_bounds_load(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        with ElasticTier(db, num_servers=3, config=tier_config()) as tier:
            tier.search([ATTR], q, 5)
            tier.rebalance_evenly("default", [ATTR])
            groups = tier.group_universe([ATTR])
            cap = math.ceil(len(groups) / 3)
            for shard in tier.shards.values():
                owned = shard.owned_groups("default").get("default", [])
                assert len(owned) <= cap
            want_members, _ = direct(db, q, 5)
            assert members(tier.search([ATTR], q, 5)) == want_members

    def test_crash_failover_reroutes(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), ElasticTier(
            db, num_servers=3, config=tier_config()
        ) as tier:
            want_members, _ = direct(db, q, 5)
            tier.search([ATTR], q, 5)
            victim = sorted(tier.shards)[1]
            tier.shards[victim].stop()  # hard crash: server just dies
            got = tier.search([ATTR], q, 5)
            assert members(got) == want_members
            assert victim not in tier._live_names()
            for per_tenant in tier.ownership().items():
                assert per_tenant[0] != victim
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["elastic.crash_failovers"] == 1

    def test_scale_out_and_in_migrate_keys(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        with ElasticTier(db, num_servers=2, config=tier_config()) as tier:
            want_members, _ = direct(db, q, 5)
            tier.search([ATTR], q, 5)
            name = tier.add_server()
            assert tier.shards[name].running
            assert members(tier.search([ATTR], q, 5)) == want_members
            removed = tier.remove_server(name)
            assert removed == name
            assert name not in tier.shards
            assert members(tier.search([ATTR], q, 5)) == want_members
            # Every key migrated off the removed server before it stopped.
            for server in tier.ownership():
                assert server != name

    def test_remove_last_server_refused(self, loaded_post_db):
        with ElasticTier(loaded_post_db, num_servers=1) as tier:
            with pytest.raises(ElasticError):
                tier.remove_server()

    def test_stats_shape(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        with use_telemetry(Telemetry()), ElasticTier(
            db, num_servers=2, config=tier_config()
        ) as tier:
            tier.search([ATTR], q, 5)
            stats = tier.stats()
        assert set(stats["servers"]) == {"shard-0", "shard-1"}
        for srv in stats["servers"].values():
            assert {"running", "owned", "rebalances_in", "rebalances_out",
                    "queue_depth", "workers_alive", "cache_hit_ratio",
                    "cache_entries"} <= set(srv)
        assert stats["routed_requests"] >= 1
        assert stats["rebalances"] == 0 and stats["rebalance_log"] == []


class TestReplicaCoherence:
    def test_partial_cache_hits_on_repeat(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        telemetry = Telemetry()
        with use_telemetry(telemetry), ElasticTier(
            db, num_servers=2, config=tier_config()
        ) as tier:
            first = members(tier.search([ATTR], q, 5))
            second = members(tier.search([ATTR], q, 5))
        assert first == second
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.cache_hits"] >= 1

    def test_commit_invalidates_every_replica(self, loaded_post_db, rng):
        """The replica-coherence contract: after a commit advances the
        watermark vector, no replica may serve a pre-commit cached
        partial — the post-commit nearest neighbor must appear."""
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        with ElasticTier(db, num_servers=3, config=tier_config()) as tier:
            before = members(tier.search([ATTR], q, 5))
            # Warm every replica's partial cache.
            assert members(tier.search([ATTR], q, 5)) == before
            with db.begin() as txn:
                txn.upsert_vertex("Post", 9000, {"language": "en", "length": 1})
                txn.set_embedding("Post", 9000, "content_emb", q)  # exact hit
            got = members(tier.search([ATTR], q, 5))
            assert ("Post", db.vid_for("Post", 9000)) in got
            want_members, _ = direct(db, q, 5)
            assert got == want_members

    def test_sla_answers_are_fresh_across_replicas(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        with ElasticTier(db, num_servers=2, config=tier_config()) as tier:
            with db.begin() as txn:
                txn.upsert_vertex("Post", 9001, {"language": "fr", "length": 2})
                txn.set_embedding("Post", 9001, "content_emb", q)
            with db.snapshot() as snapshot:
                token = snapshot.tid
            got = members(
                tier.search([ATTR], q, 5, max_staleness=0, session_token=token)
            )
            assert ("Post", db.vid_for("Post", 9001)) in got


# --------------------------------------------------------------------------
# autoscaler decisions
# --------------------------------------------------------------------------


class TestAutoscaler:
    def test_policy_validation(self):
        with pytest.raises(ServeError):
            AutoscalePolicy(queue_delay_p99=0.0)
        with pytest.raises(ServeError):
            AutoscalePolicy(min_servers=3, max_servers=2)

    def test_scale_out_after_consecutive_breaches(self):
        scaler = Autoscaler(AutoscalePolicy(
            queue_delay_p99=0.05, breach_observations=3, max_servers=4
        ))
        assert scaler.observe(0.2, 2) == "hold"
        assert scaler.observe(0.2, 2) == "hold"
        assert scaler.observe(0.2, 2) == "scale_out"
        # The streak resets after a decision fires.
        assert scaler.observe(0.2, 3) == "hold"

    def test_midband_reading_resets_streaks(self):
        scaler = Autoscaler(AutoscalePolicy(
            queue_delay_p99=0.05, breach_observations=2
        ))
        assert scaler.observe(0.2, 2) == "hold"
        assert scaler.observe(0.02, 2) == "hold"  # mid-band: resets
        assert scaler.observe(0.2, 2) == "hold"
        assert scaler.observe(0.2, 2) == "scale_out"

    def test_scale_in_on_sustained_idle(self):
        policy = AutoscalePolicy(
            queue_delay_p99=0.05,
            idle_delay_p99=0.005,
            idle_observations=3,
            min_servers=1,
        )
        scaler = Autoscaler(policy)
        assert scaler.observe(0.001, 3) == "hold"
        assert scaler.observe(0.001, 3) == "hold"
        assert scaler.observe(0.001, 3) == "scale_in"

    def test_bounds_respected(self):
        policy = AutoscalePolicy(
            queue_delay_p99=0.05,
            breach_observations=1,
            idle_delay_p99=0.005,
            idle_observations=1,
            min_servers=2,
            max_servers=2,
        )
        scaler = Autoscaler(policy)
        assert scaler.observe(1.0, 2) == "hold"  # at max: no scale_out
        assert scaler.observe(0.0, 2) == "hold"  # at min: no scale_in

    def test_autoscale_step_scales_tier_out(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        telemetry = Telemetry()
        policy = AutoscalePolicy(queue_delay_p99=1e-9, breach_observations=1)
        with use_telemetry(telemetry), ElasticTier(
            db, num_servers=1, config=tier_config(), autoscale=policy
        ) as tier:
            want_members, _ = direct(db, q, 5)
            tier.search([ATTR], q, 5)  # records a queue_wait above the bound
            assert tier.autoscale_step() == "scale_out"
            assert len(tier._live_names()) == 2
            assert members(tier.search([ATTR], q, 5)) == want_members
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["elastic.scale_out"] == 1


# --------------------------------------------------------------------------
# simulated scaling smoke (the full curve lives in the benchmark)
# --------------------------------------------------------------------------


class TestSimulatedScaling:
    def test_placement_balanced(self):
        sim = SimulatedElasticServe(num_servers=4, num_segments=32)
        counts = sim.segment_counts()
        assert sum(counts) == 32
        assert max(counts) - min(counts) <= 1

    def test_two_servers_nearly_double_qps(self):
        one = SimulatedElasticServe(num_servers=1, num_segments=32)
        two = SimulatedElasticServe(num_servers=2, num_segments=32)
        qps1 = one.run_open_loop(duration_seconds=1.0, target_qps=400.0).qps
        qps2 = two.run_open_loop(duration_seconds=1.0, target_qps=400.0).qps
        assert qps2 >= 1.7 * qps1


# --------------------------------------------------------------------------
# EDF dequeue within a tenant (satellite 1)
# --------------------------------------------------------------------------


@dataclass
class _Req:
    """Queue item shaped like a QueryRequest for scheduling purposes."""

    tag: int
    deadline: float | None = None


class TestDeadlineOrderedDequeue:
    def test_edf_within_tenant(self):
        queue = WeightedFairQueue(TenantRegistry())
        queue.put(_Req(0, deadline=30.0), "default")
        queue.put(_Req(1, deadline=10.0), "default")
        queue.put(_Req(2, deadline=20.0), "default")
        order = [queue.take(timeout=1).tag for _ in range(3)]
        assert order == [1, 2, 0]

    def test_no_deadline_stays_fifo(self):
        queue = WeightedFairQueue(TenantRegistry())
        for tag in range(4):
            queue.put(_Req(tag), "default")
        assert [queue.take(timeout=1).tag for _ in range(4)] == [0, 1, 2, 3]

    def test_deadline_bearing_preempts_unbounded(self):
        queue = WeightedFairQueue(TenantRegistry())
        queue.put(_Req(0), "default")
        queue.put(_Req(1, deadline=5.0), "default")
        assert queue.take(timeout=1).tag == 1

    def test_reorders_counted(self):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            queue = WeightedFairQueue(TenantRegistry())
            queue.put(_Req(0, deadline=99.0), "default")
            queue.put(_Req(1, deadline=1.0), "default")
            assert queue.take(timeout=1).tag == 1  # overtook request 0
            assert queue.take(timeout=1).tag == 0  # oldest left: no reorder
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serve.deadline_reorders"] == 1

    def test_cross_tenant_fairness_untouched(self):
        registry = TenantRegistry(
            [Tenant("heavy", weight=2.0), Tenant("light", weight=1.0)]
        )
        queue = WeightedFairQueue(registry)
        for tag in range(6):
            queue.put(_Req(tag, deadline=float(100 - tag)), "heavy")
        for tag in range(6):
            queue.put(_Req(100 + tag), "light")
        drained = [queue.take(timeout=1) for _ in range(12)]
        heavy = [r.tag for r in drained if r.tag < 100]
        light = [r.tag for r in drained if r.tag >= 100]
        # Stride fairness: a 2:1 weight split drains ~2 heavy per light.
        first_nine = drained[:9]
        assert sum(1 for r in first_nine if r.tag < 100) == 6
        # Within heavy, EDF order (descending tag = ascending deadline).
        assert heavy == [5, 4, 3, 2, 1, 0]
        assert light == [100, 101, 102, 103, 104, 105]

    def test_fewer_deadline_misses_at_equal_throughput(self):
        """The satellite's regression: with all requests queued and unit
        service time, EDF dequeue meets every deadline the permutation
        allows while arrival-order FIFO misses many — at identical
        throughput (same requests, same service rate)."""
        service_time = 1.0
        count = 40
        rng = np.random.default_rng(7)
        deadlines = rng.permutation(count) + 1.0  # a shuffled 1..N
        requests = [
            _Req(tag, deadline=float(deadlines[tag])) for tag in range(count)
        ]
        queue = WeightedFairQueue(TenantRegistry())
        for request in requests:
            queue.put(request, "default")
        edf_order = [queue.take(timeout=1) for _ in range(count)]
        assert {r.tag for r in edf_order} == set(range(count))

        def misses(order):
            now, missed = 0.0, 0
            for request in order:
                now += service_time
                if now > request.deadline:
                    missed += 1
            return missed

        fifo_misses = misses(requests)
        edf_misses = misses(edf_order)
        assert edf_misses == 0  # deadlines are a permutation: EDF fits all
        assert fifo_misses > 0
        assert len(edf_order) == len(requests)  # equal throughput


# --------------------------------------------------------------------------
# shard server contracts
# --------------------------------------------------------------------------


class TestShardServer:
    def test_ownership_check_fails_typed(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        shard = ShardServer(db, "lonely", config=tier_config())
        shard.grant("default", 0)
        with shard:
            with db.snapshot() as snapshot:
                future = shard.submit_shard(
                    [ATTR], q, 5, snapshot=snapshot, groups=[0, 1]
                )
                error = future.exception(timeout=10)
        assert isinstance(error, SegmentOwnershipError)
        assert error.group == 1

    def test_partial_over_owned_groups(self, loaded_post_db, rng):
        db = loaded_post_db
        q = rng.standard_normal(DIM).astype(np.float32)
        shard = ShardServer(db, "solo", config=tier_config())
        num_groups = db.service.store("Post", "content_emb").num_segments
        for group in range(num_groups):
            shard.grant("default", group)
        with shard:
            with db.snapshot() as snapshot:
                future = shard.submit_shard(
                    [ATTR], q, 5,
                    snapshot=snapshot, groups=range(num_groups),
                )
                parts = future.result(timeout=10)
        assert merge_sharded_topk([list(parts)], 5) == merged_triples(db, q, 5)

    def test_grant_revoke_counted(self, loaded_post_db):
        shard = ShardServer(loaded_post_db, "s")
        shard.grant("default", 0)
        shard.grant("default", 0)  # idempotent: counted once
        shard.revoke("default", 0)
        shard.revoke("default", 0)
        stats_owned = shard.owned_groups()
        assert stats_owned == {}
        assert shard._rebalances_in == 1
        assert shard._rebalances_out == 1
