"""Tests for QueryResult contents and multi-statement run() behaviour."""

import numpy as np
import pytest

from repro import RankedVertexSet


class TestQueryResultContents:
    def test_multi_statement_run_returns_last(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql(
            'SELECT p FROM (p:Person) WHERE p.firstName = "P1";'
            'SELECT p FROM (p:Person) WHERE p.firstName = "P2";'
        )
        assert len(r.result) == 1
        (vtype, vid) = next(iter(r.result))
        assert db.pk_for(vtype, vid) == 2

    def test_procedure_exposes_sets_and_accums(self, loaded_post_db):
        db = loaded_post_db
        db.gsql.install(
            """
            CREATE QUERY q(INT limit_len) {
              SumAccum<INT> @@n;
              Long = SELECT t FROM (t:Post) WHERE t.length > limit_len
                     ACCUM @@n += 1;
              PRINT @@n;
            }
            """
        )
        r = db.gsql.run_query("q", limit_len=290)
        assert r.accumulators["n"] == 9
        assert len(r.sets["Long"]) == 9
        assert "limit_len" not in r.sets  # params filtered out

    def test_metrics_present_for_vector_queries(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql(
            "SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT 3;",
            qv=[0.0] * 16,
        )
        assert "vector_seconds" in r.metrics
        assert "last_plan" in r.metrics
        assert r.metrics["action_stats"].segments_touched == 4

    def test_print_values_accessor(self, post_db):
        post_db.gsql.install('CREATE QUERY q() { PRINT "a"; PRINT 2; }')
        r = post_db.gsql.run_query("q")
        assert r.print_values() == ["a", 2]

    def test_ranked_result_is_vertex_set_compatible(self, loaded_post_db):
        db = loaded_post_db
        r = db.run_gsql(
            "SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT 4;",
            qv=[0.0] * 16,
        )
        ranked = r.result
        assert isinstance(ranked, RankedVertexSet)
        # behaves as a plain VertexSet for composition
        other = ranked.union(ranked)
        assert len(other) == 4
        # and carries its ordering
        dists = [d for _, d in ranked.ranking]
        assert dists == sorted(dists)


class TestDdlAndQueryInOneRun:
    def test_schema_then_data_then_query(self, rng):
        from repro import TigerVectorDB

        db = TigerVectorDB(segment_size=32)
        db.run_gsql(
            "CREATE VERTEX City (id INT PRIMARY KEY, pop INT);"
            "ALTER VERTEX City ADD EMBEDDING ATTRIBUTE e (DIMENSION = 4, METRIC = L2);"
            'INSERT INTO City VALUES (1, 100, [1.0, 0, 0, 0]);'
            'INSERT INTO City VALUES (2, 200, [0.0, 1.0, 0, 0]);'
        )
        db.vacuum()
        r = db.run_gsql(
            "SELECT s FROM (s:City) WHERE s.pop > 150 "
            "ORDER BY VECTOR_DIST(s.e, [1.0, 0, 0, 0]) LIMIT 1;"
        )
        (vtype, vid), _ = r.result.ranking[0]
        assert db.pk_for(vtype, vid) == 2  # pop filter excludes the closer city
        db.close()
