"""Tests for the TigerVectorDB facade: bulk loading, recovery, lifecycle."""

import numpy as np
import pytest

from repro import Attribute, AttrType, GraphSchema, Metric, TigerVectorDB


def make_schema():
    schema = GraphSchema()
    schema.create_vertex_type(
        "Item",
        [Attribute("id", AttrType.INT, primary_key=True), Attribute("label", AttrType.STRING)],
    )
    schema.create_edge_type("rel", "Item", "Item")
    schema.add_embedding_attribute("Item", "emb", dimension=4, metric=Metric.L2)
    return schema


class TestBulkLoading:
    def test_bulk_vertices_and_edges(self):
        db = TigerVectorDB(make_schema(), segment_size=8)
        n = db.bulk_load_vertices(
            "Item", ({"id": i, "label": f"x{i}"} for i in range(25)), batch_size=10
        )
        assert n == 25
        m = db.bulk_load_edges("rel", [(i, i + 1) for i in range(24)], batch_size=7)
        assert m == 24
        with db.snapshot() as snap:
            assert snap.count("Item") == 25
        db.close()

    def test_bulk_embeddings_fast_path(self, rng):
        db = TigerVectorDB(make_schema(), segment_size=8)
        db.bulk_load_vertices("Item", ({"id": i} for i in range(30)))
        vectors = rng.standard_normal((30, 4)).astype(np.float32)
        db.bulk_load_embeddings("Item", "emb", list(range(30)), vectors)
        # fast path bypasses deltas: immediately searchable, nothing pending
        store = db.service.store("Item", "emb")
        assert store.pending_delta_count() == 0
        result = db.vector_search(["Item.emb"], vectors[12], k=1)
        assert next(iter(result)) == ("Item", db.vid_for("Item", 12))
        db.close()

    def test_bulk_embeddings_requires_vertices(self, rng):
        db = TigerVectorDB(make_schema())
        with pytest.raises(KeyError):
            db.bulk_load_embeddings(
                "Item", "emb", [1], rng.standard_normal((1, 4))
            )
        db.close()

    def test_bulk_embeddings_dimension_checked(self, rng):
        db = TigerVectorDB(make_schema())
        db.bulk_load_vertices("Item", [{"id": 1}])
        with pytest.raises(ValueError):
            db.bulk_load_embeddings("Item", "emb", [1], rng.standard_normal((1, 7)))
        db.close()


class TestRecovery:
    def test_full_db_recovery(self, tmp_path, rng):
        wal = tmp_path / "db.wal"
        db = TigerVectorDB(make_schema(), segment_size=8, wal_path=wal)
        vectors = rng.standard_normal((10, 4)).astype(np.float32)
        with db.begin() as txn:
            for i in range(10):
                txn.upsert_vertex("Item", i, {"label": f"v{i}"})
                txn.set_embedding("Item", i, "emb", vectors[i])
            txn.add_edge("rel", 0, 1)
        with db.begin() as txn:
            txn.delete_vertex("Item", 9)
        db.close()

        recovered = TigerVectorDB.recover(make_schema(), wal, segment_size=8)
        recovered.vacuum()
        with recovered.snapshot() as snap:
            assert snap.count("Item") == 9
            v0 = snap.vid_for_pk("Item", 0)
            assert snap.neighbors("Item", v0, "rel") == [snap.vid_for_pk("Item", 1)]
        result = recovered.vector_search(["Item.emb"], vectors[4], k=1)
        assert next(iter(result)) == ("Item", recovered.vid_for("Item", 4))
        # deleted vertex's embedding is gone too
        store = recovered.service.store("Item", "emb")
        assert store.get_embedding(9) is None or not recovered.vid_for("Item", 9)
        recovered.close()

    def test_recovered_db_accepts_new_writes(self, tmp_path, rng):
        wal = tmp_path / "db.wal"
        db = TigerVectorDB(make_schema(), segment_size=8, wal_path=wal)
        with db.begin() as txn:
            txn.upsert_vertex("Item", 1, {"label": "a"})
        db.close()
        recovered = TigerVectorDB.recover(make_schema(), wal, segment_size=8)
        with recovered.begin() as txn:
            txn.upsert_vertex("Item", 2, {"label": "b"})
            txn.set_embedding("Item", 2, "emb", rng.standard_normal(4))
        result = recovered.vector_search(
            ["Item.emb"],
            recovered.service.store("Item", "emb").get_embedding(
                recovered.vid_for("Item", 2)
            ),
            k=1,
        )
        assert next(iter(result))[1] == recovered.vid_for("Item", 2)
        recovered.close()


class TestLifecycle:
    def test_context_manager(self):
        with TigerVectorDB(make_schema()) as db:
            with db.begin() as txn:
                txn.upsert_vertex("Item", 1, {})
        # close() ran without error

    def test_pk_vid_mapping(self):
        db = TigerVectorDB(make_schema())
        with db.begin() as txn:
            txn.upsert_vertex("Item", 77, {"label": "x"})
        vid = db.vid_for("Item", 77)
        assert db.pk_for("Item", vid) == 77
        assert db.vid_for("Item", 404) is None
        db.close()
