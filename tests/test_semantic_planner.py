"""Unit tests for GSQL semantic analysis and plan construction."""

import pytest

from repro import Attribute, AttrType, GraphSchema, Metric
from repro.errors import GSQLSemanticError
from repro.gsql.parser import parse
from repro.gsql.planner import build_plan, render_expr
from repro.gsql.parser import parse_expression
from repro.gsql.semantic import analyze_select, split_conjuncts


@pytest.fixture
def schema():
    schema = GraphSchema()
    schema.create_vertex_type(
        "Post",
        [
            Attribute("id", AttrType.INT, primary_key=True),
            Attribute("lang", AttrType.STRING),
            Attribute("len", AttrType.INT),
        ],
    )
    schema.create_vertex_type(
        "Person", [Attribute("id", AttrType.INT, primary_key=True)]
    )
    schema.create_edge_type("hasCreator", "Post", "Person")
    schema.create_edge_type("knows", "Person", "Person", directed=False)
    schema.add_embedding_attribute("Post", "emb", dimension=8, metric=Metric.L2)
    return schema


def analyze(schema, text, known=()):
    (block,) = parse(text)
    return analyze_select(block, schema, known_vars=set(known))


class TestShapeClassification:
    def test_pure(self, schema):
        info = analyze(schema, "SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.emb, q) LIMIT 5;")
        assert info.shape == "pure"
        assert info.vector.kind == "topk"

    def test_filtered_by_attribute(self, schema):
        info = analyze(
            schema,
            'SELECT s FROM (s:Post) WHERE s.lang = "en" '
            "ORDER BY VECTOR_DIST(s.emb, q) LIMIT 5;",
        )
        assert info.shape == "filtered"
        assert "s" in info.pushdown

    def test_filtered_by_pattern(self, schema):
        info = analyze(
            schema,
            "SELECT t FROM (s:Person) <- [:hasCreator] - (t:Post) "
            "ORDER BY VECTOR_DIST(t.emb, q) LIMIT 5;",
        )
        assert info.shape == "filtered"

    def test_filtered_by_set_variable(self, schema):
        info = analyze(
            schema,
            "SELECT s FROM (s:Candidates) ORDER BY VECTOR_DIST(s.emb, q) LIMIT 5;",
            known=("Candidates",),
        )
        assert info.shape == "filtered"

    def test_range(self, schema):
        info = analyze(schema, "SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.emb, q) < 3;")
        assert info.shape == "range"
        assert info.vector.kind == "range"

    def test_similarity_join(self, schema):
        info = analyze(
            schema,
            "SELECT s, t FROM (s:Post) - [:hasCreator] -> (u:Person) "
            "<- [:hasCreator] - (t:Post) "
            "ORDER BY VECTOR_DIST(s.emb, t.emb) LIMIT 5;",
        )
        assert info.shape == "similarity_join"
        assert info.vector.right_alias == "t"

    def test_graph(self, schema):
        info = analyze(schema, 'SELECT s FROM (s:Post) WHERE s.lang = "en";')
        assert info.shape == "graph"
        assert info.vector is None

    def test_symmetric_vector_dist_args(self, schema):
        info = analyze(
            schema, "SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(q, s.emb) LIMIT 5;"
        )
        assert info.shape == "pure"
        assert info.vector.alias == "s"


class TestValidation:
    def test_topk_requires_limit(self, schema):
        with pytest.raises(GSQLSemanticError, match="LIMIT"):
            analyze(schema, "SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.emb, q);")

    def test_unknown_embedding_attribute(self, schema):
        with pytest.raises(GSQLSemanticError, match="no embedding attribute"):
            analyze(schema, "SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.ghost, q) LIMIT 5;")

    def test_unknown_edge_type(self, schema):
        with pytest.raises(GSQLSemanticError, match="unknown edge type"):
            analyze(schema, "SELECT t FROM (s:Post) - [:ghost] -> (t:Person);")

    def test_duplicate_alias(self, schema):
        with pytest.raises(GSQLSemanticError, match="duplicate"):
            analyze(schema, "SELECT s FROM (s:Post) - [:hasCreator] -> (s:Person);")

    def test_vector_dist_arity(self, schema):
        with pytest.raises(GSQLSemanticError, match="two arguments"):
            analyze(schema, "SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.emb) LIMIT 5;")

    def test_incompatible_join_rejected(self, schema):
        schema.add_embedding_attribute(
            "Person", "pemb", dimension=4, metric=Metric.L2
        )
        from repro.errors import EmbeddingCompatibilityError

        with pytest.raises(EmbeddingCompatibilityError):
            analyze(
                schema,
                "SELECT s, t FROM (s:Post) - [:hasCreator] -> (t:Person) "
                "ORDER BY VECTOR_DIST(s.emb, t.pemb) LIMIT 5;",
            )


class TestPushdownSplit:
    def test_single_alias_conjuncts_pushed(self, schema):
        info = analyze(
            schema,
            "SELECT t FROM (s:Person) <- [:hasCreator] - (t:Post) "
            'WHERE s.id = 1 AND t.lang = "en" AND t.len > 5;',
        )
        assert len(info.pushdown["s"]) == 1
        assert len(info.pushdown["t"]) == 2
        assert info.residual == []

    def test_multi_alias_residual(self, schema):
        info = analyze(
            schema,
            "SELECT t FROM (s:Post) - [:hasCreator] -> (u:Person) "
            "<- [:hasCreator] - (t:Post) WHERE s.len < t.len;",
        )
        assert info.residual
        assert not info.pushdown

    def test_split_conjuncts_flattens_ands(self):
        expr = parse_expression("a = 1 AND b = 2 AND (c = 3 AND d = 4)")
        assert len(split_conjuncts(expr)) == 4

    def test_or_not_split(self):
        expr = parse_expression("a = 1 OR b = 2")
        assert len(split_conjuncts(expr)) == 1


class TestPlans:
    def test_pure_plan_text(self, schema):
        info = analyze(schema, "SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.emb, q) LIMIT k;")
        assert build_plan(info).explain() == "EmbeddingAction[Top k, {s.emb}, q]"

    def test_filtered_plan_bottom_up(self, schema):
        info = analyze(
            schema,
            "SELECT t FROM (s:Person) <- [:hasCreator] - (t:Post) "
            "WHERE s.id = 7 ORDER BY VECTOR_DIST(t.emb, q) LIMIT k;",
        )
        lines = build_plan(info).explain().splitlines()
        assert lines[0].startswith("EmbeddingAction")
        assert lines[-1] == "VertexAction[Person:s {s.id = 7}]"

    def test_join_plan_has_heap(self, schema):
        info = analyze(
            schema,
            "SELECT s, t FROM (s:Post) - [:hasCreator] -> (u:Person) "
            "<- [:hasCreator] - (t:Post) "
            "ORDER BY VECTOR_DIST(s.emb, t.emb) LIMIT 3;",
        )
        plan = build_plan(info)
        assert plan.steps[0].op == "HeapMerge"
        assert "HeapAccum[Top 3" in plan.explain()

    def test_range_plan(self, schema):
        info = analyze(schema, "SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.emb, q) < 2.5;")
        assert "EmbeddingAction[Range 2.5" in build_plan(info).explain()

    def test_render_expr_forms(self):
        assert render_expr(parse_expression('a.b = "x"')) == "a.b = 'x'"
        assert render_expr(parse_expression("NOT a")) == "NOT a"
        assert render_expr(parse_expression("f(1, 2)")) == "f(1, 2)"
        assert render_expr(parse_expression("[1, 2]")) == "[1, 2]"
        assert render_expr(parse_expression("@@m")) == "@@m"
