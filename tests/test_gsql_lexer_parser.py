"""Tests for the GSQL lexer and parser."""

import pytest

from repro.errors import GSQLLexError, GSQLParseError
from repro.gsql import ast_nodes as ast
from repro.gsql.lexer import tokenize
from repro.gsql.parser import parse, parse_expression


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Select SELECT")
        assert all(t.is_kw("SELECT") for t in tokens[:3])

    def test_identifiers_keep_case(self):
        tokens = tokenize("TopKPosts")
        assert tokens[0].kind == "IDENT"
        assert tokens[0].value == "TopKPosts"

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e3 2.5e-2")
        assert [t.kind for t in tokens[:4]] == ["INT", "FLOAT", "FLOAT", "FLOAT"]

    def test_strings_with_escapes(self):
        tokens = tokenize(r'"a\"b" ' + r"'c\nd'")
        assert tokens[0].value == 'a"b'
        assert tokens[1].value == "c\nd"

    def test_unterminated_string(self):
        with pytest.raises(GSQLLexError):
            tokenize('"oops')

    def test_comments_stripped(self):
        tokens = tokenize("a -- comment\n b /* block\n comment */ c")
        assert [t.value for t in tokens[:3]] == ["a", "b", "c"]

    def test_arrows_and_accum_ops(self):
        tokens = tokenize("-> <- @@x @y +=")
        assert tokens[0].is_op("->")
        assert tokens[1].is_op("<-")
        assert tokens[2].is_op("@@")
        assert tokens[4].is_op("@")
        assert tokens[6].is_op("+=")

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(GSQLLexError):
            tokenize("a § b")


class TestDDLParsing:
    def test_create_vertex(self):
        (node,) = parse("CREATE VERTEX Post (id INT PRIMARY KEY, body STRING);")
        assert isinstance(node, ast.CreateVertex)
        assert node.attributes[0].primary_key
        assert node.attributes[1].type_name == "STRING"

    def test_create_edges(self):
        nodes = parse(
            "CREATE DIRECTED EDGE a (FROM X, TO Y);"
            "CREATE UNDIRECTED EDGE b (FROM X, TO X);"
        )
        assert nodes[0].directed and not nodes[1].directed

    def test_embedding_attribute_options(self):
        (node,) = parse(
            "ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE e "
            "(DIMENSION = 1024, MODEL = GPT4, INDEX = HNSW, "
            "DATATYPE = FLOAT, METRIC = COSINE);"
        )
        assert node.options["DIMENSION"] == 1024
        assert node.options["MODEL"] == "GPT4"

    def test_embedding_space(self):
        nodes = parse(
            "CREATE EMBEDDING SPACE s (DIMENSION = 64, MODEL = m);"
            "ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE e IN EMBEDDING SPACE s;"
        )
        assert isinstance(nodes[0], ast.CreateEmbeddingSpace)
        assert nodes[1].space == "s"

    def test_loading_job(self):
        (node,) = parse(
            "CREATE LOADING JOB j FOR GRAPH g {"
            " LOAD f1 TO VERTEX Post VALUES (id, body);"
            " LOAD f2 TO EMBEDDING ATTRIBUTE e ON VERTEX Post"
            "   VALUES (id, split(emb, \":\"));"
            "}"
        )
        assert isinstance(node, ast.CreateLoadingJob)
        assert node.loads[0].target_kind == "vertex"
        assert node.loads[1].target_kind == "embedding"
        assert node.loads[1].vertex_type == "Post"


class TestPatternParsing:
    def get_pattern(self, text):
        (block,) = parse(text)
        return block.pattern

    def test_single_node(self):
        p = self.get_pattern("SELECT s FROM (s:Post);")
        assert p.nodes[0].alias == "s"
        assert p.nodes[0].label == "Post"
        assert p.edges == []

    def test_multi_hop_mixed_directions(self):
        p = self.get_pattern(
            "SELECT t FROM (s:Person) - [:knows] -> (:Person) "
            "<- [:hasCreator] - (t:Post);"
        )
        assert [e.direction for e in p.edges] == ["out", "in"]
        assert p.nodes[1].alias is None
        assert p.nodes[2].alias == "t"

    def test_repeat_hops(self):
        p = self.get_pattern("SELECT t FROM (s:Person) -[:knows*3]-> (t:Person);")
        assert p.edges[0].repeat == 3

    def test_edge_alias_ignored(self):
        p = self.get_pattern("SELECT t FROM (s:Person) <-[e:hasCreator]- (t:Post);")
        assert p.edges[0].edge_type == "hasCreator"

    def test_undirected_edge(self):
        p = self.get_pattern("SELECT t FROM (s:Person) -[:knows]- (t:Person);")
        assert p.edges[0].direction == "any"


class TestSelectParsing:
    def test_where_order_limit(self):
        (block,) = parse(
            'SELECT s FROM (s:Post) WHERE s.lang = "en" '
            "ORDER BY VECTOR_DIST(s.emb, q) LIMIT k;"
        )
        assert isinstance(block.where, ast.BinaryOp)
        assert block.where.op == "=="
        assert isinstance(block.order_by.expr, ast.FuncCall)
        assert isinstance(block.limit, ast.VarRef)

    def test_order_desc(self):
        (block,) = parse("SELECT s FROM (s:Post) ORDER BY s.date DESC LIMIT 5;")
        assert not block.order_by.ascending

    def test_accum_clause(self):
        (block,) = parse("SELECT t FROM (t:Post) ACCUM @@n += 1, @@s += t.len;")
        assert len(block.accum) == 2
        assert block.accum[0].target.name == "n"

    def test_post_accum_clause(self):
        (block,) = parse("SELECT t FROM (t:Post) POST-ACCUM @@n += 1;")
        assert len(block.post_accum) == 1

    def test_multi_select(self):
        (block,) = parse(
            "SELECT s, t FROM (s:A) -[:e]-> (t:B) "
            "ORDER BY VECTOR_DIST(s.emb, t.emb) LIMIT 3;"
        )
        assert block.select == ["s", "t"]


class TestProcedureParsing:
    def test_params_and_accums(self):
        (proc,) = parse(
            "CREATE QUERY q(List<FLOAT> v, INT k) {"
            " SumAccum<INT> @@n;"
            " Map<VERTEX, FLOAT> @@m;"
            " HeapAccum<FLOAT>(5) @@h;"
            " PRINT @@n;"
            "}"
        )
        assert [p.name for p in proc.params] == ["v", "k"]
        assert [d.kind for d in proc.accum_decls] == ["SumAccum", "Map", "HeapAccum"]
        assert proc.accum_decls[2].ctor_args[0].value == 5

    def test_control_flow(self):
        (proc,) = parse(
            "CREATE QUERY q() {"
            " SumAccum<INT> @@n;"
            " FOREACH i IN RANGE[0, 3] DO @@n += i; END;"
            " WHILE @@n < 100 LIMIT 5 DO @@n += 10; END;"
            " IF @@n >= 50 THEN PRINT \"big\"; ELSE PRINT \"small\"; END;"
            "}"
        )
        kinds = [type(s).__name__ for s in proc.body]
        assert kinds == ["ForeachStmt", "WhileStmt", "IfStmt"]

    def test_vector_search_call(self):
        (proc,) = parse(
            "CREATE QUERY q(List<FLOAT> v, INT k) {"
            " Map<VERTEX, FLOAT> @@d;"
            " Top = VectorSearch({Post.emb, Comment.emb}, v, k,"
            "   {filter: Cands, ef: 200, distanceMap: @@d});"
            " PRINT Top;"
            "}"
        )
        assign = proc.body[0]
        call = assign.value
        assert isinstance(call, ast.FuncCall)
        assert isinstance(call.args[0], ast.VectorAttrSet)
        assert [a.qualified for a in call.args[0].attrs] == ["Post.emb", "Comment.emb"]
        opts = {e.key: e.value for e in call.args[3].entries}
        assert isinstance(opts["distanceMap"], ast.AccumRef)

    def test_set_operators(self):
        (proc,) = parse("CREATE QUERY q() { C = A UNION B; D = A INTERSECT B; E = A MINUS B; }")
        assert [s.value.op for s in proc.body] == ["UNION", "INTERSECT", "MINUS"]

    def test_accum_decls_must_precede_statements(self):
        with pytest.raises(GSQLParseError):
            parse("CREATE QUERY q() { PRINT 1; SumAccum<INT> @@n; }")


class TestExpressions:
    def test_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, ast.BinaryOp) and e.op == "+"
        assert e.right.op == "*"

    def test_and_or_not(self):
        e = parse_expression("NOT a AND b OR c")
        assert e.op == "OR"
        assert e.left.op == "AND"
        assert isinstance(e.left.left, ast.UnaryOp)

    def test_comparison_normalization(self):
        assert parse_expression("a = b").op == "=="
        assert parse_expression("a <> b").op == "!="

    def test_list_literal(self):
        e = parse_expression("[1, 2.5, \"x\"]")
        assert [i.value for i in e.items] == [1, 2.5, "x"]

    def test_unary_minus(self):
        e = parse_expression("-5")
        assert isinstance(e, ast.UnaryOp)

    def test_vertex_accum_ref(self):
        e = parse_expression("s.@cnt")
        assert isinstance(e, ast.AccumRef)
        assert e.alias == "s" and not e.is_global

    def test_trailing_garbage(self):
        with pytest.raises(GSQLParseError):
            parse_expression("1 2")

    def test_parse_error_has_location(self):
        with pytest.raises(GSQLParseError) as err:
            parse("SELECT FROM;")
        assert err.value.line == 1
