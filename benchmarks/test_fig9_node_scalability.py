"""Figure 9: node scalability — QPS vs number of machines (1, 2, 4, 8).

Paper shape: at 99.9% recall doubling the machine count gains 1.84-1.91x;
at 90% recall, where each search is cheap and the fixed network/coordination
share is proportionally larger, the gain drops to ~1.5x.

Method (per DESIGN.md): per-segment search times are *measured* on the real
per-segment HNSW indexes, then replayed through the discrete-event cluster
simulator driven by the wrk2-like closed-loop load generator (320
connections, matching the paper's sender configuration).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    bench_scale,
    cached_system,
    dataset_for,
    format_table,
    recall_at_k,
)
from repro.bench.harness import embedding_store_for
from repro.cluster import ClosedLoopLoadGenerator, ClusterSimulator, make_cluster

from .conftest import record_table

MACHINES = (1, 2, 4, 8)
K = 10


@pytest.fixture(scope="module")
def store_and_dataset():
    scale = bench_scale()
    dataset = dataset_for("sift")
    # More segments than 8 machines x a few cores so distribution matters.
    segment_size = max(256, len(dataset) // 32)
    store = cached_system(
        f"fig9-store-{scale.name}-{len(dataset)}-{segment_size}",
        lambda: embedding_store_for(dataset, segment_size),
    )
    return store, dataset


def pick_ef_for_recall(store, dataset, target, candidates=(8, 16, 32, 64, 128, 256, 512)):
    """Smallest ef whose merged recall reaches ``target``."""
    queries = dataset.queries[:20]
    for ef in candidates:
        ids = []
        for q in queries:
            merged = []
            for seg_no in range(store.num_segments):
                out = store.search_segment(seg_no, q, K, snapshot_tid=1, ef=ef)
                base = seg_no * store.segment_size
                merged.extend(zip(out.distances, (base + o for o in out.offsets)))
            merged.sort()
            ids.append([vid for _, vid in merged[:K]])
        if recall_at_k(ids, dataset.gt_ids[:20], K) >= target:
            return ef
    return candidates[-1]


def measure_samples(store, dataset, ef, num_queries=25):
    """Measured per-query, per-segment service times for the simulator."""
    import time

    samples = []
    for q in dataset.queries[:num_queries]:
        per_segment = {}
        for seg_no in range(store.num_segments):
            start = time.perf_counter()
            store.search_segment(seg_no, q, K, snapshot_tid=1, ef=ef)
            per_segment[seg_no] = time.perf_counter() - start
        samples.append(per_segment)
    return samples


def test_fig9_node_scalability(benchmark, store_and_dataset):
    store, dataset = store_and_dataset
    ef_low = pick_ef_for_recall(store, dataset, 0.90)
    ef_high = pick_ef_for_recall(store, dataset, 0.995)
    assert ef_high >= ef_low

    rows = []
    qps = {}
    for label, ef in (("90% recall", ef_low), ("99.9% recall", ef_high)):
        samples = measure_samples(store, dataset, ef)
        for machines in MACHINES:
            sim = ClusterSimulator(
                make_cluster(machines, store.num_segments, cores=8),
                dim=dataset.dim,
                k=K,
            )
            gen = ClosedLoopLoadGenerator(sim, connections=320)
            result = gen.run(samples, duration_seconds=3.0)
            qps[(label, machines)] = result.qps
            rows.append(
                [label, ef, machines, round(result.qps),
                 round(result.mean_latency_seconds * 1000, 2)]
            )

    record_table(
        "fig9",
        format_table(
            ["operating point", "ef", "machines", "QPS", "mean latency (ms)"],
            rows,
            title=f"Figure 9 — node scalability ({len(dataset)} SIFT-like vectors, "
            f"{store.num_segments} segments, wrk2-like closed loop)",
        ),
    )

    # Shape assertions: near-linear scaling at the high-recall point...
    high_gains = [
        qps[("99.9% recall", 2 * m)] / qps[("99.9% recall", m)] for m in (1, 2, 4)
    ]
    assert all(1.4 < g <= 2.2 for g in high_gains), high_gains
    # ... and weaker (overhead-bound) scaling at the cheap 90% point.
    low_gains = [
        qps[("90% recall", 2 * m)] / qps[("90% recall", m)] for m in (1, 2, 4)
    ]
    assert all(g <= hg + 0.25 for g, hg in zip(low_gains, high_gains)), (
        low_gains, high_gains,
    )
    assert min(low_gains) < min(high_gains) + 0.2

    benchmark(
        lambda: ClusterSimulator(
            make_cluster(8, store.num_segments, cores=8), dim=dataset.dim, k=K
        ).simulate_request(0.0, {s: 0.001 for s in range(store.num_segments)})
    )
