"""Figure 8: single-thread latency vs recall.

Paper shape: same ordering as Figure 7 — TigerVector up to 15x faster than
Neo4j and 13.9x faster than Neptune at its best points, and slightly faster
than Milvus (up to 1.16x) — here the latencies come from measured compute
plus each engine's modeled request-path overhead.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_scale, format_table, recall_at_k

from .conftest import record_table

K = 10
EF_SWEEP = (8, 16, 32, 64, 128, 256)


def latency_point(system, dataset, ef):
    ids = []
    latencies = []
    for q in dataset.queries:
        # min of two runs per query: measured compute is sensitive to
        # transient machine load, which would otherwise swamp the modeled
        # engine differences
        runs = [system.search(q, K, ef=ef) for _ in range(3)]
        best = min(runs, key=lambda m: m.latency_seconds)
        ids.append(best.ids.tolist())
        latencies.append(best.latency_seconds)
    recall = recall_at_k(ids, dataset.gt_ids, K)
    return recall, 1000.0 * sum(latencies) / len(latencies)


@pytest.mark.parametrize("ds_name", ["SIFT", "Deep"])
def test_fig8_latency_vs_recall(benchmark, systems, datasets, ds_name):
    dataset = datasets[ds_name]
    rows = []
    points = {}
    for sys_name in ("TigerVector", "Milvus"):
        system = systems[(sys_name, ds_name)]
        for ef in EF_SWEEP:
            recall, latency_ms = latency_point(system, dataset, ef)
            rows.append([sys_name, ef, round(recall, 4), round(latency_ms, 3)])
            points[(sys_name, ef)] = (recall, latency_ms)
    for sys_name in ("Neo4j", "Neptune"):
        system = systems[(sys_name, ds_name)]
        recall, latency_ms = latency_point(system, dataset, None)
        rows.append(
            [sys_name, system.profile.fixed_ef, round(recall, 4), round(latency_ms, 3)]
        )
        points[(sys_name, None)] = (recall, latency_ms)

    record_table(
        f"fig8_{ds_name.lower()}",
        format_table(
            ["system", "ef", "recall@10", "mean latency (ms)"],
            rows,
            title=f"Figure 8 — latency vs recall (single thread), {ds_name}-like",
        ),
    )

    if bench_scale().name == "smoke":
        tv_system = systems[("TigerVector", ds_name)]
        benchmark(lambda: tv_system.search(dataset.queries[1], K, ef=32))
        return

    neo_recall, neo_lat = points[("Neo4j", None)]
    nep_recall, nep_lat = points[("Neptune", None)]

    # TigerVector is faster than Neo4j while also more accurate.
    tv_dominating = [
        lat
        for (name, ef), (recall, lat) in points.items()
        if name == "TigerVector" and recall > neo_recall
    ]
    assert min(tv_dominating) < neo_lat / 1.5

    # TigerVector reaches Neptune's recall at lower latency.
    tv_high = [
        lat
        for (name, ef), (recall, lat) in points.items()
        if name == "TigerVector" and recall >= nep_recall - 0.02
    ]
    # At laptop scale TigerVector's segmented search costs more compute
    # per query than a monolithic index (Python per-segment overhead), so
    # its latency edge over Neptune is thin (1.0-2.2x across runs, vs the
    # paper's up-to-13.9x); assert it with a small noise tolerance.
    assert min(tv_high) < nep_lat * 1.15

    # TigerVector is not slower than Milvus at matched ef (paper: <=1.16x edge).
    faster_points = sum(
        points[("TigerVector", ef)][1] <= points[("Milvus", ef)][1] * 1.05
        for ef in EF_SWEEP
    )
    assert faster_points >= len(EF_SWEEP) // 2 + 1  # majority of the sweep

    tv_system = systems[("TigerVector", ds_name)]
    benchmark(lambda: tv_system.search(dataset.queries[1], K, ef=32))
