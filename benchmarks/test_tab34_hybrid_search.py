"""Tables 3-4: hybrid vector + graph search on the LDBC-SNB-like dataset.

The paper modifies IC queries involving KNOWS, varies the hop count (2-4),
collects the matched Message vertices, and runs a top-k vector search on
the collected set, at scale factors 10 and 30 (1:3 ratio, preserved here).

Shapes checked:

- end-to-end time grows with hops (linearly or sublinearly);
- IC5 collects by far the largest candidate set, IC9 a fixed 20, IC3 a
  near-empty one;
- the vector-search step stays in the low-millisecond band even for the
  biggest candidate sets, and does not scale directly with candidate count
  (the IC5-vs-IC11 inversion comes from segments touched / brute-force
  flips, which the action stats expose);
- the larger scale factor raises end-to-end times.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import TigerVectorDB
from repro.bench import bench_scale, format_table
from repro.datasets import IC_QUERIES, LDBCConfig, build_ic_query, generate_ldbc, load_ldbc_into

from .conftest import record_table

HOPS = (2, 3, 4)
K = 10


def build_hybrid_db(scale_factor: float, segment_size: int) -> tuple[TigerVectorDB, object]:
    data = generate_ldbc(LDBCConfig(scale_factor=scale_factor, embedding_dim=32))
    db = TigerVectorDB(segment_size=segment_size)
    load_ldbc_into(db, data)
    for name in IC_QUERIES:
        for hops in HOPS:
            _, text = build_ic_query(name, hops)
            db.gsql.install(text)
    return db, data


@pytest.fixture(scope="module")
def hybrid_dbs():
    scale = bench_scale()
    sf_small = scale.ldbc_scale_factor
    sf_big = scale.ldbc_scale_factor * 3  # the paper's SF10 : SF30 ratio
    small = build_hybrid_db(sf_small, segment_size=max(512, scale.segment_size // 4))
    big = build_hybrid_db(sf_big, segment_size=max(512, scale.segment_size // 4))
    yield {"SF-small": small, "SF-large": big}
    small[0].close()
    big[0].close()


def run_ic(db, data, name, hops):
    qname = f"{name}_h{hops}"
    topic = data.post_embeddings[7].tolist()
    start = time.perf_counter()
    result = db.gsql.run_query(qname, pid=0, topic_emb=topic, k=K)
    e2e = time.perf_counter() - start
    return {
        "e2e": e2e,
        "candidates": result.metrics.get("num_candidates", 0),
        "vector_ms": result.metrics.get("vector_seconds", 0.0) * 1000.0,
        "topk": len(result.prints[0]["vertices"]),
    }


def test_tab34_hybrid_search(benchmark, hybrid_dbs):
    all_measure = {}
    for sf_label, (db, data) in hybrid_dbs.items():
        rows = []
        for hops in HOPS:
            for name in IC_QUERIES:
                m = run_ic(db, data, name, hops)
                all_measure[(sf_label, name, hops)] = m
                rows.append(
                    [
                        hops,
                        name,
                        round(m["e2e"], 3),
                        m["candidates"],
                        round(m["vector_ms"], 2),
                    ]
                )
        record_table(
            f"tab34_{sf_label.lower().replace('-', '_')}",
            format_table(
                ["hops", "query", "end-to-end (s)", "#candidates", "vector search (ms)"],
                rows,
                title=(
                    f"Tables 3-4 — hybrid search, {sf_label} "
                    f"({len(data.persons)} persons, {data.num_messages} messages)"
                ),
            ),
        )

    for sf_label in hybrid_dbs:
        # Candidate-set profile: IC5 largest; IC9 pinned at 20; IC3 smallest.
        for hops in HOPS:
            c = {n: all_measure[(sf_label, n, hops)]["candidates"] for n in IC_QUERIES}
            assert c["IC5"] == max(c.values())
            assert c["IC9"] <= 20
            assert c["IC3"] <= c["IC11"]
        # End-to-end grows (weakly) with hops for the heavy queries.
        for name in ("IC5", "IC11"):
            e2 = all_measure[(sf_label, name, 2)]["e2e"]
            e4 = all_measure[(sf_label, name, 4)]["e2e"]
            assert e4 >= 0.8 * e2
        # Vector search stays in the low-millisecond band.
        for (sf, name, hops), m in all_measure.items():
            if sf == sf_label:
                assert m["vector_ms"] < 500.0

    # The larger scale factor costs more end to end for the broadest query.
    assert (
        all_measure[("SF-large", "IC5", 3)]["e2e"]
        > 0.9 * all_measure[("SF-small", "IC5", 3)]["e2e"]
    )

    db, data = hybrid_dbs["SF-small"]
    benchmark(lambda: run_ic(db, data, "IC9", 2))
