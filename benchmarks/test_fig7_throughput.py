"""Figure 7: throughput (QPS) vs recall@10 on SIFT-like and Deep-like data.

Paper shape: TigerVector and Milvus trace full QPS/recall curves (tunable
ef); Neo4j and Neptune are single fixed points.  TigerVector simultaneously
beats Neo4j on QPS (5.19x / 3.77x) and recall (+23% / +26%), beats Neptune
1.93-2.7x at comparable high recall, and edges out Milvus 1.07-1.61x.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_scale, format_table, recall_at_k

from .conftest import record_table

EF_SWEEP = (8, 16, 32, 64, 128, 256)
K = 10
CLIENT_THREADS = 16  # the paper uses 16 query threads


def evaluate_point(system, dataset, ef):
    queries = dataset.queries
    ids = []
    services = []
    for q in queries:
        # min of two runs per query: measured compute is sensitive to
        # transient machine load, which would otherwise swamp the modeled
        # engine differences (all systems share the same HNSW kernels)
        runs = [system.search(q, K, ef=ef) for _ in range(2)]
        best = min(runs, key=lambda m: m.service_seconds)
        ids.append(best.ids.tolist())
        services.append(best.service_seconds)
    recall = recall_at_k(ids, dataset.gt_ids, K)
    mean_service = sum(services) / len(services)
    return recall, system.qps(mean_service, CLIENT_THREADS)


@pytest.mark.parametrize("ds_name", ["SIFT", "Deep"])
def test_fig7_throughput_vs_recall(benchmark, systems, datasets, ds_name):
    dataset = datasets[ds_name]
    rows = []
    points = {}
    for sys_name in ("TigerVector", "Milvus"):
        system = systems[(sys_name, ds_name)]
        for ef in EF_SWEEP:
            recall, qps = evaluate_point(system, dataset, ef)
            rows.append([sys_name, ef, round(recall, 4), round(qps)])
            points[(sys_name, ef)] = (recall, qps)
    for sys_name in ("Neo4j", "Neptune"):
        system = systems[(sys_name, ds_name)]
        recall, qps = evaluate_point(system, dataset, None)
        rows.append([sys_name, system.profile.fixed_ef, round(recall, 4), round(qps)])
        points[(sys_name, None)] = (recall, qps)

    record_table(
        f"fig7_{ds_name.lower()}",
        format_table(
            ["system", "ef", "recall@10", "QPS (16 threads)"],
            rows,
            title=f"Figure 7 — throughput vs recall, {ds_name}-like "
            f"({len(dataset)} vectors)",
        ),
    )

    if bench_scale().name == "smoke":
        # smoke scale is a wiring sanity check; comparative shapes need
        # enough data that compute dominates (small/large scales).
        tv_system = systems[("TigerVector", ds_name)]
        benchmark(lambda: tv_system.search(dataset.queries[0], K, ef=64))
        return

    neo_recall, neo_qps = points[("Neo4j", None)]
    nep_recall, nep_qps = points[("Neptune", None)]

    # TigerVector beats Neo4j on QPS AND recall simultaneously (paper: 5.19x
    # QPS with +23% recall). Find the TV point nearest Neo4j-dominance.
    dominating = [
        (recall, qps)
        for (name, ef), (recall, qps) in points.items()
        if name == "TigerVector" and recall > neo_recall + 0.05 and qps > neo_qps
    ]
    assert dominating, "TigerVector should dominate Neo4j's single point"
    best = max(dominating, key=lambda p: p[1])
    assert best[1] / neo_qps > 2.0, "expected a multi-x QPS win over Neo4j"

    # At comparable high recall TigerVector out-throughputs Neptune ~2x.
    tv_high = [
        (recall, qps)
        for (name, ef), (recall, qps) in points.items()
        if name == "TigerVector" and recall >= nep_recall - 0.02
    ]
    assert tv_high, "TigerVector should reach Neptune's recall regime"
    assert max(q for _, q in tv_high) > 1.3 * nep_qps

    # TigerVector at least matches Milvus at equal ef (paper: 1.07-1.61x).
    for ef in EF_SWEEP:
        tv = points[("TigerVector", ef)]
        mv = points[("Milvus", ef)]
        assert tv[1] > 0.95 * mv[1], f"TigerVector should not lose to Milvus at ef={ef}"

    # pytest-benchmark: time one representative TigerVector search.
    tv_system = systems[("TigerVector", ds_name)]
    benchmark(lambda: tv_system.search(dataset.queries[0], K, ef=64))
