"""Telemetry overhead on the fig7-style distributed top-k microbench.

Seeds the perf trajectory for the observability layer: the same distributed
search workload runs three ways —

- **off**: the process default (no telemetry installed at all);
- **null**: an explicitly installed :class:`NullTelemetry`, i.e. the
  instrumented hot paths with every probe compiled down to a no-op;
- **on**: a live :class:`Telemetry` recording spans, counters, and
  histograms for every query.

Budgets (asserted): null must stay within 5% of off — disabled telemetry is
contractually free — and on within 25%.  Results go to
``bench_results/BENCH_telemetry.json`` so future PRs can track the cost of
new instruments.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.bench import bench_scale, cached_system
from repro.bench.harness import embedding_store_for, emit_profiles, profiles_enabled
from repro.core.distributed import DistributedSearcher
from repro.datasets import make_sift_like
from repro.telemetry import NullTelemetry, Telemetry, use_telemetry

K = 10
EF = 48
TRIALS = 7
RESULTS_DIR = Path("bench_results")


@pytest.fixture(scope="module")
def subject():
    scale = bench_scale()
    n = max(2_000, scale.vector_count // 4)
    segment_size = max(256, n // 8)
    dataset = make_sift_like(n, num_queries=50, seed=23)
    store = cached_system(
        f"telemetry-overhead-{scale.name}-{n}",
        lambda: embedding_store_for(dataset, segment_size),
    )
    return store, dataset


def run_workload(searcher, queries):
    for query in queries:
        searcher.search(query, K, snapshot_tid=1, ef=EF)


def timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_telemetry_overhead(subject):
    store, dataset = subject
    queries = dataset.queries
    searcher = DistributedSearcher(store, num_machines=2)

    # Warm every cache (numpy, index pages) before any timed trial.
    run_workload(searcher, queries)

    # Trials are interleaved round-robin across the three modes so slow
    # clock/thermal drift hits every mode equally; min-of-N filters the
    # rest, and GC is paused so collection pauses don't land on one mode.
    telemetry = Telemetry()
    t_off = t_null = t_on = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(TRIALS):
            gc.collect()
            t_off = min(t_off, timed(lambda: run_workload(searcher, queries)))
            with use_telemetry(NullTelemetry()):
                t_null = min(t_null, timed(lambda: run_workload(searcher, queries)))
            with use_telemetry(telemetry):
                t_on = min(t_on, timed(lambda: run_workload(searcher, queries)))
    finally:
        if gc_was_enabled:
            gc.enable()

    null_overhead = t_null / t_off - 1.0
    on_overhead = t_on / t_off - 1.0

    snapshot = telemetry.registry.snapshot()
    payload = {
        "scale": bench_scale().name,
        "num_queries": len(queries),
        "num_segments": store.num_segments,
        "trials": TRIALS,
        "seconds": {"off": t_off, "null": t_null, "on": t_on},
        "overhead": {"null_vs_off": null_overhead, "on_vs_off": on_overhead},
        "budget": {"null_vs_off": 0.05, "on_vs_off": 0.25},
        "enabled_counters": snapshot["counters"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_telemetry.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"\ntelemetry overhead: off={t_off:.4f}s null={t_null:.4f}s "
        f"(+{null_overhead:.1%}) on={t_on:.4f}s (+{on_overhead:.1%})"
    )

    if profiles_enabled():
        with use_telemetry(Telemetry()):
            output = searcher.search(queries[0], K, snapshot_tid=1, ef=EF)
        emit_profiles("telemetry_overhead", [output.profile])

    assert null_overhead < 0.05, f"disabled-telemetry overhead {null_overhead:.1%}"
    assert on_overhead < 0.25, f"enabled-telemetry overhead {on_overhead:.1%}"
