"""Figure 11: incremental index update vs full rebuild on update ratio.

Paper shape: incremental update time grows with the fraction of vectors
updated and crosses the flat full-rebuild line at ~20%; beyond the
crossover, rebuilding is cheaper.  The mechanism reproduced here is real:
updating an HNSW entry tombstones the old row and reinserts into a graph
that is already dense (and accumulating tombstones), so per-update cost
exceeds per-insert cost during a fresh batch build.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.bench import bench_scale, cached_system, format_table
from repro.datasets import make_sift_like
from repro.index import HNSWIndex

from .conftest import record_table

RATIOS = (0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0)


@pytest.fixture(scope="module")
def base_index_and_data():
    scale = bench_scale()
    n = max(2_000, scale.vector_count // 4)
    dataset = make_sift_like(n, num_queries=1, seed=21)

    def build():
        index = HNSWIndex(dataset.dim, dataset.metric, M=16, ef_construction=128)
        start = time.perf_counter()
        index.update_items(np.arange(n), dataset.vectors)
        build_seconds = time.perf_counter() - start
        return index, dataset.vectors, build_seconds

    return cached_system(f"fig11-base-{scale.name}-{n}", build)


def test_fig11_incremental_update_vs_rebuild(benchmark, base_index_and_data):
    base_index, vectors, rebuild_seconds = base_index_and_data
    n = len(vectors)
    rng = np.random.default_rng(99)

    rows = []
    update_times = {}
    for ratio in RATIOS:
        count = max(1, int(ratio * n))
        ids = rng.choice(n, size=count, replace=False)
        new_vectors = vectors[ids] + rng.standard_normal(
            (count, vectors.shape[1])
        ).astype(np.float32)
        # The vacuum's index-merge path: clone the snapshot, fold deltas in.
        clone = pickle.loads(pickle.dumps(base_index))
        start = time.perf_counter()
        clone.update_items(ids.tolist(), new_vectors)
        elapsed = time.perf_counter() - start
        update_times[ratio] = elapsed
        rows.append(
            [
                f"{ratio:.0%}",
                round(elapsed, 2),
                round(rebuild_seconds, 2),
                "update" if elapsed < rebuild_seconds else "rebuild",
            ]
        )

    record_table(
        "fig11",
        format_table(
            ["update ratio", "incremental update (s)", "full rebuild (s)", "cheaper"],
            rows,
            title=f"Figure 11 — incremental update vs rebuild ({n} SIFT-like vectors)",
        ),
    )

    # Shape: update time increases with the ratio ...
    times = [update_times[r] for r in RATIOS]
    assert times == sorted(times), times
    # ... small updates clearly beat a rebuild ...
    assert update_times[0.01] < 0.3 * rebuild_seconds
    assert update_times[0.05] < rebuild_seconds
    # ... and a crossover exists somewhere below 100% (paper: ~20%).
    assert update_times[1.0] > rebuild_seconds

    small_ids = rng.choice(n, size=16, replace=False)
    small_vecs = vectors[small_ids]

    def tiny_update():
        clone = pickle.loads(pickle.dumps(base_index))
        clone.update_items(small_ids.tolist(), small_vecs)

    benchmark.pedantic(tiny_update, rounds=1, iterations=1)
