"""Distance-kernel layer throughput bench (single-query HNSW + fused beams).

Measures the kernelized :meth:`HNSWIndex.topk_search` against the pre-kernel
baseline preserved in :mod:`repro.index.reference` — same graph, same ``ef``,
same queries; only the distance math (norm caches + query context vs per-hop
``diff``/norm recomputation) and the layer-search inner loop (vectorized
admission vs per-neighbour Python) differ.  Also reports the fused
:meth:`topk_search_multi` lockstep-beam throughput over the same query set.

Budgets (asserted):

- kernelized single-query search must reach >= 1.5x the reference-kernel
  throughput;
- recall@k must be unchanged (within 0.5% absolute — the two formulations
  differ by float wobble on near-ties, nothing else);
- kernel distances must agree with :func:`repro.types.batch_distances` within
  1e-4 relative tolerance on every reported neighbour.

Results go to ``bench_results/BENCH_kernels.json``.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import bench_scale, cached_system
from repro.datasets import make_sift_like
from repro.index.hnsw import HNSWIndex
from repro.index.reference import reference_topk_search
from repro.types import batch_distances

K = 10
EF = 48
TRIALS = 9
RESULTS_DIR = Path("bench_results")


@pytest.fixture(scope="module")
def subject():
    scale = bench_scale()
    n = max(2_000, scale.vector_count // 4)
    dataset = make_sift_like(n, num_queries=64, seed=67).with_ground_truth(K)

    def build():
        index = HNSWIndex(dim=dataset.dim, metric=dataset.metric, M=16,
                          ef_construction=128, seed=7)
        index.update_items(np.arange(n, dtype=np.int64), dataset.vectors)
        return index

    index = cached_system(f"kernels-hnsw-{scale.name}-{n}", build)
    return index, dataset


def timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def recall_at_k(result_ids, gt_ids):
    hits = 0
    for got, expected in zip(result_ids, gt_ids):
        hits += len(set(got) & set(int(i) for i in expected[:K]))
    return hits / (len(result_ids) * K)


def test_kernel_search_throughput(subject):
    index, dataset = subject
    queries = dataset.queries

    def run_kernel():
        return [index.topk_search(q, K, ef=EF) for q in queries]

    scratch: dict = {}

    def run_reference():
        return [
            reference_topk_search(index, q, K, ef=EF, _scratch=scratch)
            for q in queries
        ]

    def run_fused():
        return index.topk_search_multi(queries, K, ef=EF)

    # Warm every cache (numpy, BLAS threads, kernel norm caches) untimed.
    kernel_results = run_kernel()
    reference_results = run_reference()
    fused_results = run_fused()

    kernel_times: list[float] = []
    reference_times: list[float] = []
    fused_times: list[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # Interleaved round-robin trials so clock/thermal drift hits every
        # mode equally (BENCH_telemetry methodology).  Each trial's three
        # runs execute back-to-back under the same machine state, so the
        # *paired* ratio within a trial is robust to load shifts that move
        # every mode together; the median across trials then rejects
        # trials where a scheduler burst hit one mode mid-run.
        for _ in range(TRIALS):
            gc.collect()
            kernel_times.append(timed(run_kernel))
            reference_times.append(timed(run_reference))
            fused_times.append(timed(run_fused))
    finally:
        if gc_was_enabled:
            gc.enable()

    t_kernel = min(kernel_times)
    t_reference = min(reference_times)
    t_fused = min(fused_times)
    speedup = float(np.median(np.asarray(reference_times) / np.asarray(kernel_times)))
    fused_speedup = float(np.median(np.asarray(reference_times) / np.asarray(fused_times)))

    kernel_recall = recall_at_k([r.ids for r in kernel_results], dataset.gt_ids)
    reference_recall = recall_at_k([r.ids for r in reference_results], dataset.gt_ids)
    fused_recall = recall_at_k([r.ids for r in fused_results], dataset.gt_ids)

    # Kernel distances must agree with the shared reference formulation on
    # every reported neighbour (relative tolerance: SIFT-scale squared
    # distances reach ~1e5, so absolute comparison would be meaningless).
    max_rel_err = 0.0
    for query, result in zip(queries, kernel_results):
        if not len(result):
            continue
        rows = [index._id_to_row[int(i)] for i in result.ids]
        exact = batch_distances(query, index._vectors[rows], index.metric)
        err = np.abs(result.distances.astype(np.float64) - exact.astype(np.float64))
        denom = np.maximum(np.abs(exact.astype(np.float64)), 1.0)
        max_rel_err = max(max_rel_err, float((err / denom).max()))

    payload = {
        "scale": bench_scale().name,
        "num_vectors": len(dataset),
        "num_queries": len(queries),
        "k": K,
        "ef": EF,
        "trials": TRIALS,
        "seconds": {
            "kernel": t_kernel,
            "reference": t_reference,
            "fused_multi": t_fused,
        },
        "qps": {
            "kernel": len(queries) / t_kernel,
            "reference": len(queries) / t_reference,
            "fused_multi": len(queries) / t_fused,
        },
        "speedup_kernel_vs_reference": speedup,
        "speedup_fused_vs_reference": fused_speedup,
        "speedup_estimator": "median of paired interleaved trial ratios",
        "recall_at_k": {
            "kernel": kernel_recall,
            "reference": reference_recall,
            "fused_multi": fused_recall,
        },
        "max_relative_distance_error": max_rel_err,
        "budget": {
            "min_speedup": 1.5,
            "max_recall_drop": 0.005,
            "max_relative_distance_error": 1e-4,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_kernels.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"\nkernel {len(queries) / t_kernel:,.0f} QPS  "
        f"reference {len(queries) / t_reference:,.0f} QPS  "
        f"fused {len(queries) / t_fused:,.0f} QPS  "
        f"speedup {speedup:.2f}x (fused {fused_speedup:.2f}x)  "
        f"recall kernel {kernel_recall:.3f} / reference {reference_recall:.3f} "
        f"/ fused {fused_recall:.3f}  max rel dist err {max_rel_err:.2e}"
    )

    assert speedup >= 1.5, (
        f"kernelized search reached only {speedup:.2f}x the reference-kernel "
        f"throughput (budget 1.5x)"
    )
    assert kernel_recall >= reference_recall - 0.005, (
        f"kernel recall {kernel_recall:.3f} dropped below reference "
        f"{reference_recall:.3f}"
    )
    assert fused_recall >= reference_recall - 0.005, (
        f"fused recall {fused_recall:.3f} dropped below reference "
        f"{reference_recall:.3f}"
    )
    assert max_rel_err <= 1e-4, (
        f"kernel distances diverge from batch_distances by {max_rel_err:.2e} "
        f"relative (budget 1e-4)"
    )
