"""PQ / tiered-storage benchmark: memory-vs-recall frontier and exactness.

Measures the quantized tiered path on SIFT-like data:

1. **Frontier sweep** — for ``m`` in {8, 16, 32} subspaces, train a PQ
   codebook, encode the full dataset, and report (a) the memory reduction
   of the quantized representation (codes + codebook vs raw float32 rows)
   and (b) recall@10 of the two-phase search (ADC candidate scan with
   ``k·rerank_factor`` inflation, exact rerank on raw rows) against exact
   ground truth, alongside the ADC-only recall that the rerank recovers
   from.
2. **End-to-end exactness** — a tiered :class:`TigerVectorDB` with (a) a
   budget nothing exceeds must answer bit-identically to the same store
   without tiering (off-by-default guarantee), and (b) a zero budget
   (everything cold) must keep recall@10 above the budgeted floor.

Budgets (asserted):

- some swept ``m`` reaches recall@10 >= 0.95 *with* rerank;
- at that operating point the quantized representation is >= 8x smaller
  than raw (>= 4x at smoke scale, where the fixed 128 KiB codebook is
  amortized over only 2k vectors);
- the under-budget tiered database returns byte-identical results.

Results go to ``bench_results/BENCH_pq.json``.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Attribute, AttrType, Metric, TigerVectorDB
from repro.bench import bench_scale, dataset_for
from repro.core.search import vector_search_merged
from repro.index.pq import PQCodebook, PQCodes, PQSearchConfig
from repro.types import batch_distances

K = 10
SWEEP_RERANK = (4, 16, 64)
SWEEP_M = (8, 16, 32)
TRIALS = 5
RESULTS_DIR = Path("bench_results")


@pytest.fixture(scope="module")
def dataset():
    return dataset_for("sift")


def recall_at_10(result_rows: list[np.ndarray], gt_ids: np.ndarray) -> float:
    hits = 0
    for got, expected in zip(result_rows, gt_ids):
        hits += len(set(int(i) for i in got) & set(int(i) for i in expected[:K]))
    return hits / (len(result_rows) * K)


def adc_topk(kernel, n: int, query: np.ndarray, k: int) -> np.ndarray:
    ctx = kernel.query(query)
    dists = kernel.distances_prefix(ctx, n)
    if k >= n:
        return np.argsort(dists, kind="stable")
    part = np.argpartition(dists, k - 1)[:k]
    return part[np.argsort(dists[part], kind="stable")]


def two_phase_topk(kernel, dataset, query: np.ndarray, k: int, rerank_factor: int) -> np.ndarray:
    cand = adc_topk(kernel, len(dataset), query, min(k * rerank_factor, len(dataset)))
    exact = batch_distances(query, dataset.vectors[cand], dataset.metric)
    return cand[np.argsort(exact, kind="stable")[:k]]


def timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_pq_memory_recall_frontier(dataset):
    scale = bench_scale()
    n = len(dataset)
    queries = dataset.queries
    raw_bytes = int(dataset.vectors.nbytes)
    min_reduction = 4.0 if scale.name == "smoke" else 8.0

    frontier = []
    best = None
    for m in SWEEP_M:
        codebook = PQCodebook.train(
            dataset.vectors[: min(n, 8192)], m, metric=dataset.metric, iterations=8
        )
        pq = PQCodes.from_vectors(codebook, dataset.vectors, dataset.metric)
        kernel = pq.kernel(dataset.metric)
        quantized_bytes = pq.memory_bytes
        reduction = raw_bytes / quantized_bytes

        adc_rows = [adc_topk(kernel, n, q, K) for q in queries]
        adc_recall = recall_at_10(adc_rows, dataset.gt_ids)
        rerank_recalls = {}
        for factor in SWEEP_RERANK:
            rows = [two_phase_topk(kernel, dataset, q, K, factor) for q in queries]
            rerank_recalls[factor] = recall_at_10(rows, dataset.gt_ids)

        # Interleaved GC-disabled scan timings (ADC vs exact full scan).
        def run_adc():
            for q in queries:
                adc_topk(kernel, n, q, K)

        def run_exact():
            for q in queries:
                batch_distances(q, dataset.vectors, dataset.metric)

        run_adc(), run_exact()  # warm
        adc_times, exact_times = [], []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(TRIALS):
                gc.collect()
                adc_times.append(timed(run_adc))
                exact_times.append(timed(run_exact))
        finally:
            if gc_was_enabled:
                gc.enable()

        passing = [f for f in SWEEP_RERANK if rerank_recalls[f] >= 0.95]
        point = {
            "m": m,
            "code_bytes_per_vector": m,
            "quantized_bytes": quantized_bytes,
            "memory_reduction": reduction,
            "recall_at_10_adc": adc_recall,
            "recall_at_10_rerank": {str(f): rerank_recalls[f] for f in SWEEP_RERANK},
            "min_rerank_factor_for_0.95": passing[0] if passing else None,
            "adc_scan_qps": len(queries) / min(adc_times),
            "exact_scan_qps": len(queries) / min(exact_times),
        }
        frontier.append(point)
        if passing and (best is None or reduction > best["memory_reduction"]):
            best = {**point, "rerank_factor": passing[0]}

    payload = {
        "scale": scale.name,
        "num_vectors": n,
        "num_queries": len(queries),
        "dim": dataset.dim,
        "k": K,
        "rerank_factors": list(SWEEP_RERANK),
        "trials": TRIALS,
        "raw_bytes": raw_bytes,
        "frontier": frontier,
        "best_operating_point": best,
        "budget": {
            "min_recall_at_10_with_rerank": 0.95,
            "min_memory_reduction": min_reduction,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_pq.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    for point in frontier:
        rerank_desc = " ".join(
            f"rf{f}={point['recall_at_10_rerank'][str(f)]:.3f}" for f in SWEEP_RERANK
        )
        print(
            f"\nm={point['m']:>2}  {point['memory_reduction']:5.1f}x smaller  "
            f"recall@10 adc {point['recall_at_10_adc']:.3f} -> {rerank_desc}  "
            f"adc {point['adc_scan_qps']:,.0f} QPS / exact {point['exact_scan_qps']:,.0f} QPS"
        )

    assert best is not None, (
        "no swept (m, rerank_factor) reached recall@10 >= 0.95: "
        + ", ".join(
            f"m={p['m']}: {max(p['recall_at_10_rerank'].values()):.3f}"
            for p in frontier
        )
    )
    assert best["memory_reduction"] >= min_reduction, (
        f"best operating point (m={best['m']}) reduces memory only "
        f"{best['memory_reduction']:.1f}x (budget {min_reduction}x)"
    )


def _make_tier_db(n: int, dim: int, segment_size: int):
    rng = np.random.default_rng(5)
    db = TigerVectorDB(segment_size=segment_size)
    db.schema.create_vertex_type(
        "Item", [Attribute("id", AttrType.INT, primary_key=True)]
    )
    db.schema.add_embedding_attribute(
        "Item", "emb", dimension=dim, model="bench", metric=Metric.L2
    )
    vectors = rng.standard_normal((n, dim)).astype(np.float32)
    db.bulk_load_vertices("Item", [{"id": i} for i in range(n)])
    db.bulk_load_embeddings("Item", "emb", list(range(n)), vectors)
    db.vacuum()
    return db, vectors


def _merged_ids(db, query, k):
    with db.snapshot() as snap:
        return vector_search_merged(db.service, snap, ["Item.emb"], query, k)


def test_tiered_db_identity_and_cold_recall():
    scale = bench_scale()
    n = max(1_000, scale.vector_count // 10)
    dim = 32
    db, vectors = _make_tier_db(n, dim, segment_size=max(256, n // 4))
    try:
        rng = np.random.default_rng(9)
        queries = rng.standard_normal((20, dim)).astype(np.float32)
        baseline = [_merged_ids(db, q, K) for q in queries]

        # Under an infinite budget the tiered database must be a no-op:
        # same members, same distances, bit for bit.
        db.enable_tiering(budget_bytes=2**40, pq=PQSearchConfig(m=8))
        db.vacuum()
        tiered = [_merged_ids(db, q, K) for q in queries]
        assert tiered == baseline

        # Zero budget: everything demotes; two-phase recall stays high.
        db.tier_manager.budget_bytes = 0
        db.vacuum()
        store = db.service.store("Item", "emb")
        assert all(
            s.current_snapshot().tier == "cold" for s in store.segments()
        )
        hits = total = 0
        for q in queries:
            got = {vid for _, _, vid in _merged_ids(db, q, K)}
            dists = ((vectors - q) ** 2).sum(axis=1)
            want = {
                db.vid_for("Item", int(i))
                for i in np.argsort(dists, kind="stable")[:K]
            }
            hits += len(got & want)
            total += K
        cold_recall = hits / total
        print(f"\ncold-tier recall@10 over {len(queries)} queries: {cold_recall:.3f}")
        assert cold_recall >= 0.95
    finally:
        db.close()
