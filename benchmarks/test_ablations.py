"""Ablations of the design decisions DESIGN.md calls out.

Not a paper table — these quantify the *reasons* behind the paper's design
choices, on this implementation:

1. **Pre-filter vs post-filter** (Sec. 5.2): post-filtering needs repeated
   enlarged searches as selectivity drops; pre-filtering is one call.
2. **Brute-force threshold** (Sec. 5.1): under a highly selective filter, a
   brute-force scan of the valid points beats forcing HNSW past an
   almost-all-invalid neighbourhood.
3. **Diversity heuristic** (Sec. 4.4 / index choice): disabling Algorithm-4
   neighbour selection (Lucene-style graphs) caps recall on clustered data.
4. **Index choice** (Sec. 4.4 extension): HNSW vs IVF-Flat vs SQ8 vs FLAT —
   the quantization-based indexes integrate behind the same four functions.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import bench_scale, cached_system, format_table, recall_at_k
from repro.bench.harness import embedding_store_for
from repro.datasets import make_sift_like
from repro.index import (
    Bitmap,
    BruteForceIndex,
    HNSWIndex,
    IVFFlatIndex,
    SQ8FlatIndex,
)
from repro.types import Metric

from .conftest import record_table

K = 10


@pytest.fixture(scope="module")
def dataset():
    scale = bench_scale()
    n = max(2_000, scale.vector_count // 4)
    return make_sift_like(n, num_queries=25, seed=31).with_ground_truth(K)


@pytest.fixture(scope="module")
def hnsw_index(dataset):
    scale = bench_scale()

    def build():
        index = HNSWIndex(dataset.dim, dataset.metric, M=16, ef_construction=128)
        index.update_items(np.arange(len(dataset)), dataset.vectors)
        return index

    return cached_system(f"ablation-hnsw-{scale.name}-{len(dataset)}", build)


def test_ablation_prefilter_vs_postfilter(benchmark, dataset, hnsw_index):
    """TigerVector's strategy (pre-filter bitmap + brute-force threshold)
    vs the post-filter approach, across selectivities.

    Raw pre-filtered HNSW also degrades at low selectivity (it must fight
    past invalid neighbourhoods) — that is exactly why the engine flips to
    brute force below the valid-count threshold (Sec. 5.1).  The comparison
    therefore uses the engine's segment search as the pre-filter side.
    """
    scale = bench_scale()
    store = cached_system(
        f"ablation-store-{scale.name}-{len(dataset)}",
        lambda: embedding_store_for(dataset, max(512, len(dataset) // 4)),
    )
    n = store.segment_size  # evaluate within one segment
    rows = []
    ratio_at = {}
    for selectivity in (0.5, 0.1, 0.02):
        allowed = np.zeros(n, dtype=bool)
        allowed[:: int(1 / selectivity)] = True
        bitmap = Bitmap.wrap(allowed)

        def engine_strategy(q):
            return store.search_segment(0, q, K, 1, ef=128, bitmap=bitmap)

        def postfilter(q):
            index = store.segment(0).index
            fetch = K
            while True:
                result = index.topk_search(q, fetch, ef=max(128, fetch))
                survivors = [i for i in result.ids if allowed[i]]
                if len(survivors) >= K or fetch >= n:
                    return survivors[:K]
                fetch = min(fetch * 4, n)

        pre = post = 0.0
        for q in dataset.queries[:10]:
            start = time.perf_counter()
            engine_strategy(q)
            pre += time.perf_counter() - start
            start = time.perf_counter()
            postfilter(q)
            post += time.perf_counter() - start
        ratio = post / pre
        ratio_at[selectivity] = ratio
        rows.append([f"{selectivity:.0%}", round(pre * 100, 2), round(post * 100, 2), round(ratio, 2)])
    record_table(
        "ablation_prefilter",
        format_table(
            ["selectivity", "engine pre-filter (ms/10q)", "post-filter (ms/10q)", "post/pre"],
            rows,
            title="Ablation — engine pre-filter strategy vs post-filter by selectivity",
        ),
    )
    # The engine strategy wins at low selectivity (the BF threshold kicks
    # in) and its advantage grows as the filter gets more selective.
    assert ratio_at[0.02] > 1.5
    assert ratio_at[0.02] > ratio_at[0.5]
    benchmark(lambda: hnsw_index.topk_search(dataset.queries[0], K, ef=64))


def test_ablation_bruteforce_threshold(benchmark, dataset):
    """Below the valid-point threshold, brute force beats the index.

    The asserted mechanics are scale-independent: brute-force cost grows
    with the valid count while the index cost does not, and under a highly
    selective filter brute force wins by a wide margin.  (The absolute
    crossover point moves with segment size; pure-Python HNSW overhead puts
    it higher than a C++ engine's.)
    """
    scale = bench_scale()
    store = cached_system(
        f"ablation-store-{scale.name}-{len(dataset)}",
        lambda: embedding_store_for(dataset, max(512, len(dataset) // 4)),
    )
    seg_size = store.segment_size
    rows = []
    bf_times = {}
    hnsw_times = {}
    for valid_count in (16, 64, 256, seg_size):
        bitmap = Bitmap.from_offsets(
            seg_size, range(0, min(valid_count, seg_size))
        )
        bf = index = 0.0
        for q in dataset.queries[:10]:
            start = time.perf_counter()
            store.search_segment(0, q, K, 1, bitmap=bitmap, bf_threshold=seg_size + 1)
            bf += time.perf_counter() - start
            start = time.perf_counter()
            store.search_segment(0, q, K, 1, ef=128, bitmap=bitmap, bf_threshold=0)
            index += time.perf_counter() - start
        bf_times[valid_count] = bf
        hnsw_times[valid_count] = index
        rows.append(
            [valid_count, round(bf * 100, 3), round(index * 100, 3),
             "brute force" if bf < index else "index"]
        )
    record_table(
        "ablation_bf_threshold",
        format_table(
            ["valid points", "brute force (ms/10q)", "HNSW (ms/10q)", "faster"],
            rows,
            title="Ablation — brute-force flip under selective filters "
            f"(segment size {seg_size})",
        ),
    )
    # highly selective filter: brute force wins decisively
    assert bf_times[16] < hnsw_times[16] / 3
    # brute-force cost grows with the valid count; the index's does not
    assert bf_times[seg_size] > bf_times[16]
    assert hnsw_times[seg_size] < hnsw_times[16] * 3
    benchmark(lambda: store.search_segment(0, dataset.queries[0], K, 1, ef=64))


def test_ablation_diversity_heuristic(benchmark, dataset):
    """Lucene-style pruning (no Algorithm 4) caps recall on clustered data."""
    scale = bench_scale()

    def build(heuristic: bool):
        index = HNSWIndex(
            dataset.dim, dataset.metric, M=16, ef_construction=128,
            prune_heuristic=heuristic,
        )
        index.update_items(np.arange(len(dataset)), dataset.vectors)
        return index

    with_h = cached_system(
        f"ablation-hnsw-{scale.name}-{len(dataset)}", lambda: build(True)
    )
    without_h = cached_system(
        f"ablation-hnsw-noheur-{scale.name}-{len(dataset)}", lambda: build(False)
    )
    rows = []
    recalls = {}
    for ef in (16, 64, 256):
        for label, index in (("with heuristic", with_h), ("without", without_h)):
            ids = [index.topk_search(q, K, ef=ef).ids.tolist() for q in dataset.queries]
            recalls[(label, ef)] = recall_at_k(ids, dataset.gt_ids, K)
            rows.append([label, ef, round(recalls[(label, ef)], 4)])
    record_table(
        "ablation_heuristic",
        format_table(
            ["build", "ef", "recall@10"],
            rows,
            title="Ablation — diversity-heuristic neighbour selection",
        ),
    )
    assert recalls[("with heuristic", 256)] >= recalls[("without", 256)]
    benchmark(lambda: with_h.topk_search(dataset.queries[0], K, ef=64))


def test_ablation_index_choice(benchmark, dataset):
    """HNSW vs IVF-Flat vs SQ8 vs FLAT behind the same interface."""
    scale = bench_scale()
    n = len(dataset)

    def build_all():
        indexes = {}
        timings = {}
        for name, factory in (
            ("HNSW", lambda: HNSWIndex(dataset.dim, dataset.metric, M=16, ef_construction=128)),
            ("IVF_FLAT", lambda: IVFFlatIndex(dataset.dim, dataset.metric, nlist=32, nprobe=4)),
            ("SQ8", lambda: SQ8FlatIndex(dataset.dim, dataset.metric)),
            ("FLAT", lambda: BruteForceIndex(dataset.dim, dataset.metric)),
        ):
            index = factory()
            start = time.perf_counter()
            index.update_items(np.arange(n), dataset.vectors)
            timings[name] = time.perf_counter() - start
            indexes[name] = index
        return indexes, timings

    indexes, build_times = cached_system(
        f"ablation-indexes-{scale.name}-{n}", build_all
    )
    rows = []
    measured = {}
    dist_per_query = {}
    for name, index in indexes.items():
        ids = []
        elapsed = 0.0
        dists_before = index.stats.num_distance_computations
        for q in dataset.queries:
            start = time.perf_counter()
            result = index.topk_search(q, K, ef=64)
            elapsed += time.perf_counter() - start
            ids.append(result.ids.tolist())
        dist_per_query[name] = (
            index.stats.num_distance_computations - dists_before
        ) / len(dataset.queries)
        recall = recall_at_k(ids, dataset.gt_ids, K)
        per_query_ms = elapsed / len(dataset.queries) * 1000
        measured[name] = (recall, per_query_ms)
        rows.append(
            [name, round(build_times[name], 2), round(recall, 4),
             round(per_query_ms, 3), round(dist_per_query[name])]
        )
    record_table(
        "ablation_index_choice",
        format_table(
            ["index", "build (s)", "recall@10", "search (ms/query)", "distances/query"],
            rows,
            title=f"Ablation — index choice ({n} SIFT-like vectors)",
        ),
    )
    assert measured["FLAT"][0] > 0.999  # exact
    assert measured["HNSW"][0] > 0.8
    # The index's win is in distance computations (scale-independent; pure-
    # Python graph traversal overhead hides it in wall time at this n).
    assert dist_per_query["HNSW"] < 0.5 * dist_per_query["FLAT"]
    benchmark(lambda: indexes["HNSW"].topk_search(dataset.queries[0], K, ef=64))
