"""Serving-layer micro-batching throughput bench.

Drives two identical :class:`QueryServer` instances — one with the dynamic
micro-batcher enabled, one per-query — with closed-loop client threads at
concurrency 1, 8, and 32, both with the result cache OFF so every request
does real work.  Reports throughput and latency percentiles per mode and
concurrency, plus recall@k against exact ground truth for both modes.

Budgets (asserted):

- at concurrency 32 the fused path must reach >= 2x the unbatched
  throughput (the batcher coalesces same-attribute top-k requests into one
  fused segment scan; per-query HNSW pays pure-Python graph walks per
  request);
- recall@k of the batched path must not drop below the unbatched path
  (the fused kernel is exact brute force, so it can only match or beat
  the per-query HNSW recall).

At concurrency 1 the batcher has nothing to coalesce and pays its window
wait; that number is reported (not asserted) so the tradeoff stays visible.
Results go to ``bench_results/BENCH_serve.json``.
"""

from __future__ import annotations

import gc
import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import bench_scale, cached_system
from repro.bench.harness import embedding_store_for
from repro.core.database import TigerVectorDB
from repro.datasets import make_sift_like
from repro.graph.schema import Attribute
from repro.serve import QueryServer, ServeConfig
from repro.types import AttrType

K = 10
NUM_QUERIES = 96
CONCURRENCIES = (1, 8, 32)
TRIALS = 3
RESULTS_DIR = Path("bench_results")
ATTR = ["Item.emb"]


@pytest.fixture(scope="module")
def subject():
    scale = bench_scale()
    n = max(2_000, scale.vector_count // 4)
    segment_size = max(256, n // 8)
    dataset = make_sift_like(n, num_queries=NUM_QUERIES, seed=41)
    dataset = dataset.with_ground_truth(K)
    store = cached_system(
        f"serve-batching-{scale.name}-{n}",
        lambda: embedding_store_for(dataset, segment_size),
    )
    db = TigerVectorDB(segment_size=segment_size)
    db.schema.create_vertex_type(
        "Item", [Attribute("id", AttrType.INT, primary_key=True)]
    )
    db.schema.add_embedding_attribute(
        "Item", "emb", dimension=dataset.dim, model=dataset.name,
        metric=dataset.metric,
    )
    db.bulk_load_vertices("Item", [{"id": i} for i in range(n)])
    # Reuse the cached HNSW build instead of re-ingesting n vectors.
    db.service.attach_store("Item", "emb", store)
    yield db, dataset
    db.close()


def drive(server, queries, concurrency):
    """Closed-loop clients: each thread owns a slice of the query stream."""
    latencies = [[] for _ in range(concurrency)]
    results = {}

    def client(worker_id):
        for qi in range(worker_id, len(queries), concurrency):
            start = time.perf_counter()
            vset = server.search(ATTR, queries[qi], K)
            latencies[worker_id].append(time.perf_counter() - start)
            results[qi] = vset

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(concurrency)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    flat = sorted(lat for lane in latencies for lat in lane)
    return {
        "wall": wall,
        "qps": len(queries) / wall,
        "p50": flat[len(flat) // 2],
        "p95": flat[min(len(flat) - 1, int(len(flat) * 0.95))],
        "results": results,
    }


def recall_at_k(results, gt_ids):
    hits = 0
    for qi, vset in results.items():
        got = {vid for _, vid in vset}
        hits += len(got & set(int(i) for i in gt_ids[qi][:K]))
    return hits / (len(results) * K)


def test_serve_batching_throughput(subject):
    db, dataset = subject
    queries = dataset.queries

    base = dict(workers=4, enable_cache=False, max_queue_depth=1024)
    batched_config = ServeConfig(
        enable_batching=True, batch_window_seconds=0.002, max_batch=32,
        min_fused=4, **base,
    )
    unbatched_config = ServeConfig(enable_batching=False, **base)

    payload = {"scale": bench_scale().name, "num_queries": NUM_QUERIES,
               "k": K, "trials": TRIALS, "concurrency": {}}
    recalls = {}

    with QueryServer(db, batched_config) as batched, \
            QueryServer(db, unbatched_config) as unbatched:
        # Warm both pipelines (numpy caches, index pages, thread startup).
        drive(batched, queries[:16], 8)
        drive(unbatched, queries[:16], 8)

        for concurrency in CONCURRENCIES:
            best = {"batched": None, "unbatched": None}
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                # Interleave modes round-robin so drift hits both equally;
                # min-of-N (by wall time) filters scheduler noise.
                for _ in range(TRIALS):
                    gc.collect()
                    for name, server in (
                        ("batched", batched), ("unbatched", unbatched)
                    ):
                        run = drive(server, queries, concurrency)
                        if best[name] is None or run["wall"] < best[name]["wall"]:
                            best[name] = run
            finally:
                if gc_was_enabled:
                    gc.enable()
            payload["concurrency"][str(concurrency)] = {
                name: {
                    "qps": run["qps"],
                    "p50_seconds": run["p50"],
                    "p95_seconds": run["p95"],
                }
                for name, run in best.items()
            }
            if concurrency == max(CONCURRENCIES):
                recalls = {
                    name: recall_at_k(run["results"], dataset.gt_ids)
                    for name, run in best.items()
                }

    speedup = (
        payload["concurrency"][str(max(CONCURRENCIES))]["batched"]["qps"]
        / payload["concurrency"][str(max(CONCURRENCIES))]["unbatched"]["qps"]
    )
    payload["speedup_at_max_concurrency"] = speedup
    payload["recall_at_k"] = recalls
    payload["budget"] = {"min_speedup_at_32": 2.0}

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    for concurrency in CONCURRENCIES:
        entry = payload["concurrency"][str(concurrency)]
        print(
            f"\nconcurrency {concurrency:>2}: "
            f"batched {entry['batched']['qps']:,.0f} QPS "
            f"(p95 {entry['batched']['p95_seconds'] * 1e3:.1f}ms)  "
            f"unbatched {entry['unbatched']['qps']:,.0f} QPS "
            f"(p95 {entry['unbatched']['p95_seconds'] * 1e3:.1f}ms)"
        )
    print(
        f"speedup at {max(CONCURRENCIES)}: {speedup:.2f}x  "
        f"recall batched {recalls['batched']:.3f} vs "
        f"unbatched {recalls['unbatched']:.3f}"
    )

    assert speedup >= 2.0, (
        f"fused batching reached only {speedup:.2f}x unbatched throughput "
        f"at concurrency {max(CONCURRENCIES)}"
    )
    assert recalls["batched"] >= recalls["unbatched"] - 1e-9, (
        f"batched recall {recalls['batched']:.3f} fell below "
        f"unbatched {recalls['unbatched']:.3f}"
    )
