"""Benchmark suite: one module per table/figure in the paper's evaluation."""
