"""Figure 10: data-size scalability — 10x more vectors on a fixed cluster.

Paper shape: scaling SIFT100M -> SIFT1B (10x data, 10x segments) on 8
machines drops QPS roughly proportionally — to ~10% at high-recall points,
but only to ~14.75% at the cheapest point (ef=12) because the larger
dataset raises CPU utilization (compute amortizes fixed per-request costs).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import bench_scale, cached_system, format_table
from repro.bench.harness import embedding_store_for
from repro.cluster import ClosedLoopLoadGenerator, ClusterSimulator, make_cluster
from repro.datasets import make_sift_like

from .conftest import record_table

K = 10
EF_SWEEP = (12, 32, 96)
RATIO = 10  # the paper's 100M -> 1B ratio, preserved at laptop scale


@pytest.fixture(scope="module")
def stores():
    scale = bench_scale()
    base_n = max(2_000, scale.vector_count // 4)
    big_n = base_n * RATIO
    segment_size = max(256, base_n // 4)  # 10x data -> exactly 10x segments
    small_ds = make_sift_like(base_n, num_queries=25, seed=11)
    big_ds = make_sift_like(big_n, num_queries=25, seed=11)
    small = cached_system(
        f"fig10-small-{scale.name}-{base_n}",
        lambda: embedding_store_for(small_ds, segment_size),
    )
    big = cached_system(
        f"fig10-big-{scale.name}-{big_n}",
        lambda: embedding_store_for(big_ds, segment_size),
    )
    return (small, small_ds), (big, big_ds)


def measure_samples(store, dataset, ef, num_queries=20):
    samples = []
    for q in dataset.queries[:num_queries]:
        per_segment = {}
        for seg_no in range(store.num_segments):
            start = time.perf_counter()
            store.search_segment(seg_no, q, K, snapshot_tid=1, ef=ef)
            per_segment[seg_no] = time.perf_counter() - start
        samples.append(per_segment)
    return samples


def test_fig10_data_scalability(benchmark, stores):
    (small, small_ds), (big, big_ds) = stores
    assert big.num_segments == RATIO * small.num_segments

    rows = []
    retention = {}
    for ef in EF_SWEEP:
        qps = {}
        for label, store, dataset in (
            ("base", small, small_ds),
            (f"{RATIO}x", big, big_ds),
        ):
            samples = measure_samples(store, dataset, ef)
            sim = ClusterSimulator(
                make_cluster(8, store.num_segments, cores=8),
                dim=dataset.dim,
                k=K,
            )
            gen = ClosedLoopLoadGenerator(sim, connections=320)
            qps[label] = gen.run(samples, duration_seconds=3.0).qps
        kept = qps[f"{RATIO}x"] / qps["base"]
        retention[ef] = kept
        rows.append(
            [ef, round(qps["base"]), round(qps[f"{RATIO}x"]), f"{kept:.1%}"]
        )

    record_table(
        "fig10",
        format_table(
            ["ef", f"QPS @ {len(small_ds)}", f"QPS @ {len(big_ds)}", "retained"],
            rows,
            title=f"Figure 10 — data-size scalability on 8 machines "
            f"({RATIO}x data, {RATIO}x segments)",
        ),
    )

    # Shape: throughput drops roughly proportionally to data size.  The
    # paper's secondary effect (the cheapest point retains the most, via
    # improved CPU utilization) is within measurement noise at laptop scale,
    # so the bench asserts the proportional band, and the retained-most
    # ordering is reported in the table rather than asserted.
    for ef, kept in retention.items():
        assert 0.05 < kept < 0.45, (ef, kept)

    benchmark(lambda: small.search_segment(0, small_ds.queries[0], K, 1, ef=32))
