"""Elastic-tier scaling benchmark: QPS vs server count, recall unchanged.

Two halves, mirroring how the elastic tier is built:

1. **Capacity scaling** on the calibrated simulator
   (:class:`SimulatedElasticServe`): segments placed by the same
   bounded-load ring assignment the live tier uses, one simulated machine
   per shard server, open-loop Poisson arrivals driven above capacity so
   reported QPS converges to fleet capacity.  Budgets (asserted): two
   servers must reach >= 1.7x single-server QPS, four servers >= 3.0x.

2. **Answer identity** on a real :class:`ElasticTier`: the same query
   stream through 1-server and 4-server tiers must produce identical
   member sets (the sharded merge is byte-identical to the unsharded
   path), so recall@k against exact ground truth is *unchanged* — both
   numbers are recorded and asserted equal.

Results go to ``bench_results/BENCH_elastic.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.database import TigerVectorDB
from repro.datasets import make_sift_like
from repro.elastic import ElasticTier, SimulatedElasticServe
from repro.graph.schema import Attribute
from repro.serve import ServeConfig
from repro.types import AttrType

K = 10
SERVER_COUNTS = (1, 2, 4)
NUM_SEGMENTS = 32
SIM_DURATION = 3.0
SIM_TARGET_QPS = 400.0
NUM_IDENTITY_QUERIES = 48
RESULTS_DIR = Path("bench_results")
ATTR = ["Item.emb"]

MIN_SPEEDUP_2 = 1.7
MIN_SPEEDUP_4 = 3.0


def build_identity_db(n: int = 1500, segment_size: int = 192):
    dataset = make_sift_like(n, num_queries=NUM_IDENTITY_QUERIES, seed=43)
    dataset = dataset.with_ground_truth(K)
    db = TigerVectorDB(segment_size=segment_size)
    db.schema.create_vertex_type(
        "Item", [Attribute("id", AttrType.INT, primary_key=True)]
    )
    db.schema.add_embedding_attribute(
        "Item", "emb", dimension=dataset.dim, model=dataset.name,
        metric=dataset.metric,
    )
    db.bulk_load_vertices("Item", [{"id": i} for i in range(n)])
    db.bulk_load_embeddings(
        "Item", "emb", list(range(n)), dataset.vectors, num_threads=2
    )
    return db, dataset


def recall_at_k(answers: list, gt_ids) -> float:
    hits = 0
    for qi, vset in enumerate(answers):
        got = {vid for _, vid in vset}
        hits += len(got & set(int(i) for i in gt_ids[qi][:K]))
    return hits / (len(answers) * K)


def test_elastic_scaling_and_recall():
    payload = {
        "num_segments": NUM_SEGMENTS,
        "sim_duration_seconds": SIM_DURATION,
        "sim_target_qps": SIM_TARGET_QPS,
        "servers": {},
    }

    # ---- half 1: open-loop Poisson capacity scaling ----------------------
    qps = {}
    for count in SERVER_COUNTS:
        sim = SimulatedElasticServe(num_servers=count, num_segments=NUM_SEGMENTS)
        counts = sim.segment_counts()
        result = sim.run_open_loop(
            duration_seconds=SIM_DURATION, target_qps=SIM_TARGET_QPS, seed=0
        )
        qps[count] = result.qps
        payload["servers"][str(count)] = {
            "qps": result.qps,
            "segment_counts": counts,
        }
    speedups = {
        str(count): qps[count] / qps[1] for count in SERVER_COUNTS if count > 1
    }
    payload["speedups"] = speedups

    # ---- half 2: real-tier identity => recall unchanged ------------------
    db, dataset = build_identity_db()
    config = ServeConfig(workers=2, enable_batching=False, enable_cache=False)
    answers = {}
    try:
        for count in (1, 4):
            with ElasticTier(db, num_servers=count, config=config) as tier:
                answers[count] = [
                    sorted(tier.search(ATTR, q, K)) for q in dataset.queries
                ]
    finally:
        db.close()
    identical = answers[1] == answers[4]
    recalls = {
        str(count): recall_at_k(answers[count], dataset.gt_ids)
        for count in (1, 4)
    }
    payload["identity_1_vs_4"] = identical
    payload["recall_at_k"] = recalls
    payload["budget"] = {
        "min_speedup_2": MIN_SPEEDUP_2,
        "min_speedup_4": MIN_SPEEDUP_4,
        "recall_unchanged": True,
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_elastic.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    for count in SERVER_COUNTS:
        entry = payload["servers"][str(count)]
        print(
            f"\n{count} server(s): {entry['qps']:,.1f} QPS "
            f"(segments/server {entry['segment_counts']})"
        )
    print(
        f"speedups: 2 servers {speedups['2']:.2f}x, 4 servers "
        f"{speedups['4']:.2f}x; recall@{K} {recalls['1']:.3f} -> "
        f"{recalls['4']:.3f} (identical: {identical})"
    )

    assert speedups["2"] >= MIN_SPEEDUP_2, (
        f"2 servers reached only {speedups['2']:.2f}x single-server QPS"
    )
    assert speedups["4"] >= MIN_SPEEDUP_4, (
        f"4 servers reached only {speedups['4']:.2f}x single-server QPS"
    )
    assert identical, "sharded answers diverged from the single-server path"
    assert recalls["1"] == recalls["4"], "recall changed with server count"
