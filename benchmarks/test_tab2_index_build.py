"""Table 2: index building time — end-to-end / data load / index build.

Paper shape: TigerVector's end-to-end time is 5.2-6.8x shorter than Neo4j
(whose Lucene pipeline builds slowly) and 1.86-2.16x shorter than Milvus
(whose raw-vector data loading path is 9.6-22.5x slower, while its index
build is comparable at ~1.07x).
"""

from __future__ import annotations

import pytest

from repro.bench import format_table

from .conftest import record_table


@pytest.mark.parametrize("ds_name", ["SIFT", "Deep"])
def test_tab2_index_build(benchmark, systems, datasets, ds_name):
    dataset = datasets[ds_name]
    timings = {}
    rows = []
    for sys_name in ("TigerVector", "Milvus", "Neo4j"):
        system = systems[(sys_name, ds_name)]
        t = {
            "data_load_seconds": system.load_seconds,
            "index_build_seconds": system.build_seconds,
            "end_to_end_seconds": system.load_seconds + system.build_seconds,
        }
        timings[sys_name] = t
        rows.append(
            [
                sys_name,
                round(t["end_to_end_seconds"], 2),
                round(t["data_load_seconds"], 3),
                round(t["index_build_seconds"], 2),
            ]
        )

    record_table(
        f"tab2_{ds_name.lower()}",
        format_table(
            ["system", "end-to-end (s)", "data load (s)", "index build (s)"],
            rows,
            title=f"Table 2 — index building time, {ds_name}-like ({len(dataset)} vectors)",
        ),
    )

    import numpy as np

    from repro.bench import bench_scale
    from repro.index import HNSWIndex

    chunk = dataset.vectors[:500]

    def build_small():
        index = HNSWIndex(dataset.dim, dataset.metric, M=16, ef_construction=64)
        index.update_items(np.arange(len(chunk)), chunk)
        return index

    if bench_scale().name == "smoke":
        benchmark.pedantic(build_small, rounds=1, iterations=1)
        return

    tv = timings["TigerVector"]
    milvus = timings["Milvus"]
    neo = timings["Neo4j"]

    # Neo4j's build is a multiple of TigerVector's (paper: 5.2-6.8x e2e).
    assert neo["index_build_seconds"] > 3.0 * tv["index_build_seconds"]
    assert neo["end_to_end_seconds"] > 3.0 * tv["end_to_end_seconds"]
    # Milvus loads data far slower (paper: 9.6-22.5x) but builds comparably.
    # (The parse-path gap compounds with row width; at this scale assert 3x.)
    assert milvus["data_load_seconds"] > 3.0 * tv["data_load_seconds"]
    assert milvus["index_build_seconds"] < 2.0 * tv["index_build_seconds"]
    # Which makes Milvus slower end to end. (The paper's 1.86-2.16x gap is
    # load-dominated at 100M rows; at laptop scale the build dominates, so we
    # assert ordering rather than the factor.)
    assert milvus["end_to_end_seconds"] > tv["end_to_end_seconds"]

    # pytest-benchmark: time a small real build (the measured quantity).
    benchmark.pedantic(build_small, rounds=1, iterations=1)
