"""Shared benchmark fixtures.

Building pure-Python HNSW indexes dominates bench time, so built systems are
cached on disk under ``.bench_cache/`` (keyed by dataset + scale + system).
The first full run builds everything; later runs load in seconds.  Control
scale with ``REPRO_BENCH_SCALE`` in {smoke, small, large} (default: small).

Bench output tables are printed and also written to ``bench_results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import bench_scale, cached_system, dataset_for
from repro.competitors import MilvusSim, Neo4jSim, NeptuneSim, TigerVectorSystem

RESULTS_DIR = Path("bench_results")

SYSTEM_FACTORIES = {
    "TigerVector": TigerVectorSystem,
    "Milvus": MilvusSim,
    "Neo4j": Neo4jSim,
    "Neptune": NeptuneSim,
}


def build_system(name: str, dataset, segment_size: int):
    factory = SYSTEM_FACTORIES[name]
    if name in ("TigerVector", "Milvus"):
        system = factory(segment_size=segment_size)
    else:
        system = factory()
    system.load_and_build(dataset)
    return system


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def datasets(scale):
    return {
        "SIFT": dataset_for("sift"),
        "Deep": dataset_for("deep"),
    }


@pytest.fixture(scope="session")
def systems(scale, datasets):
    """All four systems built on both datasets (disk-cached)."""
    out = {}
    for ds_name, dataset in datasets.items():
        for sys_name in SYSTEM_FACTORIES:
            key = f"{sys_name}-{ds_name}-{scale.name}-{len(dataset)}"
            out[(sys_name, ds_name)] = cached_system(
                key, lambda s=sys_name, d=dataset: build_system(s, d, scale.segment_size)
            )
    return out


def record_table(name: str, text: str) -> None:
    """Print a bench table and persist it for EXPERIMENTS.md."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
