"""VectorGraphRAG: the hybrid retrieval pipeline the paper advocates (Sec. 1).

Scenario: a support knowledge base where documents cite each other and are
written by engineers who own subsystems.  A plain vector RAG retrieves the
k documents nearest the question embedding; VectorGraphRAG *grounds* that
context by expanding through the knowledge graph:

1. vector search finds seed documents semantically close to the question;
2. graph traversal pulls in cited documents and other documents by the same
   owners (context a pure vector search misses);
3. a second, graph-filtered vector search ranks the expanded candidate pool.

This is query composition (paper Sec. 5.5): VectorSearch() output feeds a
graph block, whose output filters another VectorSearch().

Run:  python examples/vector_graph_rag.py
"""

import numpy as np

from repro import TigerVectorDB

DIM = 48
rng = np.random.default_rng(11)

#: (doc id, topic cluster, title) — three topics: auth, storage, networking
TOPICS = ["auth", "storage", "network"]
NUM_DOCS = 120
NUM_ENGINEERS = 12


def embed(topic_id: int) -> np.ndarray:
    """A toy embedding model: topic centroid + noise."""
    centroid = np.zeros(DIM, dtype=np.float32)
    centroid[topic_id * 16:(topic_id + 1) * 16] = 2.0
    return centroid + rng.standard_normal(DIM).astype(np.float32) * 0.6


def main() -> None:
    db = TigerVectorDB(segment_size=64)
    db.run_gsql(
        """
        CREATE VERTEX Doc (id INT PRIMARY KEY, title STRING, topic STRING);
        CREATE VERTEX Engineer (id INT PRIMARY KEY, name STRING);
        CREATE DIRECTED EDGE cites (FROM Doc, TO Doc);
        CREATE DIRECTED EDGE ownedBy (FROM Doc, TO Engineer);
        ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE content_emb
          (DIMENSION = 48, MODEL = toy, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);
        """
    )

    doc_topic = {}
    with db.begin() as txn:
        for eid in range(NUM_ENGINEERS):
            txn.upsert_vertex("Engineer", eid, {"name": f"eng{eid}"})
        for doc in range(NUM_DOCS):
            topic_id = doc % 3
            doc_topic[doc] = topic_id
            txn.upsert_vertex(
                "Doc", doc,
                {"title": f"{TOPICS[topic_id]}-note-{doc}", "topic": TOPICS[topic_id]},
            )
            txn.set_embedding("Doc", doc, "content_emb", embed(topic_id))
            txn.add_edge("ownedBy", doc, (doc // 3) % NUM_ENGINEERS)
        # citation edges, mostly within topic
        for doc in range(NUM_DOCS):
            for _ in range(2):
                other = int(rng.integers(0, NUM_DOCS))
                if other != doc and (doc_topic[other] == doc_topic[doc] or rng.random() < 0.15):
                    txn.add_edge("cites", doc, other)
    db.vacuum()

    question = embed(0)  # an "auth" question

    # ---- plain vector RAG baseline ---------------------------------------
    plain = db.run_gsql(
        "SELECT d FROM (d:Doc) ORDER BY VECTOR_DIST(d.content_emb, q) LIMIT 5;",
        q=question.tolist(),
    ).result
    print("plain vector RAG context:")
    for (vtype, vid), dist in plain.ranking:
        print(f"  {db.pk_for(vtype, vid):4d}  dist={dist:.2f}")

    # ---- VectorGraphRAG: seed -> expand -> re-rank ------------------------
    db.gsql.install(
        """
        CREATE QUERY vector_graph_rag(List<FLOAT> question, INT seeds, INT k) {
          Map<VERTEX, FLOAT> @@ranked;
          -- 1. semantic seeds
          Seeds = VectorSearch({Doc.content_emb}, question, seeds);
          -- 2. graph expansion: cited docs and same-owner docs
          Cited = SELECT t FROM (s:Seeds) - [:cites] -> (t:Doc);
          Sibling = SELECT t FROM (s:Seeds) - [:ownedBy] -> (o:Engineer)
                    <- [:ownedBy] - (t:Doc);
          Pool = Seeds UNION Cited UNION Sibling;
          -- 3. graph-filtered re-ranking
          Context = VectorSearch({Doc.content_emb}, question, k,
                                 {filter: Pool, ef: 200, distanceMap: @@ranked});
          PRINT Context;
          PRINT @@ranked;
        }
        """
    )
    out = db.gsql.run_query("vector_graph_rag", question=question.tolist(), seeds=3, k=8)
    context = out.prints[0]["vertices"]
    print("\nVectorGraphRAG context (seeded + graph-expanded + re-ranked):")
    for vertex, dist in context:
        print(f"  {vertex.pk:4d}  dist={dist:.2f}")

    pool = out.sets["Pool"]
    seeds = out.sets["Seeds"]
    print(
        f"\npipeline: {len(seeds)} seeds -> pool of {len(pool)} after graph "
        f"expansion -> top-{len(context)} context"
    )
    on_topic = sum(1 for v, _ in context if doc_topic[v.pk] == 0)
    print(f"{on_topic}/{len(context)} context docs are on the question's topic")
    db.close()


if __name__ == "__main__":
    main()
