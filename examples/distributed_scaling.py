"""Distributed vector search: scaling, replication, and failover.

Reproduces the mechanics behind the paper's Figures 5 and 9 at demo scale:
per-segment search times are *measured* on real HNSW indexes, then replayed
through the coordinator/worker cluster simulator under a wrk2-like closed
loop — first scaling machines 1 -> 8, then killing a machine and watching
replicas absorb the traffic (Sec. 4.2's high-availability design).

Run:  python examples/distributed_scaling.py
"""

import numpy as np

from repro.bench.harness import embedding_store_for
from repro.cluster import ClosedLoopLoadGenerator, ClusterSimulator, make_cluster
from repro.core.distributed import DistributedSearcher
from repro.datasets import make_sift_like

K = 10


def main() -> None:
    print("building a 4000-vector SIFT-like store (16 segments)...")
    dataset = make_sift_like(4_000, num_queries=20, seed=5)
    store = embedding_store_for(dataset, segment_size=250)

    # --- measured per-segment service times --------------------------------
    searcher = DistributedSearcher(store, num_machines=1)
    samples, results = searcher.measure_samples(
        dataset.queries, K, snapshot_tid=1, ef=64
    )
    mean_seg_ms = 1000 * float(
        np.mean([t for sample in samples for t in sample.values()])
    )
    print(f"measured {len(samples)} queries x {store.num_segments} segments "
          f"(mean {mean_seg_ms:.2f} ms/segment)\n")

    # --- node scalability ---------------------------------------------------
    print("machines |    QPS | mean latency")
    base_qps = None
    for machines in (1, 2, 4, 8):
        sim = ClusterSimulator(
            make_cluster(machines, store.num_segments, cores=4),
            dim=dataset.dim, k=K,
        )
        out = ClosedLoopLoadGenerator(sim, connections=64).run(
            samples, duration_seconds=2.0
        )
        base_qps = base_qps or out.qps
        print(f"{machines:8d} | {out.qps:6.0f} | {out.mean_latency_seconds*1000:6.2f} ms"
              f"   ({out.qps / base_qps:.2f}x)")

    # --- failover with replicas --------------------------------------------
    print("\nfailover (4 machines, replication factor 2):")
    sim = ClusterSimulator(
        make_cluster(4, store.num_segments, cores=4, replication_factor=2),
        dim=dataset.dim, k=K,
    )
    healthy = ClosedLoopLoadGenerator(sim, connections=64).run(
        samples, duration_seconds=2.0
    )
    sim.fail_machine(3)
    sim.reset()
    degraded = ClosedLoopLoadGenerator(sim, connections=64).run(
        samples, duration_seconds=2.0
    )
    print(f"  healthy : {healthy.qps:6.0f} QPS")
    print(f"  1 failed: {degraded.qps:6.0f} QPS "
          f"({degraded.qps / healthy.qps:.0%} retained — replicas absorb the load)")

    # --- correctness is machine-count invariant -----------------------------
    single = DistributedSearcher(store, 1).search(dataset.queries[0], K, 1, ef=64)
    spread = DistributedSearcher(store, 8).search(dataset.queries[0], K, 1, ef=64)
    match = single.result.ids.tolist() == spread.result.ids.tolist()
    print(f"\nglobal merge invariant: 1-machine and 8-machine results identical: {match}")


if __name__ == "__main__":
    main()
