"""Community-aware vector search — the paper's Q4 demonstration (Figure 6).

Louvain community detection partitions Person vertices; a top-k vector
search then runs *inside each community's posts*, surfacing what each
community is saying about a topic.  This demonstrates composing a graph
algorithm with VectorSearch() through vertex-set variables.

Run:  python examples/community_search.py
"""

import numpy as np

from repro import TigerVectorDB

DIM = 32
rng = np.random.default_rng(23)


def main() -> None:
    db = TigerVectorDB(segment_size=128)
    db.run_gsql(
        """
        CREATE VERTEX Person (id INT PRIMARY KEY, name STRING);
        CREATE VERTEX Post (id INT PRIMARY KEY, content STRING);
        CREATE UNDIRECTED EDGE knows (FROM Person, TO Person);
        CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person);
        ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb
          (DIMENSION = 32, MODEL = toy, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);
        """
    )

    # Three social circles with dense in-group friendships; each circle has
    # its own "attitude" (an embedding offset) toward the topic.
    community_bias = {0: -3.0, 1: 0.0, 2: 3.0}
    with db.begin() as txn:
        for pid in range(30):
            txn.upsert_vertex("Person", pid, {"name": f"user{pid}"})
        for circle in range(3):
            members = range(circle * 10, circle * 10 + 10)
            for a in members:
                for b in members:
                    if a < b and rng.random() < 0.5:
                        txn.add_edge("knows", a, b)
        # a couple of weak ties between circles
        txn.add_edge("knows", 3, 14)
        txn.add_edge("knows", 17, 25)
        for post in range(300):
            author = int(rng.integers(0, 30))
            bias = community_bias[author // 10]
            vec = rng.standard_normal(DIM).astype(np.float32)
            vec[0] += bias  # the community's attitude dimension
            txn.upsert_vertex("Post", post, {"content": f"opinion-{post}"})
            txn.set_embedding("Post", post, "content_emb", vec)
            txn.add_edge("hasCreator", post, author)
    db.vacuum()

    # The paper's Q4, verbatim structure.
    db.gsql.install(
        """
        CREATE QUERY Q4(List<FLOAT> topic_emb, INT k) {
          C_num = tg_louvain(["Person"], ["knows"]);
          FOREACH i IN RANGE[0, C_num] DO
            CommunityPosts = SELECT t FROM (s:Person)<-[e:hasCreator]-(t:Post)
                             WHERE s.cid = i;
            TopKPosts = VectorSearch({Post.content_emb}, topic_emb, k,
                                     {filter: CommunityPosts});
            PRINT TopKPosts;
          END;
        }
        """
    )

    topic = np.zeros(DIM, dtype=np.float32)
    topic[0] = 3.0  # "pro" end of the attitude axis
    out = db.gsql.run_query("Q4", topic_emb=topic.tolist(), k=2)

    print("top-2 posts closest to the topic, per detected community:")
    for i, printed in enumerate(p for p in out.prints if p["vertices"]):
        print(f"  community {i}:")
        for vertex, dist in printed["vertices"]:
            author = vertex.pk  # author circle = post author // 10 by construction
            print(f"    {vertex}  dist={dist:.2f}")
    communities = len([p for p in out.prints if p["vertices"]])
    print(f"\nLouvain found {communities} communities with posts "
          f"(ground truth: 3 circles)")
    db.close()


if __name__ == "__main__":
    main()
