"""Transactional vector updates, the two-stage vacuum, and WAL recovery.

Demonstrates the machinery of the paper's Sec. 4.3:

- graph + vector writes commit atomically under one TID;
- committed-but-unvacuumed updates are immediately visible to search
  (index-snapshot results combined with brute force over deltas);
- the delta-merge and index-merge vacuum stages run separately;
- old index snapshots serve pinned readers until they release;
- the write-ahead log replays everything, vectors included, after a crash.

Run:  python examples/incremental_updates.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import TigerVectorDB
from repro.graph.storage import GraphStore

DIM = 24
rng = np.random.default_rng(41)

SCHEMA = """
CREATE VERTEX Item (id INT PRIMARY KEY, label STRING);
ALTER VERTEX Item ADD EMBEDDING ATTRIBUTE emb
  (DIMENSION = 24, MODEL = toy, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);
"""


def main() -> None:
    wal_path = Path(tempfile.mkdtemp()) / "items.wal"
    db = TigerVectorDB(segment_size=64, wal_path=wal_path)
    db.run_gsql(SCHEMA)

    vectors = rng.standard_normal((100, DIM)).astype(np.float32)
    with db.begin() as txn:
        for i in range(100):
            txn.upsert_vertex("Item", i, {"label": f"item{i}"})
            txn.set_embedding("Item", i, "emb", vectors[i])
    db.vacuum()
    store = db.service.store("Item", "emb")
    print(f"loaded 100 items; pending deltas after vacuum: {store.pending_delta_count()}")

    # --- atomic mixed update, visible before any vacuum -------------------
    moved = np.full(DIM, 25.0, dtype=np.float32)
    with db.begin() as txn:  # one TID covers the attribute AND the vector
        txn.upsert_vertex("Item", 7, {"label": "item7-v2"})
        txn.set_embedding("Item", 7, "emb", moved)
    hit = db.vector_search(["Item.emb"], moved, k=1)
    (vtype, vid) = next(iter(hit))
    with db.snapshot() as snap:
        label = snap.get_attr("Item", vid, "label")
    print(f"update visible pre-vacuum: nearest to new location = "
          f"Item({db.pk_for(vtype, vid)}) label={label!r}")
    print(f"unmerged deltas serving that query: {store.pending_delta_count()}")

    # --- snapshot pinning across the vacuum --------------------------------
    pinned = db.snapshot()
    with db.begin() as txn:
        txn.set_embedding("Item", 7, "emb", vectors[7])  # move it back
    result = db.vacuum()
    print(f"vacuum: flushed={result['flushed']} merged={result['merged']}")
    old_view = store.get_embedding(vid, snapshot_tid=pinned.tid)
    new_view = store.get_embedding(vid)
    print(f"pinned reader still sees the moved vector: {bool(np.allclose(old_view, 25.0))}")
    print(f"fresh reader sees the restored vector:      {bool(np.allclose(new_view, vectors[7]))}")
    pinned.release()

    # --- the two vacuum stages, and thread tuning --------------------------
    from repro.core.vacuum import tune_merge_threads

    with db.begin() as txn:
        for i in range(20, 30):
            txn.set_embedding("Item", i, "emb", rng.standard_normal(DIM))
    flushed = db.vacuum_manager.delta_merge(store)       # fast: memory -> file
    merged = db.vacuum_manager.index_merge(store, num_threads=tune_merge_threads(0.25))
    print(f"delta merge flushed {flushed} records; index merge folded {merged} "
          f"(threads chosen for a 25%-busy machine: {tune_merge_threads(0.25)})")

    # --- crash recovery from the WAL ---------------------------------------
    db.store.wal.close()
    recovered_vectors = {}

    def capture(tid, ops):
        for action, vtype_, vid_, attr, vector in ops:
            if action == "upsert":
                recovered_vectors[vid_] = vector

    recovered = GraphStore.recover(
        db.schema, wal_path, segment_size=64, embedding_hook=capture
    )
    with recovered.snapshot() as snap:
        count = snap.count("Item")
        label = snap.get_attr("Item", snap.vid_for_pk("Item", 7), "label")
    print(f"\nWAL recovery: {count} items restored, item7 label={label!r}, "
          f"{len(recovered_vectors)} distinct vectors replayed")
    db.close()


if __name__ == "__main__":
    main()
