"""Quickstart: schema, loading, and every vector-search shape from the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TigerVectorDB

DIM = 64
NUM_POSTS = 500
rng = np.random.default_rng(7)


def main() -> None:
    db = TigerVectorDB(segment_size=128)

    # --- schema, using the exact DDL surface from the paper (Sec. 4.1) ----
    db.run_gsql(
        """
        CREATE VERTEX Person (id INT PRIMARY KEY, firstName STRING);
        CREATE VERTEX Post (id INT PRIMARY KEY, language STRING, length INT);
        CREATE UNDIRECTED EDGE knows (FROM Person, TO Person);
        CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person);

        ALTER VERTEX Post
        ADD EMBEDDING ATTRIBUTE content_emb (
          DIMENSION = 64,
          MODEL = GPT4,
          INDEX = HNSW,
          DATATYPE = FLOAT,
          METRIC = L2
        );
        """
    )

    # --- load a small social graph with embeddings ------------------------
    vectors = rng.standard_normal((NUM_POSTS, DIM)).astype(np.float32)
    with db.begin() as txn:
        for pid in range(20):
            txn.upsert_vertex("Person", pid, {"firstName": "Alice" if pid == 0 else f"P{pid}"})
        for a in range(20):
            for b in range(a + 1, 20):
                if rng.random() < 0.2:
                    txn.add_edge("knows", a, b)
        for i in range(NUM_POSTS):
            txn.upsert_vertex(
                "Post", i,
                {"language": "en" if i % 3 else "fr", "length": int(rng.integers(50, 3000))},
            )
            txn.set_embedding("Post", i, "content_emb", vectors[i])
            txn.add_edge("hasCreator", i, i % 20)
    db.vacuum()  # fold deltas into per-segment HNSW snapshots
    print(f"loaded {NUM_POSTS} posts across "
          f"{db.service.store('Post', 'content_emb').num_segments} embedding segments")

    query = vectors[42] + 0.05

    # --- 1. pure top-k vector search (Sec. 5.1) ---------------------------
    r = db.run_gsql(
        "SELECT s FROM (s:Post) "
        "ORDER BY VECTOR_DIST(s.content_emb, query_vector) LIMIT k;",
        query_vector=query.tolist(), k=5,
    )
    print("\npure top-5:")
    for (vtype, vid), dist in r.result.ranking:
        print(f"  Post({db.pk_for(vtype, vid)})  dist={dist:.3f}")
    print("plan:\n " + r.metrics["last_plan"].replace("\n", "\n "))

    # --- 2. filtered vector search (Sec. 5.2) -----------------------------
    r = db.run_gsql(
        'SELECT s FROM (s:Post) WHERE s.language = "fr" '
        "ORDER BY VECTOR_DIST(s.content_emb, query_vector) LIMIT k;",
        query_vector=query.tolist(), k=5,
    )
    print("\nfiltered top-5 (french posts only):")
    for (vtype, vid), dist in r.result.ranking:
        print(f"  Post({db.pk_for(vtype, vid)})  dist={dist:.3f}")

    # --- 3. range search (Sec. 5.1) ---------------------------------------
    r = db.run_gsql(
        "SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.content_emb, qv) < 40.0;",
        qv=query.tolist(),
    )
    print(f"\nrange search: {len(r.result)} posts within distance 40")

    # --- 4. vector search on a graph pattern (Sec. 5.3) -------------------
    r = db.run_gsql(
        "SELECT t FROM (s:Person) - [:knows] -> (:Person) "
        "<- [:hasCreator] - (t:Post) "
        'WHERE s.firstName = "Alice" AND t.length > 1000 '
        "ORDER BY VECTOR_DIST(t.content_emb, query_vector) LIMIT k;",
        query_vector=query.tolist(), k=5,
    )
    print(f"\nhybrid pattern search: {len(r.result)} long posts by Alice's "
          f"friends (candidates={r.metrics['num_candidates']}, "
          f"vector search {r.metrics['vector_seconds']*1000:.2f} ms)")

    # --- 5. vector similarity join (Sec. 5.4) -----------------------------
    r = db.run_gsql(
        "SELECT s, t FROM (s:Post) - [:hasCreator] -> (u:Person) "
        "<- [:hasCreator] - (t:Post) "
        'WHERE u.firstName = "Alice" '
        "ORDER BY VECTOR_DIST(s.content_emb, t.content_emb) LIMIT 3;"
    )
    print("\nmost similar post pairs by the same author (Alice):")
    for row in r.result:
        print(f"  {row['s']} ~ {row['t']}  dist={row['distance']:.3f}")

    db.close()


if __name__ == "__main__":
    main()
