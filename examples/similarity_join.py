"""Case-law similarity — the paper's vector-similarity-join use case (Sec. 5.4).

"Identify similar cases for legal research by finding top-k case pairs
(source, target) connected by Case -> Cites -> Statute <- Cites <- Case,
where the embedding of each Case represents the text of legal arguments."

The join enumerates the (sparse) matched paths, brute-forces the pair
distances, and keeps the global top-k in a heap accumulator — exactly the
paper's execution strategy.

Run:  python examples/similarity_join.py
"""

import numpy as np

from repro import TigerVectorDB

DIM = 40
NUM_CASES = 150
NUM_STATUTES = 12
rng = np.random.default_rng(31)


def main() -> None:
    db = TigerVectorDB(segment_size=64)
    db.run_gsql(
        """
        CREATE VERTEX Case (id INT PRIMARY KEY, year INT, court STRING);
        CREATE VERTEX Statute (id INT PRIMARY KEY, title STRING);
        CREATE DIRECTED EDGE cites (FROM Case, TO Statute);
        ALTER VERTEX Case ADD EMBEDDING ATTRIBUTE argument_emb
          (DIMENSION = 40, MODEL = legal, INDEX = HNSW, DATATYPE = FLOAT, METRIC = COSINE);
        """
    )

    # Cases about the same statute argue in similar language: the embedding
    # is statute-centroid + noise, so the join should surface same-statute
    # pairs with genuinely close arguments.
    centroids = rng.standard_normal((NUM_STATUTES, DIM)).astype(np.float32) * 2.0
    with db.begin() as txn:
        for sid in range(NUM_STATUTES):
            txn.upsert_vertex("Statute", sid, {"title": f"statute-{sid}"})
        for cid in range(NUM_CASES):
            primary = int(rng.integers(0, NUM_STATUTES))
            txn.upsert_vertex(
                "Case", cid,
                {"year": int(rng.integers(1990, 2024)), "court": f"court-{cid % 5}"},
            )
            txn.set_embedding(
                "Case", cid, "argument_emb",
                centroids[primary] + rng.standard_normal(DIM).astype(np.float32) * 0.7,
            )
            txn.add_edge("cites", cid, primary)
            if rng.random() < 0.3:  # some cases cite a second statute
                txn.add_edge("cites", cid, int(rng.integers(0, NUM_STATUTES)))
    db.vacuum()

    # Case -> cites -> Statute <- cites <- Case similarity join.
    result = db.run_gsql(
        "SELECT s, t FROM (s:Case) - [:cites] -> (u:Statute) "
        "<- [:cites] - (t:Case) "
        "ORDER BY VECTOR_DIST(s.argument_emb, t.argument_emb) LIMIT 8;"
    )
    print("top-8 most similar case pairs that cite a common statute:")
    for row in result.result:
        print(f"  {row['s']} ~ {row['t']}   cosine dist={row['distance']:.4f}")

    # Narrowed variant: only recent cases from one court.
    result = db.run_gsql(
        "SELECT s, t FROM (s:Case) - [:cites] -> (u:Statute) "
        "<- [:cites] - (t:Case) "
        'WHERE s.year > 2015 AND t.year > 2015 AND s.court = "court-0" '
        "ORDER BY VECTOR_DIST(s.argument_emb, t.argument_emb) LIMIT 5;"
    )
    print("\nrecent court-0 cases with similar arguments:")
    for row in result.result:
        print(f"  {row['s']} ~ {row['t']}   cosine dist={row['distance']:.4f}")

    plan = db.gsql.explain(
        "SELECT s, t FROM (s:Case) - [:cites] -> (u:Statute) "
        "<- [:cites] - (t:Case) "
        "ORDER BY VECTOR_DIST(s.argument_emb, t.argument_emb) LIMIT 8;"
    )
    print("\nquery plan (bottom-up, as in the paper):")
    for line in plan.splitlines():
        print("  " + line)
    db.close()


if __name__ == "__main__":
    main()
