"""Unified data governance: one RBAC layer for graph AND vector data.

The paper's case for a unified system includes governance: "a single set of
access controls (e.g., role-based access control) for both vector data and
graph data" (Sec. 1), and the vector-search bitmap marks "all deleted and
unauthorized vectors as invalid" (Sec. 5.1).

Scenario: a clinical knowledge base.  Researchers may only see anonymized
records; the treating-physician role sees records from its own department;
admin sees everything.  The *same* role rules gate graph scans and vector
search — an unauthorized record can never leak through either path.

Run:  python examples/data_governance.py
"""

import numpy as np

from repro import TigerVectorDB

DIM = 24
DEPARTMENTS = ["cardiology", "oncology", "neurology"]
rng = np.random.default_rng(53)


def main() -> None:
    db = TigerVectorDB(segment_size=64)
    db.run_gsql(
        """
        CREATE VERTEX Record (id INT PRIMARY KEY, department STRING,
                              anonymized BOOL, summary STRING);
        ALTER VERTEX Record ADD EMBEDDING ATTRIBUTE case_emb
          (DIMENSION = 24, MODEL = clinical, INDEX = HNSW,
           DATATYPE = FLOAT, METRIC = L2);
        """
    )
    with db.begin() as txn:
        for i in range(150):
            txn.upsert_vertex(
                "Record", i,
                {
                    "department": DEPARTMENTS[i % 3],
                    "anonymized": i % 2 == 0,
                    "summary": f"case-{i}",
                },
            )
            txn.set_embedding("Record", i, "case_emb", rng.standard_normal(DIM))
    db.vacuum()

    # --- roles: one rule set governs both access paths --------------------
    db.access.create_role(
        "researcher", {"Record": lambda row: row["anonymized"]}
    )
    db.access.create_role(
        "cardiologist", {"Record": lambda row: row["department"] == "cardiology"}
    )

    query = rng.standard_normal(DIM).astype(np.float32)

    print("top-5 similar cases, per role:")
    for role in ("admin", "researcher", "cardiologist"):
        result = db.access.authorized_search(
            role, ["Record.case_emb"], query, k=5
        )
        rows = []
        with db.snapshot() as snap:
            for vtype, vid in result:
                row = snap.get_vertex(vtype, vid)
                rows.append((row["summary"], row["department"], row["anonymized"]))
        print(f"\n  role={role}:")
        for summary, dept, anon in sorted(rows):
            print(f"    {summary:10s} dept={dept:11s} anonymized={anon}")

    # --- the graph path obeys the same rules -------------------------------
    with db.snapshot() as snap:
        graph_view = db.access.visible_vertices("researcher", snap, "Record")
        bitmaps = db.access.authorization_bitmaps("researcher", snap, "Record")
    print(
        f"\nresearcher visibility: {len(graph_view)} records via graph scan, "
        f"{sum(b.count() for b in bitmaps)} via the vector bitmap — identical "
        f"by construction"
    )

    # --- attempted leak: filter cannot override authorization --------------
    from repro import VertexSet

    secret = VertexSet(("Record", db.vid_for("Record", pk)) for pk in (1, 3, 5))
    leaked = db.access.authorized_search(
        "researcher", ["Record.case_emb"], query, k=5, filter=secret
    )
    print(f"researcher asking for non-anonymized records explicitly: "
          f"{len(leaked)} results (authorization intersects the filter)")
    db.close()


if __name__ == "__main__":
    main()
