"""Legacy setup shim: the offline environment lacks the `wheel` package, so
`pip install -e . --no-build-isolation --no-use-pep517` (setup.py develop)
is the supported editable-install path.  Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
