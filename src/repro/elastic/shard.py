"""ShardServer: a :class:`QueryServer` that owns a subset of segment groups.

Each shard is a full serving stack — admission control, weighted-fair
queue, worker pool, chaos hooks, and a per-tenant result cache — plus an
*ownership set* of ``(tenant, group)`` keys granted by the elastic tier's
router.  Routed sub-requests (``kind="shard"``) flow through the same
queue and workers as ordinary requests, so tenant fairness and fault
injection apply to shard traffic too, but execute
:func:`~repro.core.search.vector_search_sharded` over only the owned
segment ordinals and complete their future with the *partial* per-attribute
top-k pairs for the router to merge.

Two contracts matter here:

- **Execution-time ownership check.**  Ownership is re-validated by the
  worker immediately before the search, not just at routing time.  A
  sub-request that raced a handoff and reached a shard after its group
  was revoked fails with a typed
  :class:`~repro.errors.SegmentOwnershipError` — never a silently wrong
  partial computed over segments the shard no longer serves.  The
  router treats that error as retryable.  (The drain protocol makes the
  race unreachable for *granted-then-drained* handoffs; the check is the
  belt to that suspender, and exactly what the unvalidated
  ``rebalance-vs-search`` explorer scenario trips.)
- **Replica-coherent caching.**  The shard never reads watermarks
  itself: the router reads the watermark vector once, pins one snapshot,
  and ships both with every sub-request.  The partial cache key is the
  standard watermark-keyed :meth:`ResultCache.key` *extended with the
  owned group tuple*, so (a) an entry can only be hit by a request whose
  router observed the identical watermark vector — a replica can never
  answer from state staler than the router's observation — and (b)
  partials computed over different group subsets (before/after a
  rebalance) can never alias.  Fills are further gated by the router's
  ``cache_ok`` verdict (snapshot covers every watermark component),
  reusing the commit-race analysis from :mod:`repro.serve.cache`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..analysis.hooks import schedule_point
from ..core.search import VectorSearchOptions, vector_search_sharded
from ..errors import ReproError, SegmentOwnershipError, ServeError
from ..serve.cache import ResultCache
from ..serve.server import QueryRequest, QueryServer, ServeConfig, ServeFuture
from ..telemetry import get_telemetry

__all__ = ["ShardRequest", "ShardServer"]


@dataclass
class ShardRequest(QueryRequest):
    """One routed sub-request: a partial search over owned groups.

    ``kind="shard"`` keeps the base dispatch honest: ``batch_key()``
    returns ``None`` (partials never fuse — each carries its own group
    set and shipped snapshot) and ``cacheable`` is ``False`` for the
    *whole-query* cache; the shard maintains its own partial-entry
    discipline in :meth:`ShardServer._execute_shard`.
    """

    #: Segment groups this sub-request must cover (sorted by the router).
    shard_groups: tuple[int, ...] = ()
    #: Snapshot pinned by the router; every shard of one routed query
    #: executes on this same snapshot (one consistent MVCC view).
    shard_snapshot: object | None = None
    #: Watermark vector observed by the router *before* pinning.
    shard_watermarks: tuple = ()
    #: Router verdict: the snapshot covers every watermark component, so
    #: the partial may be cached under the shipped watermark key.
    shard_cache_ok: bool = False


class ShardServer(QueryServer):
    """A named QueryServer owning ``(tenant, group)`` keys for the router."""

    def __init__(
        self,
        db,
        name: str,
        config: ServeConfig | None = None,
        tenants=None,
        policy=None,
        injector=None,
        group_size: int = 1,
    ):
        super().__init__(db, config=config, tenants=tenants, policy=policy, injector=injector)
        if group_size < 1:
            raise ServeError("group_size must be at least 1")
        self.name = str(name)
        self.group_size = int(group_size)
        # Ownership is a lock leaf guarded by the queue/worker-visible
        # `_owned_lock`; grant/revoke never call out while holding it.
        self._owned_lock = threading.Lock()
        self._owned: set[tuple[str, int]] = set()
        self._rebalances_in = 0
        self._rebalances_out = 0

    # ------------------------------------------------------------- ownership
    def grant(self, tenant: str, group: int) -> None:
        """Admit ``(tenant, group)``; idempotent (the router may re-grant)."""
        with self._owned_lock:
            if (tenant, int(group)) not in self._owned:
                self._owned.add((tenant, int(group)))
                self._rebalances_in += 1

    def revoke(self, tenant: str, group: int) -> None:
        """Drop ``(tenant, group)``; in-flight checks then fail typed."""
        with self._owned_lock:
            if (tenant, int(group)) in self._owned:
                self._owned.discard((tenant, int(group)))
                self._rebalances_out += 1

    def owns(self, tenant: str, group: int) -> bool:
        with self._owned_lock:
            return (tenant, int(group)) in self._owned

    def owned_groups(self, tenant: str | None = None) -> dict[str, list[int]]:
        """tenant -> sorted owned groups (optionally one tenant only)."""
        with self._owned_lock:
            owned = sorted(self._owned)
        out: dict[str, list[int]] = {}
        for owner_tenant, group in owned:
            if tenant is not None and owner_tenant != tenant:
                continue
            out.setdefault(owner_tenant, []).append(group)
        return out

    # ---------------------------------------------------------------- submit
    def submit_shard(
        self,
        vector_attributes,
        query_vector,
        k: int,
        *,
        tenant: str = "default",
        ef: int | None = None,
        filter=None,
        snapshot,
        watermarks: tuple = (),
        cache_ok: bool = False,
        groups,
        deadline: float | None = None,
    ) -> ServeFuture:
        """Queue one partial search over ``groups`` on the shipped snapshot.

        ``deadline`` is absolute (monotonic clock) — the router forwards
        the parent request's remaining budget so a shard queue backlog
        sheds the partial typed instead of holding the merge hostage.
        """
        tenant_obj = self.registry.get(tenant)
        get_telemetry().inc("elastic.shard_requests")
        request = ShardRequest(
            kind="shard",
            tenant=tenant_obj,
            future=ServeFuture(),
            submitted_at=time.monotonic(),
            deadline=deadline,
            vector_attributes=tuple(vector_attributes),
            query=np.asarray(query_vector, dtype=np.float32).reshape(-1),
            k=int(k),
            ef=ef,
            filter=filter,
            shard_groups=tuple(sorted(int(g) for g in groups)),
            shard_snapshot=snapshot,
            shard_watermarks=tuple(watermarks),
            shard_cache_ok=bool(cache_ok),
        )
        return self._submit(request)

    # -------------------------------------------------------------- dispatch
    def _execute_batch(self, batch: list) -> None:
        if batch and getattr(batch[0], "kind", None) == "shard":
            # Shard partials never fuse (batch_key None -> singleton
            # batches), but keep the loop defensive like the base class.
            try:
                for request in self._shed_expired(batch):
                    self._execute_shard(request)
            except Exception as exc:
                for request in batch:
                    if not request.future.done():
                        self._finish(request, error=exc)
            return
        super()._execute_batch(batch)

    def _execute_shard(self, request: ShardRequest) -> None:
        tel = get_telemetry()
        tenant = request.tenant.name
        schedule_point("elastic.shard.execute")
        with self._owned_lock:
            missing = [
                group
                for group in request.shard_groups
                if (tenant, group) not in self._owned
            ]
        if missing:
            self._finish(
                request,
                error=SegmentOwnershipError(
                    f"shard '{self.name}' does not own group {missing[0]} for "
                    f"tenant '{tenant}' (ownership moved mid-route)",
                    tenant=tenant,
                    group=missing[0],
                ),
            )
            return

        key = None
        if (
            request.shard_cache_ok
            and request.filter is None
            and self.cache is not None
        ):
            # Watermark-keyed partial entry, disambiguated by the group
            # tuple (6-tuple keys can never collide with the 5-tuple
            # whole-query keys sharing the partition).
            key = ResultCache.key(
                request.vector_attributes,
                request.query,
                request.k,
                request.ef,
                request.shard_watermarks,
            ) + (request.shard_groups,)
            hit = self.cache.get(tenant, key)
            if hit is not None:
                tel.inc("serve.cache_hits")
                self._finish(request, value=hit)
                return
            tel.inc("serve.cache_misses")

        options = VectorSearchOptions(filter=request.filter, ef=request.ef)
        try:
            parts = self._with_retries(
                lambda: vector_search_sharded(
                    self.db.service,
                    request.shard_snapshot,
                    list(request.vector_attributes),
                    request.query,
                    request.k,
                    options,
                    groups=frozenset(request.shard_groups),
                    group_size=self.group_size,
                )
            )
        except ReproError as exc:
            self._finish(request, error=exc)
            return
        value = tuple(parts)
        if key is not None:
            evicted = self.cache.put(tenant, key, value, kernel="shard")
            if evicted:
                tel.inc("serve.cache_evictions", evicted)
        self._finish(request, value=value)

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        out = super().stats()
        out["name"] = self.name
        out["owned"] = self.owned_groups()
        out["rebalances_in"] = self._rebalances_in
        out["rebalances_out"] = self._rebalances_out
        return out
