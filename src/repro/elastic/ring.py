"""Consistent-hash ring over (tenant, segment-group) routing keys.

The elastic serve tier routes every request key — a ``(tenant, group)``
pair, where a *group* is a contiguous run of ``group_size`` embedding
segments — to the :class:`~repro.elastic.shard.ShardServer` that owns it.
Ownership defaults to consistent hashing so that membership changes move
as few keys as possible: each server contributes ``vnodes`` virtual points
on a 64-bit ring (seeded BLAKE2b, no process-salt randomness), a key is
owned by the first virtual point at or clockwise-after its hash, and when
a server joins or leaves only the keys whose arc it covers change hands —
in expectation ``1/n`` of the keyspace, never a full reshuffle.

Two refinements on the textbook ring:

- **Pins** — the live rebalancer moves individual keys between servers
  (:meth:`pin`), recorded as an override layered over the hash ownership.
  Pins survive unrelated membership changes; a pin to a departed server is
  dropped so the key falls back to hash ownership.
- **Bounded loads** — :meth:`balanced_assignment` assigns a known key
  population in ring order while capping every server at
  ``ceil(keys / servers)`` (consistent hashing with bounded loads);
  overflow walks clockwise to the next server with spare capacity.  The
  simulated capacity model and the tier's initial grant both use it, so
  adding a server buys near-proportional throughput instead of whatever
  the raw hash imbalance allows.

The ring is a lock leaf: every method takes one internal lock and never
calls out while holding it.
"""

from __future__ import annotations

import bisect
import hashlib
import threading

from ..errors import ElasticError

__all__ = ["ConsistentHashRing"]


def _hash64(text: str) -> int:
    """Stable 64-bit ring position (BLAKE2b; independent of PYTHONHASHSEED)."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ConsistentHashRing:
    """Virtual-node consistent hashing with pins and bounded-load assignment."""

    def __init__(self, vnodes: int = 96):
        if vnodes < 1:
            raise ElasticError("vnodes must be at least 1")
        self.vnodes = int(vnodes)
        self._lock = threading.Lock()
        #: sorted virtual-point positions and the parallel owner list
        self._points: list[int] = []
        self._owners: list[str] = []
        self._servers: set[str] = set()
        #: rebalancer overrides: key -> server (layered over hash ownership)
        self._pins: dict[tuple[str, int], str] = {}

    @staticmethod
    def key_position(tenant: str, group: int) -> int:
        """Ring position of one routing key (public for the property tests)."""
        return _hash64(f"k:{tenant}/{int(group)}")

    # ------------------------------------------------------------ membership
    def add(self, server: str) -> None:
        """Join a server (idempotent); inserts its ``vnodes`` virtual points."""
        if not server:
            raise ElasticError("server name must be non-empty")
        with self._lock:
            if server in self._servers:
                return
            self._servers.add(server)
            for i in range(self.vnodes):
                point = _hash64(f"s:{server}#{i}")
                at = bisect.bisect_left(self._points, point)
                self._points.insert(at, point)
                self._owners.insert(at, server)

    def remove(self, server: str) -> None:
        """Leave a server; its pins dissolve back to hash ownership."""
        with self._lock:
            if server not in self._servers:
                return
            self._servers.discard(server)
            keep = [i for i, owner in enumerate(self._owners) if owner != server]
            self._points = [self._points[i] for i in keep]
            self._owners = [self._owners[i] for i in keep]
            for key in [k for k, owner in self._pins.items() if owner == server]:
                del self._pins[key]

    def servers(self) -> list[str]:
        with self._lock:
            return sorted(self._servers)

    def __len__(self) -> int:
        with self._lock:
            return len(self._servers)

    # --------------------------------------------------------------- routing
    def _owner_at(self, position: int) -> str:
        """First virtual point at/clockwise-after ``position`` (lock held)."""
        if not self._points:
            raise ElasticError("consistent-hash ring has no servers")
        at = bisect.bisect_left(self._points, position)
        if at == len(self._points):
            at = 0  # wrap past 2^64 back to the first point
        return self._owners[at]

    def owner(self, tenant: str, group: int) -> str:
        """The server owning ``(tenant, group)`` — pin first, hash otherwise."""
        key = (tenant, int(group))
        with self._lock:
            pinned = self._pins.get(key)
            if pinned is not None:
                return pinned
            return self._owner_at(self.key_position(tenant, group))

    def hash_owner(self, tenant: str, group: int) -> str:
        """Pure hash ownership, ignoring pins (what a key reverts to)."""
        with self._lock:
            return self._owner_at(self.key_position(tenant, group))

    def pin(self, tenant: str, group: int, server: str) -> None:
        """Override one key's owner (the rebalancer's transfer step)."""
        key = (tenant, int(group))
        with self._lock:
            if server not in self._servers:
                raise ElasticError(f"cannot pin {key} to unknown server '{server}'")
            if self._owner_at(self.key_position(tenant, group)) == server:
                self._pins.pop(key, None)  # pin matches hash: no override needed
            else:
                self._pins[key] = server

    def unpin(self, tenant: str, group: int) -> None:
        with self._lock:
            self._pins.pop((tenant, int(group)), None)

    def pins(self) -> dict[tuple[str, int], str]:
        with self._lock:
            return dict(self._pins)

    # ------------------------------------------------------------ assignment
    def assignment(
        self, tenant: str, groups: range | list[int]
    ) -> dict[int, str]:
        """group -> owner for a key population (pins honored)."""
        out: dict[int, str] = {}
        with self._lock:
            for group in groups:
                pinned = self._pins.get((tenant, int(group)))
                out[int(group)] = (
                    pinned
                    if pinned is not None
                    else self._owner_at(self.key_position(tenant, group))
                )
        return out

    def balanced_assignment(
        self, tenant: str, groups: range | list[int]
    ) -> dict[int, str]:
        """Bounded-load assignment: hash order, per-server cap ``ceil(G/N)``.

        Each key starts at its hash owner and walks clockwise (in server
        ring order) past servers already at the cap, so load never exceeds
        one key over a perfect split while key movement on membership
        change stays incremental.  Pins are honored (and count toward the
        pinned server's cap) because a rebalancer decision outranks the
        hash default.
        """
        with self._lock:
            if not self._servers:
                raise ElasticError("consistent-hash ring has no servers")
            keys = [int(g) for g in groups]
            cap = -(-len(keys) // len(self._servers))  # ceil
            load = {server: 0 for server in self._servers}
            order = sorted(self._servers, key=lambda s: _hash64(f"s:{s}#0"))
            out: dict[int, str] = {}
            spill: list[int] = []
            for group in keys:
                pinned = self._pins.get((tenant, group))
                if pinned is not None:
                    out[group] = pinned
                    load[pinned] += 1
                else:
                    spill.append(group)
            # Deterministic pass in key-position order mirrors arc ownership.
            for group in sorted(spill, key=lambda g: self.key_position(tenant, g)):
                owner = self._owner_at(self.key_position(tenant, group))
                if load[owner] >= cap:
                    start = order.index(owner)
                    for step in range(1, len(order) + 1):
                        candidate = order[(start + step) % len(order)]
                        if load[candidate] < cap:
                            owner = candidate
                            break
                out[group] = owner
                load[owner] += 1
            return out
