"""Telemetry-driven autoscaling policy for the elastic tier.

The signal is the serving queue-delay p99 (``serve.queue_wait_seconds``):
sustained breach of the target means the worker pools cannot drain
arrivals — add a server; sustained idle (p99 far below target with the
tier above its floor) means capacity is stranded — remove one.  Both
directions require *consecutive* observations so a single burst or lull
never flaps the fleet, and any observation that breaks a streak resets
it.  The policy is a pure decision function — deterministic for tests —
and :meth:`ElasticTier.autoscale_step` supplies the live p99 and applies
the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ElasticError

__all__ = ["AutoscalePolicy", "Autoscaler"]


@dataclass
class AutoscalePolicy:
    """Scale-out/in thresholds over the queue-delay p99."""

    #: Breach threshold: queue-delay p99 at/above this wants more servers.
    queue_delay_p99: float = 0.05
    #: Consecutive breach observations before scaling out.
    breach_observations: int = 3
    #: Idle threshold: p99 at/below this (with >min servers) is stranded
    #: capacity; defaults to a tenth of the breach threshold.
    idle_delay_p99: float | None = None
    #: Consecutive idle observations before scaling in (idle should be
    #: stickier than breach: adding capacity late hurts more than keeping
    #: a server warm).
    idle_observations: int = 6
    min_servers: int = 1
    max_servers: int = 8

    def __post_init__(self) -> None:
        if self.queue_delay_p99 <= 0:
            raise ElasticError("queue_delay_p99 must be positive")
        if self.idle_delay_p99 is None:
            self.idle_delay_p99 = self.queue_delay_p99 / 10.0
        if self.idle_delay_p99 >= self.queue_delay_p99:
            raise ElasticError("idle_delay_p99 must be below queue_delay_p99")
        if self.breach_observations < 1 or self.idle_observations < 1:
            raise ElasticError("observation windows must be at least 1")
        if not 1 <= self.min_servers <= self.max_servers:
            raise ElasticError("need 1 <= min_servers <= max_servers")


class Autoscaler:
    """Consecutive-observation debouncer around :class:`AutoscalePolicy`."""

    def __init__(self, policy: AutoscalePolicy | None = None):
        self.policy = policy or AutoscalePolicy()
        self._breaches = 0
        self._idles = 0

    def observe(self, queue_delay_p99: float, num_servers: int) -> str:
        """Feed one p99 reading; returns ``scale_out``/``scale_in``/``hold``.

        A returned scale decision also resets both streaks, so the next
        decision needs a full fresh window of evidence against the new
        fleet size.
        """
        policy = self.policy
        if queue_delay_p99 >= policy.queue_delay_p99:
            self._breaches += 1
            self._idles = 0
            if (
                self._breaches >= policy.breach_observations
                and num_servers < policy.max_servers
            ):
                self._breaches = 0
                return "scale_out"
            return "hold"
        if queue_delay_p99 <= policy.idle_delay_p99:
            self._idles += 1
            self._breaches = 0
            if (
                self._idles >= policy.idle_observations
                and num_servers > policy.min_servers
            ):
                self._idles = 0
                return "scale_in"
            return "hold"
        # Between the thresholds: a healthy reading breaks both streaks.
        self._breaches = 0
        self._idles = 0
        return "hold"
