"""Elastic distributed serve tier (ROADMAP item 2).

Sharded :class:`~repro.elastic.shard.ShardServer` instances — each a full
:class:`~repro.serve.server.QueryServer` owning a subset of segment
groups — behind a consistent-hash ring and an
:class:`~repro.elastic.router.ElasticTier` router that fans top-k
requests to owners, merges the partials byte-identically to the
unsharded path, rebalances ownership live under traffic (drain at an
MVCC TID, transfer, re-admit), keeps the watermark-keyed result caches
replica-coherent, and autoscales on telemetry p99s.
"""

from .autoscale import AutoscalePolicy, Autoscaler
from .ring import ConsistentHashRing
from .router import ElasticTier
from .shard import ShardRequest, ShardServer
from .sim import SimulatedElasticServe

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "ConsistentHashRing",
    "ElasticTier",
    "ShardRequest",
    "ShardServer",
    "SimulatedElasticServe",
]
