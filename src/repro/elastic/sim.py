"""Capacity model for the elastic tier: ring placement over simulated machines.

The scaling benchmark needs wall-clock-free, reproducible throughput
numbers, so it reuses the calibrated :class:`ClusterSimulator` /
:class:`ClosedLoopLoadGenerator` pair (paper Sec. 6.3) instead of timing
real threads: one simulated machine per :class:`ShardServer`, segments
placed by the *same* bounded-load ring assignment the live tier uses
(:meth:`ConsistentHashRing.balanced_assignment`), every request fanning
to all segment holders like a routed top-k.  Throughput is then gated by
the busiest machine — ``cores / (owned_segments × service_time)`` — so
the balanced placement is exactly what makes added servers buy
near-proportional QPS, and an imbalanced assignment would show up
directly as sublinear scaling in ``BENCH_elastic.json``.
"""

from __future__ import annotations

from ..cluster.coordinator import ClusterSimulator
from ..cluster.loadgen import ClosedLoopLoadGenerator, LoadResult
from ..cluster.machine import Machine
from ..errors import ElasticError
from .ring import ConsistentHashRing

__all__ = ["SimulatedElasticServe"]


class SimulatedElasticServe:
    """N ring-placed shard machines driven by the Poisson load generator."""

    def __init__(
        self,
        num_servers: int,
        num_segments: int = 32,
        group_size: int = 1,
        cores: int = 8,
        vnodes: int = 96,
        segment_service_seconds: float = 0.004,
        dim: int = 128,
        k: int = 10,
        tenant: str = "default",
        policy=None,
    ):
        if num_servers < 1:
            raise ElasticError("need at least one server")
        if num_segments < 1:
            raise ElasticError("need at least one segment")
        if segment_service_seconds <= 0:
            raise ElasticError("segment_service_seconds must be positive")
        self.num_servers = int(num_servers)
        self.num_segments = int(num_segments)
        self.group_size = int(group_size)
        self.segment_service_seconds = float(segment_service_seconds)
        self.ring = ConsistentHashRing(vnodes=vnodes)
        names = [f"sim-{i}" for i in range(self.num_servers)]
        for name in names:
            self.ring.add(name)
        num_groups = -(-self.num_segments // self.group_size)  # ceil
        self.placement = self.ring.balanced_assignment(tenant, range(num_groups))
        machines = [Machine(i, cores=cores, segments=[]) for i in range(self.num_servers)]
        index = {name: i for i, name in enumerate(names)}
        for group, server in sorted(self.placement.items()):
            for seg_no in range(
                group * self.group_size,
                min((group + 1) * self.group_size, self.num_segments),
            ):
                machines[index[server]].segments.append(seg_no)
        self.machines = machines
        kwargs = {} if policy is None else {"policy": policy}
        self.simulator = ClusterSimulator(machines, dim=dim, k=k, **kwargs)

    def segment_counts(self) -> list[int]:
        """Owned-segment count per machine (placement-balance visibility)."""
        return [len(machine.segments) for machine in self.machines]

    def run_open_loop(
        self,
        duration_seconds: float = 3.0,
        target_qps: float = 400.0,
        seed: int = 0,
    ) -> LoadResult:
        """Poisson arrivals at ``target_qps``; each request fans to every segment.

        Driven above capacity, the generator drains the whole backlog and
        the reported QPS converges to the fleet's capacity — the number
        the scaling benchmark compares across server counts.
        """
        sample = {
            seg_no: self.segment_service_seconds
            for seg_no in range(self.num_segments)
        }
        generator = ClosedLoopLoadGenerator(self.simulator, connections=1)
        return generator.run_open_loop(
            [sample],
            duration_seconds=duration_seconds,
            target_qps=target_qps,
            seed=seed,
        )
