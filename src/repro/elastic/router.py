"""ElasticTier: consistent-hash routed, live-rebalancing serve tier.

The distributed story of the paper's Sec. 3/5 — segment-partitioned
vector data behind a coordinator that fans a top-k out to owners and
merges — lifted to the serving layer: several
:class:`~repro.elastic.shard.ShardServer` instances each own a subset of
*segment groups* (``group = seg_no // group_size``, uniform across every
attribute store, mirroring vertex-centric partitioning), a
:class:`ConsistentHashRing` keyed by ``(tenant, group)`` decides default
ownership, and the router fans each query to the owners and merges the
partials with :func:`~repro.core.search.merge_sharded_topk` — which
reconstructs the unsharded answer byte-for-byte (see its docstring for
the containment argument).

**Routing and retry.**  Ownership entries materialize lazily from the
ring (grant first, publish second, so a published entry is always backed
by a shard-side grant).  A sub-request that fails because ownership
moved (:class:`SegmentOwnershipError`) or because its server died
(``shutdown``-reason admission error / refusal to accept) is re-routed
to the current owner — bounded rounds, each failure counted in
``elastic.route_retries`` — so a losing race or a crash costs a retry,
never a failed query.  A dead server additionally triggers
:meth:`handle_crash`: it leaves the ring and every key it owned
reassigns to the surviving hash owners.

**Live rebalancing (drain at a TID, transfer, re-admit).**  A handoff
marks the key *draining* — new routes gate on the entry until the move
completes — records the MVCC handoff point (the snapshot TID at drain
start), waits for the in-flight count to reach zero (every request that
acquired the key before the gate closed has completed; all of them
executed on snapshots at or before the handoff TID), grants the new
owner, revokes the old, pins the ring, and re-admits gated requests.
The execution-time ownership check in the shard is therefore
unreachable for drained handoffs; skipping the drain (the unvalidated
explorer variant) makes it fire.

**Replica-coherent caching and cross-replica SLAs.**  The router reads
the watermark vector once, pins ONE snapshot for the whole fan-out, and
ships both to every shard; partial-cache entries are keyed by the
shipped vector (plus the group tuple), so no replica can serve a cached
partial staler than the router's observation, and fills are gated by
the router's commit-race verdict exactly like the single-server path.
``max_staleness`` / ``session_token`` contracts are enforced *at the
router* with the same pin/validate/wait loop as
:meth:`QueryServer._execute_sla`, so an SLA answer is never silently
stale regardless of which replicas served the partials.
"""

from __future__ import annotations

import threading
import time

from ..core.search import (
    VectorSearchOptions,
    build_topk_vertex_set,
    merge_sharded_topk,
)
from ..core.service import EmbeddingStore
from ..errors import (
    AdmissionRejectedError,
    ElasticError,
    ReproError,
    SegmentOwnershipError,
    ServeError,
    StalenessBoundError,
)
from ..serve.server import ServeConfig
from ..telemetry import get_telemetry
from .autoscale import Autoscaler, AutoscalePolicy
from .ring import ConsistentHashRing
from .shard import ShardServer

__all__ = ["ElasticTier"]

#: Routing rounds before the router gives up on a query.  Each round
#: re-resolves ownership, so >1 failures per key require >1 concurrent
#: membership events; six rounds is far beyond any schedule the chaos
#: matrix produces while still bounding a pathological flap.
_MAX_ROUTE_ROUNDS = 6

#: Snapshot re-pin cadence for the router-level SLA wait loop.
_SLA_RETRY_SLEEP = 0.0005

#: Gate re-check cadence while a key drains (the rebalancer notifies the
#: condition on completion; the timeout only bounds lost-wakeup risk).
_GATE_WAIT = 0.05


class _Ownership:
    """Mutable routing state for one materialized ``(tenant, group)`` key.

    All fields are guarded by the tier's single routing condition; the
    entry object itself is stable for the key's lifetime (rebalances
    mutate ``server`` in place so gated waiters resume on the same
    entry).
    """

    __slots__ = ("server", "draining", "inflight")

    def __init__(self, server: str):
        self.server = server
        self.draining = False
        self.inflight = 0


class ElasticTier:
    """Shard-routing front tier over one database: route, merge, rebalance."""

    def __init__(
        self,
        db,
        num_servers: int = 2,
        config: ServeConfig | None = None,
        tenants=None,
        policy=None,
        injectors: dict | None = None,
        group_size: int = 1,
        vnodes: int = 96,
        server_prefix: str = "shard",
        autoscale: AutoscalePolicy | None = None,
    ):
        if num_servers < 1:
            raise ElasticError("need at least one server")
        if group_size < 1:
            raise ElasticError("group_size must be at least 1")
        self.db = db
        self.config = config or ServeConfig()
        self.policy = policy
        self.group_size = int(group_size)
        self.server_prefix = str(server_prefix)
        self._tenants = tenants
        self._injectors = dict(injectors or {})
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.shards: dict[str, ShardServer] = {}
        self._server_seq = 0
        self.autoscaler = Autoscaler(autoscale or AutoscalePolicy())
        # One condition guards the ownership map and every entry's
        # draining/inflight state; telemetry is recorded outside it.
        self._route_cond = threading.Condition(threading.Lock())
        self._owners: dict[tuple[str, int], _Ownership] = {}
        self._dead: set[str] = set()
        self._rebalance_log: list[dict] = []
        self._started = False
        for _ in range(num_servers):
            self._new_shard()

    # ------------------------------------------------------------- lifecycle
    def _new_shard(self) -> ShardServer:
        name = f"{self.server_prefix}-{self._server_seq}"
        self._server_seq += 1
        shard = ShardServer(
            self.db,
            name,
            config=self.config,
            tenants=self._tenants,
            policy=self.policy,
            injector=self._injectors.get(name),
            group_size=self.group_size,
        )
        with self._route_cond:
            self.shards[name] = shard
        self.ring.add(name)  # ring is its own lock leaf: add outside the cond
        return shard

    def start(self) -> "ElasticTier":
        for shard in self.shards.values():
            shard.start()
        self._started = True
        get_telemetry().set_gauge("elastic.servers", len(self._live_names()))
        return self

    def stop(self) -> None:
        for shard in self.shards.values():
            shard.stop()

    def __enter__(self) -> "ElasticTier":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _live_names(self) -> list[str]:
        return [
            name
            for name, shard in sorted(self.shards.items())
            if shard.running and name not in self._dead
        ]

    # --------------------------------------------------------------- routing
    def _watermarks(self, vector_attributes) -> tuple:
        schema = self.db.schema
        marks = []
        for qualified in vector_attributes:
            vertex_type, _ = schema.embedding_attribute(qualified)
            store = self.db.service.store(vertex_type, qualified.split(".", 1)[1])
            marks.append(store.watermark())
        return tuple(marks)

    def group_universe(self, vector_attributes) -> list[int]:
        """Every group id a query over these attributes can touch."""
        schema = self.db.schema
        max_segments = 1
        for qualified in vector_attributes:
            vertex_type, _ = schema.embedding_attribute(qualified)
            store = self.db.service.store(vertex_type, qualified.split(".", 1)[1])
            max_segments = max(max_segments, store.num_segments)
        num_groups = -(-max_segments // self.group_size)  # ceil
        return list(range(num_groups))

    def _materialize(self, tenant: str, group: int) -> _Ownership:
        """Entry for a key, granting the ring owner on first touch.

        Grant-before-publish: by the time any thread can route on the
        entry, the shard-side ownership set already admits the key, so a
        freshly materialized key can never bounce off the execution-time
        ownership check.
        """
        key = (tenant, int(group))
        with self._route_cond:
            entry = self._owners.get(key)
        if entry is not None:
            return entry
        owner = self.ring.owner(tenant, group)
        self.shards[owner].grant(tenant, group)
        with self._route_cond:
            entry = self._owners.get(key)
            if entry is None:
                entry = _Ownership(owner)
                self._owners[key] = entry
            return entry

    def _acquire(self, tenant: str, groups: list[int]) -> list[tuple[int, _Ownership]]:
        """Gate past drains and take an in-flight ref on every group."""
        for group in groups:
            self._materialize(tenant, group)
        gate_waits = 0
        acquired: list[tuple[int, _Ownership]] = []
        with self._route_cond:
            for group in groups:
                entry = self._owners[(tenant, int(group))]
                while entry.draining:
                    gate_waits += 1
                    self._route_cond.wait(_GATE_WAIT)
                entry.inflight += 1
                acquired.append((int(group), entry))
        if gate_waits:
            get_telemetry().inc("elastic.handoff_gate_waits", gate_waits)
        return acquired

    def _release(self, acquired: list[tuple[int, _Ownership]]) -> None:
        with self._route_cond:
            for _, entry in acquired:
                entry.inflight -= 1
            self._route_cond.notify_all()

    def _routed_parts(
        self,
        vector_attributes,
        query,
        k: int,
        *,
        tenant: str,
        ef,
        filter,
        snapshot,
        watermarks: tuple,
        cache_ok: bool,
        groups: list[int],
        deadline: float | None,
    ) -> list:
        """Fan the group set to owners, retrying routes lost to races/crashes."""
        tel = get_telemetry()
        parts: list = []
        remaining = list(groups)
        for _ in range(_MAX_ROUTE_ROUNDS):
            if not remaining:
                return parts
            acquired = self._acquire(tenant, remaining)
            failed: list[int] = []
            dead: set[str] = set()
            try:
                assignment: dict[str, list[int]] = {}
                for group, entry in acquired:
                    assignment.setdefault(entry.server, []).append(group)
                futures = []
                for server, server_groups in sorted(assignment.items()):
                    shard = self.shards.get(server)
                    if shard is None or not shard.running:
                        failed.extend(server_groups)
                        dead.add(server)
                        continue
                    try:
                        future = shard.submit_shard(
                            vector_attributes,
                            query,
                            k,
                            tenant=tenant,
                            ef=ef,
                            filter=filter,
                            snapshot=snapshot,
                            watermarks=watermarks,
                            cache_ok=cache_ok,
                            groups=server_groups,
                            deadline=deadline,
                        )
                    except ServeError:
                        # Refused at the door mid-shutdown: treat like a
                        # dead server and re-route its groups.
                        failed.extend(server_groups)
                        dead.add(server)
                        continue
                    futures.append((server, server_groups, future))
                for server, server_groups, future in futures:
                    error = future.exception()
                    if error is None:
                        parts.append(future.result())
                        continue
                    if isinstance(error, SegmentOwnershipError):
                        failed.extend(server_groups)
                    elif (
                        isinstance(error, AdmissionRejectedError)
                        and error.reason == "shutdown"
                    ):
                        failed.extend(server_groups)
                        dead.add(server)
                    else:
                        raise error
            finally:
                self._release(acquired)
            for server in dead:
                self.handle_crash(server)
            if failed:
                tel.inc("elastic.route_retries", len(failed))
            remaining = failed
        raise ElasticError(
            f"routing did not converge after {_MAX_ROUTE_ROUNDS} rounds "
            f"(groups {sorted(remaining)} kept moving)"
        )

    # ---------------------------------------------------------------- search
    def search(
        self,
        vector_attributes,
        query_vector,
        k: int,
        *,
        tenant: str = "default",
        ef: int | None = None,
        filter=None,
        distance_map=None,
        timeout: float | None = None,
        max_staleness: int | None = None,
        session_token: int | None = None,
    ):
        """Routed top-k: fan to owners, merge, materialize a VertexSet.

        The result is byte-identical to ``QueryServer``'s (and therefore
        to a direct ``db.vector_search``): same snapshot semantics —
        one pinned snapshot serves every shard — and the merge re-applies
        the exact (distance, vid) and stable-by-distance orders of the
        unsharded pipeline.
        """
        tel = get_telemetry()
        tel.inc("elastic.routed_requests")
        if not self._started:
            raise ServeError("ElasticTier is not running; call start() first")
        attrs = list(vector_attributes)
        groups = self.group_universe(attrs)
        submitted_at = time.monotonic()
        if timeout is None:
            timeout = self.config.default_timeout
        deadline = None if timeout is None else submitted_at + timeout
        if max_staleness is None:
            max_staleness = self.config.default_max_staleness
        if max_staleness is not None or session_token is not None:
            return self._search_sla(
                attrs,
                query_vector,
                k,
                tenant=tenant,
                ef=ef,
                filter=filter,
                distance_map=distance_map,
                deadline=deadline,
                max_staleness=max_staleness,
                session_token=session_token,
                groups=groups,
                submitted_at=submitted_at,
            )
        watermarks = self._watermarks(attrs)
        with self.db.snapshot() as snapshot:
            cache_ok = all(
                EmbeddingStore.watermark_tid(mark) <= snapshot.tid
                for mark in watermarks
            )
            if not cache_ok:
                tel.inc("elastic.cache_coherence_bypass")
            parts = self._routed_parts(
                attrs,
                query_vector,
                k,
                tenant=tenant,
                ef=ef,
                filter=filter,
                snapshot=snapshot,
                watermarks=watermarks,
                cache_ok=cache_ok,
                groups=groups,
                deadline=deadline,
            )
        merged = merge_sharded_topk(parts, int(k))
        return build_topk_vertex_set(merged, distance_map)

    def _search_sla(
        self,
        attrs,
        query_vector,
        k: int,
        *,
        tenant: str,
        ef,
        filter,
        distance_map,
        deadline,
        max_staleness,
        session_token,
        groups,
        submitted_at,
    ):
        """Router-level freshness contract: fresh across every replica, or typed.

        Mirrors :meth:`QueryServer._execute_sla`; validating *before*
        fan-out means the verdict holds for the one shipped snapshot all
        replicas execute on, which is what makes the contract
        cross-replica.
        """
        tel = get_telemetry()
        limit = submitted_at + self.config.staleness_wait
        if deadline is not None:
            limit = min(limit, deadline)
        while True:
            marks = self._watermarks(attrs)
            with self.db.snapshot() as snapshot:
                lag = EmbeddingStore.watermark_lag(marks, snapshot.tid)
                stale = max_staleness is not None and lag > max_staleness
                behind = session_token is not None and snapshot.tid < session_token
                if not stale and not behind:
                    cache_ok = lag == 0
                    if not cache_ok:
                        tel.inc("elastic.cache_coherence_bypass")
                    parts = self._routed_parts(
                        attrs,
                        query_vector,
                        k,
                        tenant=tenant,
                        ef=ef,
                        filter=filter,
                        snapshot=snapshot,
                        watermarks=marks,
                        cache_ok=cache_ok,
                        groups=groups,
                        deadline=deadline,
                    )
                    merged = merge_sharded_topk(parts, int(k))
                    return build_topk_vertex_set(merged, distance_map)
            now = time.monotonic()
            if now >= limit:
                waited = now - submitted_at
                if behind:
                    tel.inc("serve.session_token_rejections")
                    raise StalenessBoundError(
                        f"no snapshot covering session token {session_token} "
                        f"within {waited:.3f}s",
                        session_token=session_token,
                        waited=waited,
                    )
                tel.inc("serve.staleness_rejections")
                raise StalenessBoundError(
                    f"snapshot lag {lag} exceeds max_staleness {max_staleness} "
                    f"after {waited:.3f}s",
                    max_staleness=max_staleness,
                    lag=lag,
                    waited=waited,
                )
            tel.inc(
                "serve.session_token_waits" if behind else "serve.staleness_waits"
            )
            time.sleep(min(_SLA_RETRY_SLEEP, limit - now))

    # ------------------------------------------------------------- rebalance
    def rebalance(self, tenant: str, group: int, to_server: str) -> dict | None:
        """Move one key live: drain at a TID, transfer, re-admit.

        Returns the handoff log entry, or ``None`` for a no-op move.
        """
        if to_server not in self.shards:
            raise ElasticError(f"unknown rebalance target '{to_server}'")
        if not self.shards[to_server].running:
            raise ElasticError(f"rebalance target '{to_server}' is not running")
        tel = get_telemetry()
        self._materialize(tenant, group)
        key = (tenant, int(group))
        gate_waits = 0
        with self._route_cond:
            entry = self._owners[key]
            while entry.draining:
                # One handoff at a time per key; a concurrent mover waits
                # its turn like any routed request.
                gate_waits += 1
                self._route_cond.wait(_GATE_WAIT)
            if entry.server == to_server:
                return None
            from_server = entry.server
            entry.draining = True
        if gate_waits:
            tel.inc("elastic.handoff_gate_waits", gate_waits)
        # The MVCC handoff point: every request admitted before the gate
        # closed pinned a snapshot at or before this TID; everything after
        # re-admission executes on the new owner.
        with self.db.snapshot() as snapshot:
            drain_tid = snapshot.tid
        drain_waits = 0
        with self._route_cond:
            while entry.inflight > 0:
                drain_waits += 1
                self._route_cond.wait(_GATE_WAIT)
        # Grant before revoke: the key always has at least one admitted
        # owner, and routing is still gated so nobody can race the pair.
        self.shards[to_server].grant(tenant, group)
        self.shards[from_server].revoke(tenant, group)
        self.ring.pin(tenant, group, to_server)
        with self._route_cond:
            entry.server = to_server
            entry.draining = False
            self._route_cond.notify_all()
        tel.inc("elastic.rebalances")
        if drain_waits:
            tel.inc("elastic.rebalance_drain_waits", drain_waits)
        record = {
            "tenant": tenant,
            "group": int(group),
            "from": from_server,
            "to": to_server,
            "drain_tid": drain_tid,
            "drain_waits": drain_waits,
        }
        self._rebalance_log.append(record)
        return record

    def rebalance_evenly(self, tenant: str, vector_attributes) -> int:
        """Drive ownership to the bounded-load assignment; returns move count."""
        groups = self.group_universe(list(vector_attributes))
        live = self._live_names()
        target = ConsistentHashRing(vnodes=self.ring.vnodes)
        for name in live:
            target.add(name)
        plan = target.balanced_assignment(tenant, groups)
        moves = 0
        for group, server in sorted(plan.items()):
            entry = self._materialize(tenant, group)
            if entry.server != server:
                if self.rebalance(tenant, group, server) is not None:
                    moves += 1
        return moves

    def handle_crash(self, name: str) -> int:
        """Fail a server out: leave the ring, reassign its keys; returns moves."""
        first = name not in self._dead
        self._dead.add(name)
        self.ring.remove(name)
        with self._route_cond:
            orphaned = [
                (tenant, group)
                for (tenant, group), entry in self._owners.items()
                if entry.server == name
            ]
        moved = 0
        for tenant, group in sorted(orphaned):
            new_owner = self.ring.owner(tenant, group)
            self.shards[new_owner].grant(tenant, group)
            with self._route_cond:
                entry = self._owners[(tenant, group)]
                if entry.server == name:
                    entry.server = new_owner
                    entry.draining = False
                    moved += 1
                self._route_cond.notify_all()
        tel = get_telemetry()
        if first:
            tel.inc("elastic.crash_failovers")
        tel.set_gauge("elastic.servers", len(self._live_names()))
        return moved

    # ------------------------------------------------------------ autoscaling
    def add_server(self) -> str:
        """Scale out one server and migrate keys the ring now hashes to it."""
        shard = self._new_shard()
        if self._started:
            shard.start()
        with self._route_cond:
            materialized = sorted(self._owners)
        pins = self.ring.pins()
        for tenant, group in materialized:
            if (tenant, group) in pins:
                continue  # rebalancer decisions outrank hash movement
            owner = self.ring.owner(tenant, group)
            with self._route_cond:
                current = self._owners[(tenant, group)].server
            if owner != current:
                self.rebalance(tenant, group, owner)
        get_telemetry().set_gauge("elastic.servers", len(self._live_names()))
        return shard.name

    def remove_server(self, name: str | None = None) -> str:
        """Scale in one server gracefully: migrate every key, then stop it."""
        live = self._live_names()
        if len(live) <= 1:
            raise ElasticError("cannot remove the last live server")
        if name is None:
            name = live[-1]
        if name not in self.shards or name not in live:
            raise ElasticError(f"unknown or dead server '{name}'")
        self.ring.remove(name)
        with self._route_cond:
            owned = sorted(
                key for key, entry in self._owners.items() if entry.server == name
            )
        for tenant, group in owned:
            self.rebalance(tenant, group, self.ring.owner(tenant, group))
        shard = self.shards.pop(name)
        shard.stop()
        get_telemetry().set_gauge("elastic.servers", len(self._live_names()))
        return name

    def autoscale_step(self) -> str:
        """One policy tick off live telemetry p99s; returns the decision."""
        tel = get_telemetry()
        p99 = tel.registry.histogram("serve.queue_wait_seconds").percentile(0.99)
        decision = self.autoscaler.observe(p99, len(self._live_names()))
        if decision == "scale_out":
            self.add_server()
            tel.inc("elastic.scale_out")
        elif decision == "scale_in":
            self.remove_server()
            tel.inc("elastic.scale_in")
        return decision

    # ---------------------------------------------------------------- stats
    def ownership(self) -> dict[str, dict[str, list[int]]]:
        """server -> tenant -> sorted groups (materialized keys only)."""
        with self._route_cond:
            items = [(key, entry.server) for key, entry in self._owners.items()]
        out: dict[str, dict[str, list[int]]] = {}
        for (tenant, group), server in sorted(items):
            out.setdefault(server, {}).setdefault(tenant, []).append(group)
        return out

    def stats(self) -> dict:
        """Router + per-server stats for the CLI/shell surfaces."""
        tel = get_telemetry()
        per_server = {}
        for name, shard in sorted(self.shards.items()):
            stats = shard.stats()
            cache = stats.get("cache") or {}
            per_server[name] = {
                "running": stats["running"],
                "owned": stats["owned"],
                "rebalances_in": stats["rebalances_in"],
                "rebalances_out": stats["rebalances_out"],
                "queue_depth": stats["queue_depth"],
                "workers_alive": stats.get("workers_alive", 0),
                "cache_hit_ratio": cache.get("hit_ratio", 0.0),
                "cache_entries": cache.get("entries", 0),
            }
        return {
            "servers": per_server,
            "live_servers": self._live_names(),
            "ownership": self.ownership(),
            "rebalances": len(self._rebalance_log),
            "rebalance_log": list(self._rebalance_log),
            "routed_requests": tel.registry.counter("elastic.routed_requests").value,
            "route_retries": tel.registry.counter("elastic.route_retries").value,
            "cache_coherence_bypass": tel.registry.counter(
                "elastic.cache_coherence_bypass"
            ).value,
            "crash_failovers": tel.registry.counter("elastic.crash_failovers").value,
        }
