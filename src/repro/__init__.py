"""TigerVector reproduction: vector search inside an MPP graph database.

A pure-Python reproduction of *TigerVector: Supporting Vector Search in
Graph Databases for Advanced RAGs* (SIGMOD 2025): a segmented property-graph
engine with MVCC transactions, decoupled embedding storage with per-segment
HNSW indexes, a two-stage vector vacuum, a GSQL-subset query language with
declarative and composable vector search, a simulated MPP cluster, and
behavioral simulators for the paper's competitor systems.

Quick start::

    from repro import TigerVectorDB

    db = TigerVectorDB()
    db.run_gsql('''
        CREATE VERTEX Post (id INT PRIMARY KEY, language STRING);
        ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb
          (DIMENSION = 128, MODEL = GPT4, INDEX = HNSW,
           DATATYPE = FLOAT, METRIC = L2);
    ''')
    with db.begin() as txn:
        txn.upsert_vertex("Post", 1, {"language": "en"})
        txn.set_embedding("Post", 1, "content_emb", vec)
    db.vacuum()
    top = db.run_gsql(
        "SELECT s FROM (s:Post) "
        "ORDER BY VECTOR_DIST(s.content_emb, query_vector) LIMIT k;",
        query_vector=vec, k=10,
    ).result
"""

from .core.database import TigerVectorDB
from .core.embedding import EmbeddingSpace, EmbeddingType
from .errors import ReproError
from .graph.schema import Attribute, EdgeType, GraphSchema, VertexType
from .graph.vertex_set import RankedVertexSet, VertexSet
from .types import AttrType, DataType, IndexType, Metric

__version__ = "1.0.0"

__all__ = [
    "AttrType",
    "Attribute",
    "DataType",
    "EdgeType",
    "EmbeddingSpace",
    "EmbeddingType",
    "GraphSchema",
    "IndexType",
    "Metric",
    "RankedVertexSet",
    "ReproError",
    "TigerVectorDB",
    "VertexSet",
    "VertexType",
    "__version__",
]
