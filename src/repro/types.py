"""Common value types and numpy distance kernels.

Defines the attribute data types supported by the graph engine, the vector
distance metrics supported by the embedding type (Sec. 4.1 of the paper), and
vectorized distance kernels used by both the HNSW index and the brute-force
paths.

Distance conventions
--------------------
All metrics are expressed as *distances* (smaller is closer):

- ``L2``: squared Euclidean distance.  Using the squared form preserves the
  ordering and avoids a sqrt per candidate, which is what hnswlib does.
- ``IP``: ``1 - <a, b>`` (inner-product similarity turned into a distance).
- ``COSINE``: ``1 - cos(a, b)``.
"""

from __future__ import annotations

import enum
from typing import Callable

import numpy as np

from .errors import DimensionMismatchError, VectorSearchError

__all__ = [
    "AttrType",
    "DataType",
    "IndexType",
    "Metric",
    "batch_distances",
    "batch_distances_multi",
    "distance",
    "normalize",
    "pairwise_distances",
]


class AttrType(enum.Enum):
    """Data types for ordinary (non-embedding) vertex/edge attributes."""

    INT = "INT"
    UINT = "UINT"
    FLOAT = "FLOAT"
    DOUBLE = "DOUBLE"
    BOOL = "BOOL"
    STRING = "STRING"
    DATETIME = "DATETIME"
    LIST_FLOAT = "LIST<FLOAT>"
    LIST_INT = "LIST<INT>"


class DataType(enum.Enum):
    """Element data types for embedding attributes."""

    FLOAT = "FLOAT"
    DOUBLE = "DOUBLE"

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self is DataType.FLOAT else np.float64)


class IndexType(enum.Enum):
    """Vector index algorithms supported for an embedding attribute.

    HNSW is the paper's default; FLAT is exact brute force; IVF_FLAT and
    SQ8 are the "quantization-based indexes" extension the paper says plugs
    in behind the same four generic functions (Sec. 4.4).
    """

    HNSW = "HNSW"
    FLAT = "FLAT"
    IVF_FLAT = "IVF_FLAT"
    SQ8 = "SQ8"
    IVF_PQ = "IVF_PQ"


class Metric(enum.Enum):
    """Similarity metric used by VECTOR_DIST and the vector indexes."""

    L2 = "L2"
    IP = "IP"
    COSINE = "COSINE"


def normalize(vectors: np.ndarray) -> np.ndarray:
    """Return L2-normalized copies of ``vectors`` (1-d or 2-d).

    Zero vectors are left unchanged rather than producing NaNs.
    """
    arr = np.asarray(vectors, dtype=np.float32)
    if arr.ndim == 1:
        norm = float(np.linalg.norm(arr))
        return arr if norm == 0.0 else arr / norm
    norms = np.linalg.norm(arr, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return arr / norms


def _check_dims(query: np.ndarray, vectors: np.ndarray) -> None:
    if query.shape[-1] != vectors.shape[-1]:
        raise DimensionMismatchError(
            f"query has dimension {query.shape[-1]} but vectors have "
            f"dimension {vectors.shape[-1]}"
        )


def batch_distances(query: np.ndarray, vectors: np.ndarray, metric: Metric) -> np.ndarray:
    """Distances from one query vector to each row of ``vectors``.

    This is the hot kernel shared by brute-force search, HNSW neighbour
    expansion, and delta-overlay scans.  ``vectors`` must be 2-d; the result
    is a 1-d float32 array of length ``len(vectors)``.
    """
    query = np.asarray(query, dtype=np.float32)
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim != 2:
        raise VectorSearchError("batch_distances expects a 2-d vector matrix")
    _check_dims(query, vectors)
    if metric is Metric.L2:
        diff = vectors - query
        return np.einsum("ij,ij->i", diff, diff)
    if metric is Metric.IP:
        return 1.0 - vectors @ query
    if metric is Metric.COSINE:
        qn = float(np.linalg.norm(query))
        vn = np.linalg.norm(vectors, axis=1)
        denom = vn * qn
        denom[denom == 0.0] = 1.0
        sims = (vectors @ query) / denom
        if qn == 0.0:
            sims[:] = 0.0
        return 1.0 - sims
    raise VectorSearchError(f"unsupported metric: {metric}")


def batch_distances_multi(
    queries: np.ndarray, vectors: np.ndarray, metric: Metric
) -> np.ndarray:
    """Fused multi-query distance kernel: ``(Q, d) x (N, d) -> (Q, N)``.

    The serving micro-batcher uses this so Q concurrent queries share one
    pass (one matmul) over a segment's vectors instead of Q separate scans.
    Row ``q`` equals ``batch_distances(queries[q], vectors, metric)`` up to
    floating-point summation order.
    """
    queries = np.asarray(queries, dtype=np.float32)
    vectors = np.asarray(vectors, dtype=np.float32)
    if queries.ndim != 2 or vectors.ndim != 2:
        raise VectorSearchError("batch_distances_multi expects 2-d matrices")
    _check_dims(queries, vectors)
    return pairwise_distances(queries, vectors, metric)


def distance(a: np.ndarray, b: np.ndarray, metric: Metric) -> float:
    """Distance between two single vectors under ``metric``."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    _check_dims(a, b.reshape(1, -1))
    return float(batch_distances(a, b.reshape(1, -1), metric)[0])


def pairwise_distances(a: np.ndarray, b: np.ndarray, metric: Metric) -> np.ndarray:
    """All-pairs distance matrix between rows of ``a`` and rows of ``b``.

    Used by ground-truth computation and the similarity-join brute force.
    Returns a ``(len(a), len(b))`` float32 matrix.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    _check_dims(a, b)
    if metric is Metric.L2:
        a_sq = np.einsum("ij,ij->i", a, a)[:, None]
        b_sq = np.einsum("ij,ij->i", b, b)[None, :]
        return np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0)
    if metric is Metric.IP:
        return 1.0 - a @ b.T
    if metric is Metric.COSINE:
        return 1.0 - normalize(a) @ normalize(b).T
    raise VectorSearchError(f"unsupported metric: {metric}")


DistanceFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
