"""Weakly connected components via union-find."""

from __future__ import annotations

from typing import Iterable

from ..graph.schema import GraphSchema
from ..graph.txn import Snapshot
from .common import Member, build_adjacency

__all__ = ["weakly_connected_components"]


class _UnionFind:
    def __init__(self):
        self.parent: dict[Member, Member] = {}
        self.rank: dict[Member, int] = {}

    def find(self, item: Member) -> Member:
        parent = self.parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self.parent[item] = root
            return root
        return item

    def union(self, a: Member, b: Member) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank.get(ra, 0) < self.rank.get(rb, 0):
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank.get(ra, 0) == self.rank.get(rb, 0):
            self.rank[ra] = self.rank.get(ra, 0) + 1


def weakly_connected_components(
    snapshot: Snapshot,
    schema: GraphSchema,
    vertex_types: Iterable[str],
    edge_types: Iterable[str],
) -> dict[Member, int]:
    """``(vertex_type, vid) -> dense component id`` ignoring edge direction."""
    adjacency = build_adjacency(snapshot, schema, vertex_types, edge_types, symmetric=True)
    uf = _UnionFind()
    for node, neighbors in adjacency.items():
        uf.find(node)
        for neighbor in neighbors:
            uf.union(node, neighbor)
    roots: dict[Member, int] = {}
    out: dict[Member, int] = {}
    for node in adjacency:
        root = uf.find(node)
        if root not in roots:
            roots[root] = len(roots)
        out[node] = roots[root]
    return out
