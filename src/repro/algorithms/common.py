"""Shared helpers for graph algorithms: snapshot -> adjacency extraction."""

from __future__ import annotations

from typing import Iterable

from ..graph.schema import GraphSchema
from ..graph.txn import Snapshot

__all__ = ["build_adjacency"]

Member = tuple[str, int]  # (vertex_type, vid)


def build_adjacency(
    snapshot: Snapshot,
    schema: GraphSchema,
    vertex_types: Iterable[str],
    edge_types: Iterable[str],
    symmetric: bool = True,
) -> dict[Member, list[Member]]:
    """Adjacency lists over the chosen vertex and edge types.

    ``symmetric=True`` adds the reverse direction for directed edges, which
    community detection and WCC want; PageRank passes ``False``.
    """
    vertex_types = list(vertex_types)
    edge_types = list(edge_types)
    wanted = set(vertex_types)
    adjacency: dict[Member, list[Member]] = {}
    for vertex_type in vertex_types:
        for vid in snapshot.iter_vids(vertex_type):
            adjacency[(vertex_type, vid)] = []
    for edge_name in edge_types:
        etype = schema.edge_type(edge_name)
        if etype.from_type not in wanted or etype.to_type not in wanted:
            continue
        for vid in snapshot.iter_vids(etype.from_type):
            source = (etype.from_type, vid)
            for target in snapshot.neighbors(etype.from_type, vid, edge_name):
                member = (etype.to_type, target)
                if member not in adjacency:
                    continue
                adjacency[source].append(member)
                if symmetric and etype.directed:
                    adjacency[member].append(source)
    return adjacency
