"""Louvain community detection (Blondel et al. 2008), from scratch.

The paper's Q4 uses ``tg_louvain`` to tag Person vertices with a community
id, then runs a top-k vector search inside each community.  This is the
classic two-phase algorithm: local modularity-gain moves until convergence,
then graph aggregation, repeated until modularity stops improving.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..graph.schema import GraphSchema
from ..graph.txn import Snapshot
from .common import Member, build_adjacency

__all__ = ["louvain_communities", "louvain_on_adjacency"]


def louvain_on_adjacency(
    adjacency: dict[Member, list[Member]],
    resolution: float = 1.0,
    seed: int = 7,
    max_levels: int = 10,
) -> dict[Member, int]:
    """Community id per node for an undirected (symmetrized) adjacency.

    Parallel edges accumulate weight; self-loops are allowed (they appear
    during aggregation).  Returns dense community ids starting at 0.
    """
    nodes = list(adjacency)
    if not nodes:
        return {}
    # Weighted edge dict from the (possibly multi-) adjacency.
    weights: dict[tuple[int, int], float] = {}
    index = {node: i for i, node in enumerate(nodes)}
    for node, neighbors in adjacency.items():
        u = index[node]
        for neighbor in neighbors:
            v = index[neighbor]
            if u <= v:
                key = (u, v)
                weights[key] = weights.get(key, 0.0) + (0.5 if u != v else 1.0)
    # Each undirected edge was visited from both endpoints, hence the 0.5.

    membership = list(range(len(nodes)))  # node -> community at finest level
    current_edges = weights
    current_n = len(nodes)
    rng = random.Random(seed)

    for _ in range(max_levels):
        moved, labels = _one_level(current_n, current_edges, resolution, rng)
        # Re-map memberships through this level's labels.
        membership = [labels[c] for c in membership]
        if not moved:
            break
        # Aggregate: communities become nodes.
        new_ids = sorted(set(labels))
        remap = {c: i for i, c in enumerate(new_ids)}
        membership = [remap[c] for c in membership]
        aggregated: dict[tuple[int, int], float] = {}
        for (u, v), w in current_edges.items():
            cu, cv = remap[labels[u]], remap[labels[v]]
            key = (min(cu, cv), max(cu, cv))
            aggregated[key] = aggregated.get(key, 0.0) + w
        current_edges = aggregated
        current_n = len(new_ids)

    dense = {c: i for i, c in enumerate(sorted(set(membership)))}
    return {node: dense[membership[index[node]]] for node in nodes}


def _one_level(
    n: int,
    edges: dict[tuple[int, int], float],
    resolution: float,
    rng: random.Random,
) -> tuple[bool, list[int]]:
    """One local-move phase; returns (any_move_happened, node->community)."""
    neighbors: list[dict[int, float]] = [dict() for _ in range(n)]
    degree = [0.0] * n
    self_loops = [0.0] * n
    total_weight = 0.0
    for (u, v), w in edges.items():
        total_weight += w
        if u == v:
            self_loops[u] += w
            degree[u] += 2 * w
        else:
            neighbors[u][v] = neighbors[u].get(v, 0.0) + w
            neighbors[v][u] = neighbors[v].get(u, 0.0) + w
            degree[u] += w
            degree[v] += w
    if total_weight == 0.0:
        return False, list(range(n))
    m2 = 2.0 * total_weight

    community = list(range(n))
    comm_degree = degree[:]  # sum of degrees per community
    order = list(range(n))
    rng.shuffle(order)
    moved_any = False
    improved = True
    while improved:
        improved = False
        for u in order:
            cu = community[u]
            ku = degree[u]
            # Weights from u to each neighbouring community.
            to_comm: dict[int, float] = {}
            for v, w in neighbors[u].items():
                to_comm[community[v]] = to_comm.get(community[v], 0.0) + w
            # Detach u.
            comm_degree[cu] -= ku
            base = to_comm.get(cu, 0.0) - resolution * ku * comm_degree[cu] / m2
            best_comm, best_gain = cu, 0.0
            for candidate, w_in in to_comm.items():
                if candidate == cu:
                    continue
                gain = (w_in - resolution * ku * comm_degree[candidate] / m2) - base
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_comm = candidate
            community[u] = best_comm
            comm_degree[best_comm] += ku
            if best_comm != cu:
                improved = True
                moved_any = True
    return moved_any, community


def louvain_communities(
    snapshot: Snapshot,
    schema: GraphSchema,
    vertex_types: Iterable[str],
    edge_types: Iterable[str],
    resolution: float = 1.0,
    seed: int = 7,
) -> dict[Member, int]:
    """Louvain over a storage snapshot; ``(vertex_type, vid) -> community``."""
    adjacency = build_adjacency(snapshot, schema, vertex_types, edge_types, symmetric=True)
    return louvain_on_adjacency(adjacency, resolution=resolution, seed=seed)
