"""Breadth-first search utilities over a storage snapshot."""

from __future__ import annotations

from collections import deque
from typing import Iterable

from ..graph.schema import GraphSchema
from ..graph.txn import Snapshot
from .common import Member, build_adjacency

__all__ = ["bfs_distances", "single_source_shortest_path"]


def bfs_distances(
    snapshot: Snapshot,
    schema: GraphSchema,
    source: Member,
    vertex_types: Iterable[str],
    edge_types: Iterable[str],
    max_depth: int | None = None,
) -> dict[Member, int]:
    """Hop distance from ``source`` to every reachable vertex."""
    adjacency = build_adjacency(snapshot, schema, vertex_types, edge_types, symmetric=False)
    if source not in adjacency:
        return {}
    distances: dict[Member, int] = {source: 0}
    queue: deque[Member] = deque([source])
    while queue:
        node = queue.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in adjacency[node]:
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return distances


def single_source_shortest_path(
    snapshot: Snapshot,
    schema: GraphSchema,
    source: Member,
    target: Member,
    vertex_types: Iterable[str],
    edge_types: Iterable[str],
) -> list[Member] | None:
    """One shortest hop-path from source to target, or None if unreachable."""
    adjacency = build_adjacency(snapshot, schema, vertex_types, edge_types, symmetric=False)
    if source not in adjacency:
        return None
    parents: dict[Member, Member | None] = {source: None}
    queue: deque[Member] = deque([source])
    while queue:
        node = queue.popleft()
        if node == target:
            path = [node]
            while parents[path[-1]] is not None:
                path.append(parents[path[-1]])
            return list(reversed(path))
        for neighbor in adjacency[node]:
            if neighbor not in parents:
                parents[neighbor] = node
                queue.append(neighbor)
    return None
