"""Graph algorithms that compose with vector search (paper Sec. 5.5, Q4).

GSQL ships a graph algorithm library (``tg_louvain`` etc.); the paper's Q4
combines Louvain community detection with per-community top-k vector search.
These implementations operate on a storage snapshot via a common adjacency
extraction helper.
"""

from .bfs import bfs_distances, single_source_shortest_path
from .common import build_adjacency
from .louvain import louvain_communities
from .pagerank import pagerank
from .wcc import weakly_connected_components

__all__ = [
    "bfs_distances",
    "build_adjacency",
    "louvain_communities",
    "pagerank",
    "single_source_shortest_path",
    "weakly_connected_components",
]
