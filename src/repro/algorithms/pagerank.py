"""PageRank with damping, over a storage snapshot."""

from __future__ import annotations

from typing import Iterable

from ..graph.schema import GraphSchema
from ..graph.txn import Snapshot
from .common import Member, build_adjacency

__all__ = ["pagerank", "pagerank_on_adjacency"]


def pagerank_on_adjacency(
    adjacency: dict[Member, list[Member]],
    damping: float = 0.85,
    iterations: int = 20,
    tolerance: float = 1e-9,
) -> dict[Member, float]:
    """Power iteration; dangling mass is redistributed uniformly."""
    nodes = list(adjacency)
    n = len(nodes)
    if n == 0:
        return {}
    index = {node: i for i, node in enumerate(nodes)}
    out_degree = [len(adjacency[node]) for node in nodes]
    rank = [1.0 / n] * n
    for _ in range(iterations):
        next_rank = [0.0] * n
        dangling = 0.0
        for i, node in enumerate(nodes):
            if out_degree[i] == 0:
                dangling += rank[i]
                continue
            share = rank[i] / out_degree[i]
            for neighbor in adjacency[node]:
                next_rank[index[neighbor]] += share
        base = (1.0 - damping) / n + damping * dangling / n
        next_rank = [base + damping * r for r in next_rank]
        delta = sum(abs(a - b) for a, b in zip(next_rank, rank))
        rank = next_rank
        if delta < tolerance:
            break
    return {node: rank[index[node]] for node in nodes}


def pagerank(
    snapshot: Snapshot,
    schema: GraphSchema,
    vertex_types: Iterable[str],
    edge_types: Iterable[str],
    damping: float = 0.85,
    iterations: int = 20,
) -> dict[Member, float]:
    adjacency = build_adjacency(snapshot, schema, vertex_types, edge_types, symmetric=False)
    return pagerank_on_adjacency(adjacency, damping=damping, iterations=iterations)
