"""The memory-budgeted tier manager (DESIGN §12).

``TierManager`` watches per-segment access heat (EWMA over counters fed by
the serve layer through ``EmbeddingStore.access_hook``) and, at each
vacuum boundary, re-partitions segments into hot and cold so the resident
raw bytes stay under a budget:

- **demote** — train a seeded PQ codebook on the segment's present rows,
  encode everything, optionally spill the raw matrix to an ``.npy`` file
  and re-open it memmapped, then :meth:`install_snapshot` a *cold twin* at
  the same TID.  The hot snapshot moves to the retired list, so any reader
  pinned before the transition keeps full-precision results until snapshot
  GC proves it unreachable — the MVCC-safety half of the design.
- **promote** — materialize the raw rows, rebuild the segment's index from
  present rows, and install a hot twin the same way.

Transitions are built entirely off to the side and published with a single
``install_snapshot`` (two-phase publish, same pattern as the delta cut):
a ``schedule_point("tier.publish")`` marks the publish edge for the
schedule explorer, and the ``TierDemoteVsSearch`` scenario proves that a
demotion racing a pinned-snapshot search stays clean — and that the
shortcut of mutating the live snapshot in place is findable as a bug.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..analysis.hooks import schedule_point
from ..core.segment import EmbeddingSegment, SegmentSnapshot, rebuild_index
from ..core.service import EmbeddingService, EmbeddingStore
from ..errors import ReproError
from ..index.pq import PQCodebook, PQCodes, PQSearchConfig
from ..telemetry import get_telemetry

__all__ = ["TierManager", "TierStats", "demote_segment", "promote_segment"]


@dataclass
class TierStats:
    accesses: int = 0
    demotions: int = 0
    promotions: int = 0
    rebalances: int = 0
    #: Transitions abandoned because a concurrent merge installed a newer
    #: snapshot mid-build; retried at the next rebalance.
    transitions_lost: int = 0
    hot_segments: int = 0
    cold_segments: int = 0
    resident_bytes: int = 0
    spilled_bytes: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


def _build_cold_snapshot(
    store: EmbeddingStore,
    snap: SegmentSnapshot,
    config: PQSearchConfig,
    spill_path: Path | None,
) -> SegmentSnapshot | None:
    """The cold twin of ``snap``: same tid, PQ codes, no index.

    Returns None when the segment has no present rows (nothing to train
    on — an empty segment costs nothing resident anyway).
    """
    tel = get_telemetry()
    vectors = np.asarray(snap.vectors)
    present = snap.present.copy()
    rows = vectors[present]
    if rows.shape[0] == 0:
        return None
    if rows.shape[0] > config.train_sample:
        picker = np.random.default_rng(config.seed)
        rows = rows[picker.choice(rows.shape[0], config.train_sample, replace=False)]
    started = time.perf_counter()
    codebook = PQCodebook.train(
        rows,
        min(config.m, store.embedding.dimension),
        metric=store.embedding.metric,
        iterations=config.train_iterations,
        seed=config.seed,
    )
    tel.inc("pq.trainings")
    tel.observe("pq.train_seconds", time.perf_counter() - started)
    # Encode the whole capacity so codes stay offset-aligned with the raw
    # matrix; absent rows encode garbage that the present mask hides.
    pq = PQCodes.from_vectors(codebook, vectors, store.embedding.metric)
    raw: np.ndarray = vectors
    if spill_path is not None:
        np.save(spill_path, vectors)  # path already carries the .npy suffix
        raw = np.load(spill_path, mmap_mode="r")
    return SegmentSnapshot(
        tid=snap.tid,
        index=None,
        vectors=raw,
        present=present,
        tier="cold",
        pq=pq,
    )


def demote_segment(
    store: EmbeddingStore,
    segment: EmbeddingSegment,
    config: PQSearchConfig | None = None,
    spill_dir: Path | None = None,
) -> bool:
    """Demote one segment hot → cold via a same-tid snapshot install.

    Returns True if a cold snapshot was published.  Safe against
    concurrent merges: if a newer snapshot lands first, the stale-tid
    install raises and the demotion is simply abandoned.
    """
    config = config or store.pq_config or PQSearchConfig()
    snap = segment.current_snapshot()
    if snap.tier != "hot":
        return False
    spill_path = None
    if spill_dir is not None:
        spill_dir = Path(spill_dir)
        spill_dir.mkdir(parents=True, exist_ok=True)
        spill_path = spill_dir / (
            f"{store.vertex_type}.{store.embedding.name}."
            f"seg{segment.seg_no}.tid{snap.tid}.npy"
        )
    cold = _build_cold_snapshot(store, snap, config, spill_path)
    if cold is None:
        return False
    schedule_point("tier.publish")
    try:
        segment.install_snapshot(cold)
    except ReproError:
        # A merge moved the segment forward while we built the twin; the
        # build is discarded and the next rebalance re-decides.
        if spill_path is not None and spill_path.exists():
            spill_path.unlink()
        return False
    get_telemetry().inc("tier.demotions")
    return True


def promote_segment(store: EmbeddingStore, segment: EmbeddingSegment) -> bool:
    """Promote one segment cold → hot via a same-tid snapshot install."""
    snap = segment.current_snapshot()
    if snap.tier != "cold":
        return False
    vectors = np.array(snap.vectors, dtype=np.float32)
    index = rebuild_index(store.embedding, vectors, snap.present)
    hot = SegmentSnapshot(
        tid=snap.tid,
        index=index,
        vectors=vectors,
        present=snap.present.copy(),
    )
    schedule_point("tier.publish")
    try:
        segment.install_snapshot(hot)
    except ReproError:
        return False
    get_telemetry().inc("tier.promotions")
    return True


class TierManager:
    """Classifies segments hot/cold under a byte budget, driven by heat.

    Hooks into every store of an :class:`EmbeddingService`: each search
    bumps a per-segment access counter (``access_hook``), and
    :meth:`rebalance` — called by the vacuum at round end — folds the
    counters into per-segment EWMAs, ranks segments by heat, keeps the
    hottest resident until the raw-byte budget is spent, and demotes the
    rest.  Accounting covers raw rows (the dominant, deterministic term):
    a hot segment costs its ``vectors.nbytes``; a cold one costs its PQ
    codes plus, when not spilled to disk, the raw matrix it still holds.
    """

    def __init__(
        self,
        service: EmbeddingService,
        budget_bytes: int,
        spill_dir: str | Path | None = None,
        pq: PQSearchConfig | None = None,
        ewma_alpha: float = 0.3,
    ):
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.service = service
        self.budget_bytes = int(budget_bytes)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.pq = pq or PQSearchConfig()
        self.ewma_alpha = ewma_alpha
        self.stats = TierStats()
        self._lock = threading.Lock()
        #: (store key, seg_no) -> accesses since the last rebalance.
        self._recent: dict[tuple[tuple[str, str], int], int] = {}
        #: (store key, seg_no) -> smoothed heat.
        self._heat: dict[tuple[tuple[str, str], int], float] = {}
        self._attached: set[int] = set()
        for store in service.stores():
            self.attach(store)

    # ------------------------------------------------------------- wiring
    def attach(self, store: EmbeddingStore) -> None:
        """Install the access hook + two-phase search policy on a store."""
        with self._lock:
            if id(store) in self._attached:
                return
            self._attached.add(id(store))
        key = (store.vertex_type, store.embedding.name)

        def hook(seg_no: int, _key=key) -> None:
            self.record_access(_key, seg_no)

        store.access_hook = hook
        store.pq_config = self.pq

    def record_access(self, key: tuple[str, str], seg_no: int) -> None:
        with self._lock:
            self._recent[(key, seg_no)] = self._recent.get((key, seg_no), 0) + 1
            self.stats.accesses += 1
        get_telemetry().inc("tier.accesses")

    # ----------------------------------------------------------- rebalance
    def _fold_heat(self, keys: list[tuple[tuple[str, str], int]]) -> dict:
        """EWMA update: alpha·recent + (1-alpha)·old, counters reset."""
        with self._lock:
            recent, self._recent = self._recent, {}
        alpha = self.ewma_alpha
        for key in keys:
            old = self._heat.get(key, 0.0)
            self._heat[key] = alpha * recent.get(key, 0) + (1.0 - alpha) * old
        # Drop heat entries for segments that no longer exist.
        self._heat = {k: v for k, v in self._heat.items() if k in set(keys)}
        return dict(self._heat)

    def rebalance(self) -> dict:
        """One classification pass; returns a summary dict.

        Called at the vacuum boundary (see ``VacuumManager``), but safe to
        call directly — transitions that lose a race against a concurrent
        merge are abandoned and retried next round.
        """
        tel = get_telemetry()
        started = time.perf_counter()
        entries: list[tuple[tuple[tuple[str, str], int], EmbeddingStore, EmbeddingSegment]] = []
        for store in self.service.stores():
            self.attach(store)
            key = (store.vertex_type, store.embedding.name)
            for segment in store.segments():
                entries.append(((key, segment.seg_no), store, segment))
        heat = self._fold_heat([e[0] for e in entries])

        # Hottest first; ties (e.g. an all-cold start) break toward lower
        # segment numbers for determinism.
        entries.sort(key=lambda e: (-heat.get(e[0], 0.0), e[0]))
        spent = 0
        demoted = promoted = 0
        hot = cold = 0
        resident = 0
        spilled = 0
        for _, store, segment in entries:
            snap = segment.current_snapshot()
            raw_bytes = int(snap.present.size) * int(store.embedding.dimension) * 4
            if spent + raw_bytes <= self.budget_bytes:
                spent += raw_bytes
                if snap.tier == "cold" and promote_segment(store, segment):
                    promoted += 1
                    self.stats.promotions += 1
            else:
                if snap.tier == "hot" and demote_segment(
                    store, segment, self.pq, self.spill_dir
                ):
                    demoted += 1
                    self.stats.demotions += 1
                elif snap.tier == "hot":
                    # Empty or race-lost: stays hot this round.
                    pass
            final = segment.current_snapshot()
            if final.tier == "hot":
                hot += 1
                resident += int(final.vectors.nbytes)
            else:
                cold += 1
                resident += final.pq.memory_bytes
                if isinstance(final.vectors, np.memmap):
                    spilled += int(final.vectors.nbytes)
                else:
                    resident += int(final.vectors.nbytes)

        self.stats.rebalances += 1
        self.stats.hot_segments = hot
        self.stats.cold_segments = cold
        self.stats.resident_bytes = resident
        self.stats.spilled_bytes = spilled
        tel.inc("tier.rebalances")
        tel.observe("tier.rebalance_seconds", time.perf_counter() - started)
        tel.set_gauge("tier.hot_segments", hot)
        tel.set_gauge("tier.cold_segments", cold)
        tel.set_gauge("tier.resident_bytes", resident)
        return {
            "hot": hot,
            "cold": cold,
            "demoted": demoted,
            "promoted": promoted,
            "resident_bytes": resident,
            "spilled_bytes": spilled,
        }

    # --------------------------------------------------------------- stats
    def residency(self) -> dict[str, list[dict]]:
        """Per-segment residency table for the CLI / shell surfaces."""
        out: dict[str, list[dict]] = {}
        for store in self.service.stores():
            key = (store.vertex_type, store.embedding.name)
            rows = []
            for segment in store.segments():
                snap = segment.current_snapshot()
                rows.append(
                    {
                        "seg_no": segment.seg_no,
                        "tier": snap.tier,
                        "heat": round(self._heat.get((key, segment.seg_no), 0.0), 3),
                        "spilled": isinstance(snap.vectors, np.memmap),
                    }
                )
            out[f"{key[0]}.{key[1]}"] = rows
        return out

    def stats_snapshot(self) -> dict:
        snap = self.stats.snapshot()
        snap["budget_bytes"] = self.budget_bytes
        return snap
