"""Tiered embedding storage: memory-budgeted hot/cold segment management.

TigerVector's MPP design keeps full-precision embedding segments resident
in memory; this subsystem relaxes that for the long tail.  Sealed segments
are classified **hot** (raw rows + vector index) or **cold** (PQ codes
only, raw rows optionally memmapped to disk) by access heat under a byte
budget, and searches against cold segments run the two-phase ADC → exact
rerank path.  Tier transitions ride the existing MVCC snapshot machinery,
so pinned readers never observe a half-demoted segment.  See DESIGN §12.
"""

from .manager import TierManager, TierStats, demote_segment, promote_segment

__all__ = ["TierManager", "TierStats", "demote_segment", "promote_segment"]
