"""Deterministic fault injection + resilience policies (availability layer).

The paper's deployment story (Sec. 4.2, 5.1) leans on segment replication
and an MPP coordinator that keeps serving under machine loss.  This package
is the machinery that *tests* that story: seeded fault plans
(:class:`FaultPlan`), a runtime injector with a reproducible event trace
(:class:`FaultInjector`), and the resilience knobs
(:class:`ResiliencePolicy`, :class:`CircuitBreaker`) threaded through
:class:`~repro.cluster.coordinator.ClusterSimulator` and
:class:`~repro.core.distributed.DistributedSearcher`.

Typical chaos harness::

    plan = FaultPlan.random(seed=7, num_machines=4, num_segments=16)
    injector = FaultInjector(plan)
    sim = ClusterSimulator(
        make_cluster(4, 16, replication_factor=2),
        injector=injector,
        policy=ResiliencePolicy(allow_partial=True, deadline=0.05),
    )
    ...  # drive load; inspect injector.trace and per-query coverage
"""

from .injector import FaultInjector, TraceEvent
from .plan import (
    CommitCrashFault,
    CrashFault,
    FaultPlan,
    NetworkFault,
    SegmentFault,
    StragglerFault,
    WorkerCrashFault,
    WorkerStallFault,
)
from .resilience import CircuitBreaker, ResiliencePolicy

__all__ = [
    "CircuitBreaker",
    "CommitCrashFault",
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "NetworkFault",
    "ResiliencePolicy",
    "SegmentFault",
    "StragglerFault",
    "TraceEvent",
    "WorkerCrashFault",
    "WorkerStallFault",
]
