"""Resilience knobs for the distributed query path.

:class:`ResiliencePolicy` bundles the countermeasures the coordinator and
the real distributed searcher thread through every query:

- per-segment-job **retry** with exponential backoff, failing over across
  replica holders (paper Sec. 4.2: replicas make high availability
  straightforward — this is the code that cashes that claim);
- **hedged** duplicate dispatch once a machine's projected response exceeds
  ``hedge_after`` seconds, the classic tail-tolerance move for stragglers;
- a per-query **deadline** converting unbounded waits into
  :class:`~repro.errors.QueryTimeoutError`;
- **degraded mode** (``allow_partial``) returning partial top-k with an
  explicit ``coverage`` — the fraction of requested segments that answered —
  instead of failing the whole query;
- a per-machine **circuit breaker** quarantining repeat offenders so retry
  traffic stops hammering a dead machine, with half-open probes for
  re-admission after ``breaker_cooldown``.

The default policy is inert on a healthy cluster: no deadline, no hedging,
and retries that never trigger without faults, so the resilient path is
numerically identical to the legacy one when nothing goes wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError
from ..telemetry import get_telemetry

__all__ = ["CircuitBreaker", "ResiliencePolicy"]


@dataclass
class ResiliencePolicy:
    """Retry/hedging/deadline/partial-result configuration for one query path."""

    #: Attempts per segment job (first try + retries), spread across replicas.
    max_attempts: int = 3
    #: First retry waits this long (seconds); grows by ``backoff_multiplier``.
    backoff_base: float = 0.001
    backoff_multiplier: float = 2.0
    #: Dispatch a duplicate to another replica once a machine's projected
    #: response lags the dispatch by this many seconds (None disables).
    hedge_after: float | None = None
    #: Per-query deadline in seconds (None disables).
    deadline: float | None = None
    #: Degraded mode: return partial top-k with ``coverage < 1`` instead of
    #: raising when segments are unrecoverable or miss the deadline.
    allow_partial: bool = False
    #: Even in degraded mode, coverage below this raises PartialResultError.
    min_coverage: float = 0.0
    #: Consecutive failures that open a machine's circuit.
    breaker_threshold: int = 3
    #: How long an open circuit rejects a machine before a half-open probe.
    #: Unit matches the caller's clock: simulated seconds for the cluster
    #: simulator, query ordinals for the real searcher.
    breaker_cooldown: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ClusterError("max_attempts must be >= 1")
        if not 0.0 <= self.min_coverage <= 1.0:
            raise ClusterError("min_coverage must be in [0, 1]")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_multiplier**attempt


class CircuitBreaker:
    """Per-machine failure quarantine with half-open re-admission.

    Closed -> (``threshold`` consecutive failures) -> open -> (after
    ``cooldown`` on the caller's clock) -> half-open probe -> closed on
    success, re-open on failure.  Single-threaded by design: it lives inside
    one coordinator/searcher, never shared across threads.
    """

    _CLOSED, _OPEN, _HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, threshold: int = 3, cooldown: float = 1.0):
        if threshold < 1:
            raise ClusterError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._failures: dict[int, int] = {}
        self._state: dict[int, str] = {}
        self._opened_at: dict[int, float] = {}

    def state(self, machine_id: int) -> str:
        return self._state.get(machine_id, self._CLOSED)

    def allow(self, machine_id: int, now: float) -> bool:
        """May this machine receive work at time ``now``?"""
        state = self.state(machine_id)
        if state == self._CLOSED or state == self._HALF_OPEN:
            return True
        if now >= self._opened_at[machine_id] + self.cooldown:
            self._state[machine_id] = self._HALF_OPEN
            get_telemetry().inc("resilience.breaker_half_open")
            return True
        return False

    def record_failure(self, machine_id: int, now: float) -> bool:
        """Count a failure; returns True when this newly opens the circuit."""
        if self.state(machine_id) == self._HALF_OPEN:
            # Failed probe: straight back to open with a fresh cooldown.
            self._state[machine_id] = self._OPEN
            self._opened_at[machine_id] = now
            get_telemetry().inc("resilience.breaker_open")
            return True
        count = self._failures.get(machine_id, 0) + 1
        self._failures[machine_id] = count
        if count >= self.threshold and self.state(machine_id) == self._CLOSED:
            self._state[machine_id] = self._OPEN
            self._opened_at[machine_id] = now
            get_telemetry().inc("resilience.breaker_open")
            return True
        return False

    def record_success(self, machine_id: int) -> None:
        """A completed job closes the circuit and clears the failure streak."""
        self._failures.pop(machine_id, None)
        previous = self._state.pop(machine_id, None)
        self._opened_at.pop(machine_id, None)
        if previous == self._HALF_OPEN:
            get_telemetry().inc("resilience.breaker_close")

    def reset(self, machine_id: int | None = None) -> None:
        """Forget state for one machine (explicit re-admission) or all."""
        if machine_id is None:
            self._failures.clear()
            self._state.clear()
            self._opened_at.clear()
        else:
            self.record_success(machine_id)

    def open_machines(self) -> list[int]:
        return sorted(m for m, s in self._state.items() if s == self._OPEN)
