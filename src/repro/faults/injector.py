"""Runtime fault injection with a deterministic event trace.

:class:`FaultInjector` compiles a :class:`~repro.faults.plan.FaultPlan` into
mutable runtime state (remaining segment failures, crash flags, a seeded
RNG) and exposes the hooks the query/durability paths consult:

- the cluster simulator calls :meth:`advance`, :meth:`slowdown`,
  :meth:`drop_dispatch`, :meth:`extra_network_delay`, :meth:`crash_during`,
  and :meth:`segment_attempt_fails`;
- the real distributed searcher calls :meth:`advance_query` and
  :meth:`raise_segment_fault`;
- the durability side installs :meth:`install_commit_faults` on a
  :class:`~repro.graph.storage.GraphStore` (mid-commit crashes) and
  :meth:`install_store` on an :class:`~repro.core.service.EmbeddingStore`
  (service-layer segment exceptions).

Every injected fault — and every countermeasure the resilience layer takes
(retry, failover, hedge, deadline cut, breaker transition) — is recorded as
a :class:`TraceEvent`.  The trace is a pure function of (plan seed,
workload), so identical seeds reproduce identical traces; chaos tests
assert that equality directly.

An injector is single-use per workload run: build a fresh one (same plan)
to replay.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from ..errors import FaultInjectionError, SimulatedCrash
from .plan import FaultPlan

__all__ = ["FaultInjector", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One observed fault or resilience action, in injection order."""

    at: float
    kind: str
    machine_id: int | None = None
    seg_no: int | None = None
    attempt: int | None = None
    detail: str = ""


class _WorkerFaultState:
    """One-shot firing bookkeeping for serve-worker crash/stall faults.

    Serve workers race on the injector from concurrent threads, unlike
    the simulator hooks, which are driven single-threaded per workload.
    The fired-sets therefore live here, behind their own leaf lock,
    keeping :class:`FaultInjector`'s own mutations single-threaded by
    contract.  Methods *claim* due faults atomically and return them;
    the injector records trace events after the lock is released.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._crashes_fired: set[int] = set()
        self._stalls_fired: set[int] = set()

    def claim_crash(self, faults, ordinal: int) -> bool:
        """Atomically claim the first unfired crash due at ``ordinal``."""
        with self._lock:
            for i, fault in enumerate(faults):
                if i in self._crashes_fired or ordinal < fault.at_request:
                    continue
                self._crashes_fired.add(i)
                return True
        return False

    def claim_stalls(self, faults, ordinal: int) -> list:
        """Atomically claim every unfired stall due at ``ordinal``."""
        with self._lock:
            due = []
            for i, fault in enumerate(faults):
                if i in self._stalls_fired or ordinal < fault.at_request:
                    continue
                self._stalls_fired.add(i)
                due.append(fault)
            return due


class FaultInjector:
    """Stateful executor of one :class:`FaultPlan` over one workload."""

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan or FaultPlan()
        self.rng = random.Random(self.plan.seed)
        self.trace: list[TraceEvent] = []
        self._crashed: set[int] = set()
        self._recovered: set[int] = set()
        # Remaining injected failures per (seg_no, machine_id-or-None).
        self._segment_remaining: dict[tuple[int, int | None], int] = {}
        for fault in self.plan.segment_faults:
            key = (fault.seg_no, fault.machine_id)
            self._segment_remaining[key] = (
                self._segment_remaining.get(key, 0) + fault.failures
            )
        self._straggle_announced: set[int] = set()
        self._commit_count = 0
        self._apply_calls = 0
        self._graph_store = None
        self._worker_state = _WorkerFaultState()

    # ---------------------------------------------------------------- trace
    def record(
        self,
        kind: str,
        at: float = 0.0,
        machine_id: int | None = None,
        seg_no: int | None = None,
        attempt: int | None = None,
        detail: str = "",
    ) -> None:
        """Append one event; the resilience layer records through this too."""
        self.trace.append(TraceEvent(at, kind, machine_id, seg_no, attempt, detail))

    def trace_kinds(self) -> list[str]:
        return [event.kind for event in self.trace]

    # ------------------------------------------------------- machine faults
    def advance(self, machines, now: float) -> None:
        """Apply sim-time crash/recover events due at or before ``now``."""
        by_id = {m.machine_id: m for m in machines}
        for i, fault in enumerate(self.plan.crashes):
            machine = by_id.get(fault.machine_id)
            if machine is None:
                continue
            if fault.at is not None and i not in self._crashed and now >= fault.at:
                self._crashed.add(i)
                machine.alive = False
                self.record("crash", at=fault.at, machine_id=fault.machine_id)
            if (
                fault.recover_at is not None
                and i in self._crashed
                and i not in self._recovered
                and now >= fault.recover_at
            ):
                self._recovered.add(i)
                machine.alive = True
                self.record("recover", at=fault.recover_at, machine_id=fault.machine_id)

    def advance_query(self, machines, query_index: int) -> None:
        """Apply query-ordinal crash/recover events (real searcher clock)."""
        by_id = {m.machine_id: m for m in machines}
        for i, fault in enumerate(self.plan.crashes):
            machine = by_id.get(fault.machine_id)
            if machine is None:
                continue
            if (
                fault.at_query is not None
                and i not in self._crashed
                and query_index >= fault.at_query
            ):
                self._crashed.add(i)
                machine.alive = False
                self.record(
                    "crash", at=float(query_index), machine_id=fault.machine_id
                )
            if (
                fault.recover_at_query is not None
                and i in self._crashed
                and i not in self._recovered
                and query_index >= fault.recover_at_query
            ):
                self._recovered.add(i)
                machine.alive = True
                self.record(
                    "recover", at=float(query_index), machine_id=fault.machine_id
                )

    def crash_during(self, machine, arrive: float, finish: float) -> float | None:
        """Crash time if ``machine`` dies inside [arrive, finish), else None.

        Applies the crash (marks the machine dead) so the caller's failover
        reroutes to live replicas and later requests see it down too.
        """
        for i, fault in enumerate(self.plan.crashes):
            if fault.machine_id != machine.machine_id or fault.at is None:
                continue
            if i in self._crashed:
                continue
            if arrive <= fault.at < finish:
                self._crashed.add(i)
                machine.alive = False
                self.record("crash", at=fault.at, machine_id=fault.machine_id)
                return fault.at
        return None

    def slowdown(self, machine_id: int, now: float) -> float:
        """Combined straggler multiplier active on this machine at ``now``."""
        factor = 1.0
        for i, fault in enumerate(self.plan.stragglers):
            if fault.machine_id != machine_id:
                continue
            if fault.start <= now < fault.end:
                factor *= fault.factor
                if i not in self._straggle_announced:
                    self._straggle_announced.add(i)
                    self.record(
                        "straggle",
                        at=fault.start,
                        machine_id=machine_id,
                        detail=f"factor={fault.factor:g}",
                    )
        return factor

    # ------------------------------------------------------- network faults
    def drop_dispatch(self, machine_id: int, now: float) -> bool:
        """Seeded Bernoulli: is this dispatch lost on the wire?"""
        for fault in self.plan.network:
            if fault.drop_probability <= 0.0 or not fault.start <= now < fault.end:
                continue
            if self.rng.random() < fault.drop_probability:
                self.record("drop", at=now, machine_id=machine_id)
                return True
        return False

    def extra_network_delay(self, now: float) -> float:
        return sum(
            fault.extra_latency
            for fault in self.plan.network
            if fault.start <= now < fault.end
        )

    # ------------------------------------------------------- segment faults
    def segment_attempt_fails(
        self, seg_no: int, machine_id: int, attempt: int, now: float = 0.0
    ) -> bool:
        """Consume one injected failure for this segment attempt, if any."""
        for key in ((seg_no, machine_id), (seg_no, None)):
            remaining = self._segment_remaining.get(key, 0)
            if remaining > 0:
                self._segment_remaining[key] = remaining - 1
                self.record(
                    "segment-fault",
                    at=now,
                    machine_id=machine_id,
                    seg_no=seg_no,
                    attempt=attempt,
                )
                return True
        return False

    def raise_segment_fault(
        self, seg_no: int, machine_id: int, attempt: int, now: float = 0.0
    ) -> None:
        """Real-path hook: raise instead of returning a flag."""
        if self.segment_attempt_fails(seg_no, machine_id, attempt, now=now):
            raise FaultInjectionError(
                f"injected search failure: segment {seg_no} on machine "
                f"{machine_id} (attempt {attempt})"
            )

    # ------------------------------------------------- serve-worker faults
    def worker_crash_due(self, ordinal: int) -> bool:
        """Should the worker that just made dequeue ``ordinal`` die now?

        Each planned :class:`~repro.faults.plan.WorkerCrashFault` fires at
        most once, at the first dequeue whose ordinal reaches its
        ``at_request``.  Thread-safe: serve workers race on this.
        """
        if not self._worker_state.claim_crash(self.plan.worker_crashes, ordinal):
            return False
        self.record("worker-crash", at=float(ordinal), detail=f"ordinal={ordinal}")
        return True

    def worker_stall_seconds(self, ordinal: int) -> float:
        """Total injected stall for the worker at dequeue ``ordinal``.

        Zero when no planned :class:`~repro.faults.plan.WorkerStallFault`
        is due; each fault fires once.
        """
        due = self._worker_state.claim_stalls(self.plan.worker_stalls, ordinal)
        for fault in due:
            self.record(
                "worker-stall",
                at=float(ordinal),
                detail=f"ordinal={ordinal} seconds={fault.seconds:g}",
            )
        return sum(fault.seconds for fault in due)

    # ---------------------------------------------------- durability faults
    def install_store(self, store) -> None:
        """Route an EmbeddingStore's search path through the segment gate."""
        injector = self

        def gate(seg_no: int) -> None:
            injector.raise_segment_fault(seg_no, machine_id=-1, attempt=0)

        store.fault_hook = gate

    def install_commit_faults(self, graph_store) -> None:
        """Arm mid-commit crashes on a GraphStore (see CommitCrashFault)."""
        self._graph_store = graph_store
        graph_store.set_commit_failpoint(self._commit_failpoint)

    def _commit_failpoint(self, stage: str, tid: int) -> None:
        if stage == "pre-wal":
            self._commit_count += 1
            self._apply_calls = 0
        fault = next(
            (f for f in self.plan.commit_crashes if f.at_commit == self._commit_count),
            None,
        )
        if fault is None:
            return
        if fault.mode == "torn-wal" and stage == "pre-wal":
            # Arm the WAL: the append itself writes a torn prefix and dies.
            self.record("commit-crash", detail=f"torn-wal tid={tid}")
            self._graph_store.wal.arm_torn_write(fraction=fault.torn_fraction)
        elif fault.mode == "post-wal" and stage == "post-wal":
            self.record("commit-crash", detail=f"post-wal tid={tid}")
            raise SimulatedCrash(f"injected crash after WAL append (tid {tid})")
        elif fault.mode == "mid-apply" and stage == "apply":
            self._apply_calls += 1
            if self._apply_calls == fault.after_ops + 1:
                self.record("commit-crash", detail=f"mid-apply tid={tid}")
                raise SimulatedCrash(
                    f"injected crash after applying {fault.after_ops} op(s) "
                    f"of tid {tid}"
                )
