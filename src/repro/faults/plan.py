"""Fault plans: declarative, seeded schedules of what goes wrong and when.

A :class:`FaultPlan` is pure data — frozen fault specs plus a seed — so a
plan can be logged, replayed, and swept in a matrix.  All nondeterminism
(random drop decisions, random matrices) flows from ``random.Random(seed)``
inside the :class:`~repro.faults.injector.FaultInjector`, which is what makes
two runs of the same plan over the same workload produce byte-identical
event traces (the acceptance property chaos tests assert).

Fault taxonomy (paper Sec. 4.2/5.1 deployment story):

- :class:`CrashFault` — a machine dies (and optionally recovers), keyed by
  simulated time (:class:`~repro.cluster.coordinator.ClusterSimulator`) or
  by query ordinal (:class:`~repro.core.distributed.DistributedSearcher`).
- :class:`StragglerFault` — a machine runs slow by a multiplier for a time
  window; the hedging policy is the countermeasure.
- :class:`NetworkFault` — dispatch drop probability and extra per-hop
  latency over a time window; retries are the countermeasure.
- :class:`SegmentFault` — the next N search attempts on one segment raise
  :class:`~repro.errors.FaultInjectionError`; retry/failover is the
  countermeasure.
- :class:`CommitCrashFault` — the process dies mid-commit (torn WAL append,
  or after the WAL append with ops only partially applied); WAL replay is
  the countermeasure.
- :class:`WorkerCrashFault` / :class:`WorkerStallFault` — a serve-tier
  worker thread dies (or stalls) right after dequeuing a request, keyed by
  the server's dequeue ordinal; the countermeasure is the
  :class:`~repro.serve.QueryServer` re-queueing the in-flight batch and
  respawning a replacement worker, so no accepted request is ever lost.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..errors import FaultInjectionError

__all__ = [
    "CommitCrashFault",
    "CrashFault",
    "FaultPlan",
    "NetworkFault",
    "SegmentFault",
    "StragglerFault",
    "WorkerCrashFault",
    "WorkerStallFault",
]


@dataclass(frozen=True)
class CrashFault:
    """Machine death, keyed by sim-time (``at``) or query ordinal (``at_query``)."""

    machine_id: int
    at: float | None = None
    recover_at: float | None = None
    at_query: int | None = None
    recover_at_query: int | None = None

    def __post_init__(self) -> None:
        if self.at is None and self.at_query is None:
            raise FaultInjectionError("crash fault needs 'at' or 'at_query'")


@dataclass(frozen=True)
class StragglerFault:
    """Machine ``machine_id`` runs ``factor``x slower during [start, end)."""

    machine_id: int
    factor: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise FaultInjectionError("straggler factor must be >= 1")


@dataclass(frozen=True)
class NetworkFault:
    """Lossy/slow network during [start, end)."""

    drop_probability: float = 0.0
    extra_latency: float = 0.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise FaultInjectionError("drop probability must be in [0, 1]")


@dataclass(frozen=True)
class SegmentFault:
    """The next ``failures`` search attempts on this segment raise.

    ``machine_id`` restricts the fault to one replica holder (None hits
    whichever machine attempts the segment), so a plan can model either a
    corrupt replica (failover fixes it) or a poisoned segment (only retries
    on the same data can drain it).
    """

    seg_no: int
    failures: int = 1
    machine_id: int | None = None


@dataclass(frozen=True)
class CommitCrashFault:
    """Process crash during the ``at_commit``-th observed commit (1-based).

    Modes map to the three interesting crash points of the WAL-before-apply
    protocol:

    - ``"torn-wal"``: die mid-append, leaving a torn trailing record (only
      ``torn_fraction`` of the record's bytes hit the file) — the
      transaction is NOT durable and replay must drop the tail.
    - ``"post-wal"``: die right after the append, before any op applies —
      the transaction IS durable and replay must reproduce it in full.
    - ``"mid-apply"``: die after ``after_ops`` ops applied in memory — same
      durability as post-wal, but the abandoned instance is torn; recovery
      must come from the log, not the wreck.
    """

    at_commit: int
    mode: str = "torn-wal"
    after_ops: int = 1
    torn_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in ("torn-wal", "post-wal", "mid-apply"):
            raise FaultInjectionError(f"unknown commit-crash mode '{self.mode}'")
        if not 0.0 < self.torn_fraction < 1.0:
            raise FaultInjectionError("torn_fraction must be in (0, 1)")


@dataclass(frozen=True)
class WorkerCrashFault:
    """A serve worker thread dies at the ``at_request``-th dequeue (1-based).

    The crash lands *after* the worker pulled its request (and collected a
    micro-batch around it) but *before* execution — the moment an
    unprotected server would simply lose the in-flight work.  The server's
    countermeasure re-queues every batch member (bounded by the resilience
    policy's ``max_attempts``) and respawns a replacement worker.
    """

    at_request: int

    def __post_init__(self) -> None:
        if self.at_request < 1:
            raise FaultInjectionError("worker crash ordinal must be >= 1")


@dataclass(frozen=True)
class WorkerStallFault:
    """A serve worker sleeps ``seconds`` at the ``at_request``-th dequeue.

    Models a straggling worker (GC pause, noisy CPU neighbor) holding a
    dequeued batch.  Other workers keep draining the queue; the stalled
    batch either completes late or fails typed at its deadline.
    """

    at_request: int
    seconds: float

    def __post_init__(self) -> None:
        if self.at_request < 1:
            raise FaultInjectionError("worker stall ordinal must be >= 1")
        if self.seconds <= 0:
            raise FaultInjectionError("worker stall seconds must be positive")


@dataclass
class FaultPlan:
    """A seeded schedule of faults; feed it to a :class:`FaultInjector`."""

    seed: int = 0
    crashes: list[CrashFault] = field(default_factory=list)
    stragglers: list[StragglerFault] = field(default_factory=list)
    network: list[NetworkFault] = field(default_factory=list)
    segment_faults: list[SegmentFault] = field(default_factory=list)
    commit_crashes: list[CommitCrashFault] = field(default_factory=list)
    worker_crashes: list[WorkerCrashFault] = field(default_factory=list)
    worker_stalls: list[WorkerStallFault] = field(default_factory=list)

    # -------------------------------------------------------------- builder
    def crash(self, machine_id: int, at: float | None = None, recover_at: float | None = None,
              at_query: int | None = None, recover_at_query: int | None = None) -> "FaultPlan":
        self.crashes.append(CrashFault(machine_id, at, recover_at, at_query, recover_at_query))
        return self

    def straggle(self, machine_id: int, factor: float, start: float = 0.0,
                 end: float = math.inf) -> "FaultPlan":
        self.stragglers.append(StragglerFault(machine_id, factor, start, end))
        return self

    def degrade_network(self, drop_probability: float = 0.0, extra_latency: float = 0.0,
                        start: float = 0.0, end: float = math.inf) -> "FaultPlan":
        self.network.append(NetworkFault(drop_probability, extra_latency, start, end))
        return self

    def fail_segment(self, seg_no: int, failures: int = 1,
                     machine_id: int | None = None) -> "FaultPlan":
        self.segment_faults.append(SegmentFault(seg_no, failures, machine_id))
        return self

    def crash_commit(self, at_commit: int, mode: str = "torn-wal", after_ops: int = 1,
                     torn_fraction: float = 0.5) -> "FaultPlan":
        self.commit_crashes.append(CommitCrashFault(at_commit, mode, after_ops, torn_fraction))
        return self

    def crash_worker(self, at_request: int) -> "FaultPlan":
        self.worker_crashes.append(WorkerCrashFault(at_request))
        return self

    def stall_worker(self, at_request: int, seconds: float) -> "FaultPlan":
        self.worker_stalls.append(WorkerStallFault(at_request, seconds))
        return self

    # ------------------------------------------------------- random matrix
    @classmethod
    def random(
        cls,
        seed: int,
        num_machines: int,
        num_segments: int,
        duration: float = 2.0,
        crashes: int = 1,
        stragglers: int = 1,
        segment_faults: int = 2,
        max_segment_failures: int = 2,
    ) -> "FaultPlan":
        """A random-but-reproducible fault matrix for chaos sweeps.

        Crash windows are serialized (each machine recovers before the next
        crash begins) so a replication factor of 2 is always sufficient to
        keep every segment reachable — the property the chaos tests assert.
        """
        rng = random.Random(seed)
        plan = cls(seed=seed)
        window = duration / max(1, crashes)
        victims = rng.sample(range(num_machines), k=min(crashes, num_machines))
        for i, machine_id in enumerate(victims):
            start = i * window + rng.uniform(0.05, 0.3) * window
            end = min((i + 0.9) * window, start + rng.uniform(0.2, 0.6) * window)
            plan.crash(machine_id, at=start, recover_at=end)
        for _ in range(stragglers):
            machine_id = rng.randrange(num_machines)
            start = rng.uniform(0.0, duration * 0.7)
            plan.straggle(
                machine_id,
                factor=rng.uniform(2.0, 10.0),
                start=start,
                end=start + rng.uniform(0.1, 0.4) * duration,
            )
        for _ in range(segment_faults):
            plan.fail_segment(
                rng.randrange(max(1, num_segments)),
                failures=rng.randint(1, max_segment_failures),
            )
        return plan
