"""Command-line linter: ``python -m repro.analysis lint src/`` or ``repro-lint``.

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding, SuppressionIndex
from .rules import REGISTRY, ModuleInfo, make_rules, run_rules

__all__ = ["LintResult", "lint_paths", "main"]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)


def _iter_py_files(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def lint_paths(paths, rule_ids=None) -> LintResult:
    """Lint every ``*.py`` under ``paths``; applies noqa suppression."""
    result = LintResult()
    rules = make_rules(rule_ids)
    modules: list[tuple[ModuleInfo, SuppressionIndex]] = []
    for file_path in _iter_py_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            result.errors.append(f"{_display_path(file_path)}: {exc}")
            continue
        module = ModuleInfo(path=_display_path(file_path), source=source, tree=tree)
        modules.append((module, SuppressionIndex.from_module(source, tree)))
    result.files = len(modules)
    suppressions = {module.path: index for module, index in modules}
    raw = run_rules([module for module, _ in modules], rules)
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule_id)):
        index = suppressions.get(finding.path)
        if index is not None and index.is_suppressed(finding.line, finding.rule_id):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def _cmd_lint(args) -> int:
    rule_ids = args.select.split(",") if args.select else None
    if rule_ids is not None:
        unknown = [r for r in rule_ids if r not in REGISTRY]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    try:
        result = lint_paths(args.paths, rule_ids)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        def item(finding: Finding, suppressed: bool) -> dict:
            payload = finding.as_dict()
            payload["rule_id"] = payload["rule"]
            payload["suppressed"] = suppressed
            return payload

        print(
            json.dumps(
                {
                    "findings": [item(f, False) for f in result.findings],
                    "suppressed": [item(f, True) for f in result.suppressed],
                    "files": result.files,
                    "errors": result.errors,
                },
                indent=2,
            )
        )
    else:
        for finding in result.findings:
            print(finding.render())
        for error in result.errors:
            print(f"error: {error}", file=sys.stderr)
        print(
            f"repro-lint: {len(result.findings)} finding(s), "
            f"{len(result.suppressed)} suppressed, {result.files} file(s) checked"
        )
    if result.errors:
        return 2
    if result.findings:
        return 1
    if args.max_noqa is not None and len(result.suppressed) > args.max_noqa:
        print(
            f"repro-lint: suppression budget exceeded: {len(result.suppressed)} "
            f"noqa suppression(s) > --max-noqa {args.max_noqa}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_explore(args) -> int:
    # Lazy import: scenarios pulls in repro.core, which repro.analysis must
    # not import at package-import time (the linter runs on foreign trees).
    from . import explore, scenarios
    from .schedules import PCTSchedule, RandomSchedule

    if args.list:
        for spec in scenarios.MATRIX:
            kind, *budget = spec.strategy
            expect = "must-find" if spec.expect_failure else "must-stay-clean"
            print(f"{spec.name}  [{kind} {'x'.join(map(str, budget))}]  {expect}")
        return 0

    specs = scenarios.MATRIX
    if args.scenario:
        known = {spec.name: spec for spec in scenarios.MATRIX}
        missing = [name for name in args.scenario if name not in known]
        if missing:
            print(f"unknown scenario(s): {', '.join(missing)}", file=sys.stderr)
            return 2
        specs = [known[name] for name in args.scenario]

    failures = 0
    for spec in specs:
        if spec.strategy[0] == "exhaustive":
            result = explore.explore_exhaustive(
                spec.factory,
                max_decisions=spec.strategy[1],
                max_schedules=spec.strategy[2],
            )
        else:
            make = RandomSchedule if spec.strategy[0] == "random" else PCTSchedule
            result = explore.explore_random(
                spec.factory, seeds=range(spec.strategy[1]), make_schedule=make
            )
        expected = result.found == spec.expect_failure
        verdict = "ok" if expected else "UNEXPECTED"
        detail = "found" if result.found else "clean"
        print(
            f"{spec.name}: {detail} after {result.schedules_run} schedule(s) "
            f"[{verdict}]"
        )
        if not expected:
            failures += 1
            if result.failure is not None:
                print(f"  {result.failure.failure_kind}: {result.failure.failure}")
                print(f"  seed: {result.seed}")
                print(f"  replay choices: {result.failure.choices}")
            else:
                print(
                    "  expected this scenario's planted bug to be found within "
                    "budget; it was not — the explorer lost coverage"
                )
    return 1 if failures else 0


def _cmd_rules(_args) -> int:
    for rule_id in sorted(REGISTRY):
        cls = REGISTRY[rule_id]
        print(f"{rule_id}  {cls.title}")
        print(f"      guards: {cls.paper_ref}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Concurrency-invariant linter for the TigerVector reproduction.",
    )
    sub = parser.add_subparsers(dest="command")

    lint = sub.add_parser("lint", help="lint python files/directories")
    lint.add_argument("paths", nargs="*", default=[os.path.join("src", "repro")])
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--select", default=None, help="comma-separated rule ids (default: all)"
    )
    lint.add_argument(
        "--max-noqa",
        type=int,
        default=None,
        metavar="N",
        help="fail (exit 1) when more than N findings are noqa-suppressed",
    )
    lint.set_defaults(func=_cmd_lint)

    explore = sub.add_parser(
        "explore",
        help="run the schedule-exploration scenario matrix (concurrency checker)",
    )
    explore.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="run only this scenario (repeatable; default: full matrix)",
    )
    explore.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    explore.set_defaults(func=_cmd_explore)

    rules = sub.add_parser("rules", help="print the rule catalog")
    rules.set_defaults(func=_cmd_rules)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
