"""Command-line linter: ``python -m repro.analysis lint src/`` or ``repro-lint``.

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding, SuppressionIndex
from .rules import REGISTRY, ModuleInfo, make_rules, run_rules

__all__ = ["LintResult", "lint_paths", "main"]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[str] = field(default_factory=list)


def _iter_py_files(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def lint_paths(paths, rule_ids=None) -> LintResult:
    """Lint every ``*.py`` under ``paths``; applies noqa suppression."""
    result = LintResult()
    rules = make_rules(rule_ids)
    modules: list[tuple[ModuleInfo, SuppressionIndex]] = []
    for file_path in _iter_py_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            result.errors.append(f"{_display_path(file_path)}: {exc}")
            continue
        module = ModuleInfo(path=_display_path(file_path), source=source, tree=tree)
        modules.append((module, SuppressionIndex.from_module(source, tree)))
    result.files = len(modules)
    suppressions = {module.path: index for module, index in modules}
    raw = run_rules([module for module, _ in modules], rules)
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule_id)):
        index = suppressions.get(finding.path)
        if index is not None and index.is_suppressed(finding.line, finding.rule_id):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def _cmd_lint(args) -> int:
    rule_ids = args.select.split(",") if args.select else None
    if rule_ids is not None:
        unknown = [r for r in rule_ids if r not in REGISTRY]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    try:
        result = lint_paths(args.paths, rule_ids)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in result.findings],
                    "suppressed": [f.as_dict() for f in result.suppressed],
                    "files": result.files,
                    "errors": result.errors,
                },
                indent=2,
            )
        )
    else:
        for finding in result.findings:
            print(finding.render())
        for error in result.errors:
            print(f"error: {error}", file=sys.stderr)
        print(
            f"repro-lint: {len(result.findings)} finding(s), "
            f"{len(result.suppressed)} suppressed, {result.files} file(s) checked"
        )
    if result.errors:
        return 2
    return 1 if result.findings else 0


def _cmd_rules(_args) -> int:
    for rule_id in sorted(REGISTRY):
        cls = REGISTRY[rule_id]
        print(f"{rule_id}  {cls.title}")
        print(f"      guards: {cls.paper_ref}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Concurrency-invariant linter for the TigerVector reproduction.",
    )
    sub = parser.add_subparsers(dest="command")

    lint = sub.add_parser("lint", help="lint python files/directories")
    lint.add_argument("paths", nargs="*", default=[os.path.join("src", "repro")])
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--select", default=None, help="comma-separated rule ids (default: all)"
    )
    lint.set_defaults(func=_cmd_lint)

    rules = sub.add_parser("rules", help="print the rule catalog")
    rules.set_defaults(func=_cmd_rules)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
