"""Seeded, deterministic interleaving explorer (loom/PCT-style).

The sanitizer already knows where the interesting transitions are — lock
acquire/release — and :mod:`~repro.analysis.hooks` adds the MVCC-specific
ones (commit publication, snapshot pin, watermark read, cache get/put,
HNSW insert/save).  This module turns those instrumentation points into
*cooperative yield points*: a small set of worker threads is serialized
onto one controlled scheduler, exactly one worker runs at a time, and at
every yield the schedule decides who runs next.  Concurrency bugs become
a search problem over decision sequences instead of a dice roll against
the OS scheduler.

Execution model
---------------
- ``run_schedule(scenario, schedule)`` builds the scenario state
  (uncontrolled, with sanitizer lock patching active so scenario locks are
  instrumented), spawns ``scenario.threads`` workers, and parks them all.
- The scheduler thread repeatedly picks one *runnable* worker (parked at a
  yield, not blocked on a lock) and dispatches it; the worker runs to its
  next yield point and parks again.  Decisions are recorded only when more
  than one worker is runnable, so the choice list is exactly the branching
  structure of the run.
- A worker that tries to acquire a held lock is marked *blocked* on that
  lock and stays undispatchable until the holder releases it.  All workers
  blocked with none runnable is reported as a deadlock.
- When every worker finished, ``scenario.check(state)`` asserts the
  invariant; its failure (or any worker exception, or a deadlock) makes
  the run a failure carrying the full yield trace and choice list.

Replaying the recorded choices with :class:`~.schedules.ReplaySchedule`
against a fresh scenario instance reproduces the interleaving
byte-identically — scenarios are required to be deterministic modulo
schedule (seeded RNGs, no wall-clock dependence).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..errors import ExplorationError
from . import hooks, sanitizer
from .schedules import RandomSchedule, ReplaySchedule, Schedule

__all__ = [
    "Scenario",
    "Decision",
    "RunResult",
    "ExploreResult",
    "run_schedule",
    "replay",
    "explore_random",
    "explore_exhaustive",
]


class Scenario:
    """One canned concurrent workload for the explorer.

    Subclasses define ``threads`` (worker count), build fresh state in
    ``setup`` (called once per run, uncontrolled), run per-worker logic in
    ``worker(state, index)`` (controlled: every schedule point and lock
    operation yields), and assert the invariant in ``check(state)`` after
    all workers joined.  Scenarios must be deterministic modulo schedule.
    """

    name = "scenario"
    threads = 2
    description = ""

    def setup(self):
        return None

    def worker(self, state, index: int) -> None:
        raise NotImplementedError

    def check(self, state) -> None:
        return None

    def teardown(self, state) -> None:
        return None


class _Abort(BaseException):
    """Unwind a controlled worker when the run is torn down.

    Derives from BaseException so scenario/production ``except Exception``
    handlers cannot swallow it.
    """


_PARKED = ("yielded", "blocked")
_FINISHED = ("done", "aborted", "error")


class _Worker:
    __slots__ = ("index", "thread", "go", "state", "point", "blocked_key", "error")

    def __init__(self, index: int):
        self.index = index
        self.thread: threading.Thread | None = None
        self.go = threading.Event()
        self.state = "new"
        self.point = ""
        self.blocked_key: int | None = None
        self.error: BaseException | None = None


@dataclass(frozen=True)
class Decision:
    """One scheduling decision: the runnable set and the worker chosen."""

    runnable: tuple[int, ...]
    chosen: int


@dataclass
class RunResult:
    """Outcome of one scheduled run of a scenario."""

    scenario: str
    schedule: str
    ok: bool
    steps: int
    decisions: list[Decision] = field(default_factory=list)
    trace: list[tuple[int, str]] = field(default_factory=list)
    failure_kind: str | None = None  # "exception" | "deadlock" | "check"
    failure: str | None = None
    error: BaseException | None = None

    @property
    def choices(self) -> list[int]:
        """The decision sequence; feed to ReplaySchedule to reproduce."""
        return [d.chosen for d in self.decisions]

    def render_trace(self) -> str:
        lines = [f"schedule {self.schedule} choices={self.choices}"]
        lines += [f"  [w{idx}] {point}" for idx, point in self.trace]
        return "\n".join(lines)


@dataclass
class ExploreResult:
    """Outcome of a multi-schedule exploration."""

    scenario: str
    strategy: str
    schedules_run: int
    failure: RunResult | None = None
    seed: int | None = None

    @property
    def found(self) -> bool:
        return self.failure is not None

    def summary(self) -> str:
        if self.failure is None:
            return (
                f"{self.scenario}: no failure in {self.schedules_run} "
                f"{self.strategy} schedule(s)"
            )
        seed = f" seed={self.seed}" if self.seed is not None else ""
        return (
            f"{self.scenario}: {self.failure.failure_kind} after "
            f"{self.schedules_run} {self.strategy} schedule(s){seed} — "
            f"replay choices={self.failure.choices}\n{self.failure.failure}"
        )


class _Controller:
    """Serializes controlled workers; installed as the hooks sink."""

    def __init__(self, scenario, state, schedule: Schedule, max_steps: int, timeout: float):
        self._scenario = scenario
        self._state = state
        self._schedule = schedule
        self._max_steps = max_steps
        self._timeout = timeout
        self._mutex = threading.Lock()  # real: analysis/ is never patched
        self._wake = threading.Event()
        self._aborting = False
        self._workers = [_Worker(i) for i in range(scenario.threads)]
        self._by_ident: dict[int, _Worker] = {}
        self.decisions: list[Decision] = []
        self.trace: list[tuple[int, str]] = []
        self.steps = 0

    # ---- worker-side ----------------------------------------------------

    def _current(self) -> _Worker | None:
        return self._by_ident.get(threading.get_ident())

    def _park(self, worker: _Worker, point: str, blocked_key: int | None = None) -> None:
        if self._aborting:
            # Unwinding workers re-enter via lock releases in ``with``
            # __exit__ blocks; don't wait for a dispatch that never comes.
            raise _Abort("run aborted")
        with self._mutex:
            worker.point = point
            worker.blocked_key = blocked_key
            worker.state = "blocked" if blocked_key is not None else "yielded"
            self._wake.set()
        if not worker.go.wait(self._timeout):
            raise _Abort(f"worker {worker.index} handoff timed out at {point}")
        worker.go.clear()
        if self._aborting:
            raise _Abort("run aborted")
        worker.state = "running"

    def schedule_point(self, name: str) -> None:
        """hooks sink: yield here if the calling thread is controlled."""
        worker = self._current()
        if worker is not None:
            self._park(worker, name)

    def try_controlled_acquire(self, inner, name: str, blocking: bool) -> bool | None:
        """Sanitizer hook: acquire ``inner`` under scheduler control.

        Returns None when the calling thread is not a controlled worker
        (caller falls back to a plain acquire).  Controlled acquisition
        yields first (the attempt is a visible event), then spins through
        non-blocking tries, parking as *blocked* between failures so the
        scheduler only redispatches after a release.
        """
        worker = self._current()
        if worker is None:
            return None
        self._park(worker, f"lock.acquire:{name}")
        while True:
            if inner.acquire(False):
                return True
            if not blocking:
                return False
            self._park(worker, f"lock.blocked:{name}", blocked_key=id(inner))

    def notify_release(self, inner, name: str) -> None:
        """Sanitizer hook: ``inner`` was released by the calling thread."""
        worker = self._current()
        if worker is None:
            return
        key = id(inner)
        with self._mutex:
            for other in self._workers:
                if other.blocked_key == key:
                    other.blocked_key = None
                    other.state = "yielded"
        self._park(worker, f"lock.release:{name}")

    def _worker_main(self, worker: _Worker) -> None:
        self._by_ident[threading.get_ident()] = worker
        outcome, error = "done", None
        try:
            self._park(worker, "start")
            self._scenario.worker(self._state, worker.index)
        except _Abort:
            outcome = "aborted"
        except BaseException as exc:
            outcome, error = "error", exc
        with self._mutex:
            worker.state = outcome
            worker.error = error
            self._wake.set()

    # ---- scheduler side -------------------------------------------------

    def _await_all_parked(self) -> None:
        for _ in range(10_000):
            with self._mutex:
                if all(w.state in _PARKED + _FINISHED for w in self._workers):
                    return
                self._wake.clear()
            if not self._wake.wait(self._timeout):
                raise ExplorationError("workers failed to reach their first yield")
        raise ExplorationError("workers failed to settle")  # pragma: no cover

    def _dispatch(self, worker: _Worker) -> None:
        self._wake.clear()
        worker.go.set()
        if not self._wake.wait(self._timeout):
            raise ExplorationError(
                f"scheduler stalled: worker {worker.index} did not yield "
                f"after {worker.point!r} within {self._timeout}s (controlled "
                "code blocked on an uninstrumented primitive?)"
            )

    def _abort_remaining(self) -> None:
        with self._mutex:
            self._aborting = True
            for worker in self._workers:
                if worker.state not in _FINISHED:
                    worker.go.set()
        for worker in self._workers:
            if worker.thread is not None:
                worker.thread.join(timeout=2.0)

    def run(self) -> RunResult:
        hooks.install(self)
        failure_kind = failure = error = None
        try:
            for worker in self._workers:
                worker.thread = threading.Thread(
                    target=self._worker_main,
                    args=(worker,),
                    name=f"explore-{self._scenario.name}-w{worker.index}",
                    daemon=True,
                )
                worker.thread.start()
            self._await_all_parked()
            while True:
                errored = next(
                    (w for w in self._workers if w.state == "error"), None
                )
                if errored is not None:
                    failure_kind = "exception"
                    error = errored.error
                    failure = (
                        f"worker {errored.index} raised "
                        f"{type(errored.error).__name__}: {errored.error}"
                    )
                    break
                if all(w.state in _FINISHED for w in self._workers):
                    break
                runnable = tuple(
                    w.index for w in self._workers if w.state == "yielded"
                )
                if not runnable:
                    blocked = "; ".join(
                        f"w{w.index} blocked at {w.point}"
                        for w in self._workers
                        if w.state == "blocked"
                    )
                    failure_kind = "deadlock"
                    failure = f"all workers blocked: {blocked}"
                    break
                self.steps += 1
                if self.steps > self._max_steps:
                    raise ExplorationError(
                        f"schedule exceeded {self._max_steps} steps without "
                        "terminating (runaway scenario?)"
                    )
                if len(runnable) > 1:
                    chosen = self._schedule.pick(runnable, len(self.decisions))
                    if chosen not in runnable:  # defensive: bad custom schedule
                        chosen = min(runnable)
                    self.decisions.append(  # repro: noqa[R001] -- scheduler-thread-only; workers are parked here
                        Decision(runnable, chosen)
                    )
                else:
                    chosen = runnable[0]
                worker = self._workers[chosen]
                self.trace.append((chosen, worker.point))  # repro: noqa[R001] -- scheduler-thread-only; workers are parked here
                self._dispatch(worker)
        finally:
            self._abort_remaining()
            hooks.uninstall()
        if failure_kind is None:
            try:
                self._scenario.check(self._state)
            except Exception as exc:
                failure_kind = "check"
                error = exc
                failure = f"invariant check failed: {exc}"
        return RunResult(
            scenario=self._scenario.name,
            schedule=self._schedule.describe(),
            ok=failure_kind is None,
            steps=self.steps,
            decisions=self.decisions,
            trace=self.trace,
            failure_kind=failure_kind,
            failure=failure,
            error=error,
        )


def run_schedule(
    scenario: Scenario,
    schedule: Schedule,
    max_steps: int = 600,
    timeout: float = 10.0,
) -> RunResult:
    """Run ``scenario`` once under ``schedule``; locks are instrumented."""
    was_patched = sanitizer.is_patched()
    if not was_patched:
        sanitizer.patch_locks()
    state = None
    try:
        state = scenario.setup()
        controller = _Controller(scenario, state, schedule, max_steps, timeout)
        return controller.run()
    finally:
        try:
            scenario.teardown(state)
        finally:
            if not was_patched:
                sanitizer.unpatch_locks()


def replay(scenario: Scenario, choices, **kwargs) -> RunResult:
    """Re-run ``scenario`` pinned to a recorded choice sequence."""
    return run_schedule(scenario, ReplaySchedule(choices), **kwargs)


def explore_random(
    scenario_factory,
    seeds,
    make_schedule=None,
    **kwargs,
) -> ExploreResult:
    """Run one schedule per seed until a failure is found.

    ``make_schedule(seed)`` defaults to :class:`RandomSchedule`; pass e.g.
    ``lambda s: PCTSchedule(s, workers=2)`` for PCT sampling.
    """
    if make_schedule is None:
        make_schedule = RandomSchedule
    name = strategy = None
    runs = 0
    for seed in seeds:
        schedule = make_schedule(seed)
        result = run_schedule(scenario_factory(), schedule, **kwargs)
        runs += 1
        name, strategy = result.scenario, schedule.label
        if not result.ok:
            return ExploreResult(name, strategy, runs, failure=result, seed=seed)
    return ExploreResult(name or "scenario", strategy or "random", runs)


def explore_exhaustive(
    scenario_factory,
    max_decisions: int = 10,
    max_schedules: int = 256,
    **kwargs,
) -> ExploreResult:
    """Bounded-exhaustive DFS over decision prefixes.

    Runs the canonical schedule (empty prefix: lowest runnable index wins),
    then for every decision within the first ``max_decisions`` pushes each
    untried alternative as a new prefix.  Complete for scenarios whose
    branching fits the bounds; otherwise a best-effort frontier walk capped
    at ``max_schedules`` runs.
    """
    frontier: list[tuple[int, ...]] = [()]
    name = "scenario"
    runs = 0
    while frontier and runs < max_schedules:
        prefix = frontier.pop()
        result = run_schedule(scenario_factory(), ReplaySchedule(prefix), **kwargs)
        runs += 1
        name = result.scenario
        if not result.ok:
            return ExploreResult(name, "exhaustive", runs, failure=result)
        horizon = min(len(result.decisions), max_decisions)
        for depth in range(len(prefix), horizon):
            decision = result.decisions[depth]
            base = [d.chosen for d in result.decisions[:depth]]
            for alt in decision.runnable:
                if alt != decision.chosen:
                    frontier.append(tuple(base + [alt]))
    return ExploreResult(name, "exhaustive", runs)
