"""Findings and suppression machinery for the repro lint framework.

A :class:`Finding` is one structured lint result: file, line, rule id, and
message.  Suppression uses ``# repro: noqa[R001]`` comments:

- on an ordinary line, the suppression covers that physical line;
- on a ``def``/``class`` header line, it covers the whole body (used for
  "caller holds the lock" style justifications);
- ``# repro: noqa`` with no rule list suppresses every rule in scope.

Suppressions are expected to carry a justification after the bracket, e.g.
``# repro: noqa[R001] -- caller holds _write_lock``; the linter counts
suppressed findings separately so blanket suppression stays visible.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

__all__ = ["Finding", "SuppressionIndex", "NOQA_RE"]

#: Matches ``repro: noqa`` comments with an optional bracketed rule list.
NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One structured lint finding."""

    path: str
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class _Span:
    """Lines ``[start, end]`` where ``rules`` (or all, if None) are suppressed."""

    start: int
    end: int
    rules: frozenset[str] | None


@dataclass
class SuppressionIndex:
    """Resolved ``repro: noqa`` spans for one module."""

    spans: list[_Span] = field(default_factory=list)

    @classmethod
    def from_module(cls, source: str, tree: ast.Module) -> "SuppressionIndex":
        index = cls()
        # Map a def/class header line to its body extent so a noqa on the
        # header suppresses the whole block.
        block_extent: dict[int, int] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                block_extent[node.lineno] = node.end_lineno or node.lineno
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = NOQA_RE.search(line)
            if not match:
                continue
            rules = match.group("rules")
            rule_set = (
                frozenset(r.strip() for r in rules.split(",") if r.strip())
                if rules
                else None
            )
            end = block_extent.get(lineno, lineno)
            index.spans.append(_Span(lineno, end, rule_set))
        return index

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        for span in self.spans:
            if span.start <= line <= span.end and (
                span.rules is None or rule_id in span.rules
            ):
                return True
        return False
