"""Schedule encodings for the interleaving explorer.

A *schedule* answers one question, repeatedly: given the set of runnable
worker indices at a decision point, which worker runs next?  Decisions are
only consulted when more than one worker is runnable, so the recorded
choice sequence is exactly the branching structure of the run — replaying
the same choices against the same scenario reproduces the interleaving
byte-identically (scenarios are deterministic modulo schedule).

Three encodings:

- :class:`ReplaySchedule` — follow a recorded choice list, then fall back
  to the lowest runnable index.  The empty choice list is the canonical
  "run thread 0 as far as possible" schedule, and the DFS driver in
  :mod:`~repro.analysis.explore` enumerates prefixes of these.
- :class:`RandomSchedule` — uniform choice from a seeded PRNG.
- :class:`PCTSchedule` — the PCT bug-depth sampler (Burckhardt et al.):
  random per-worker priorities, run the highest-priority runnable worker,
  and demote the running worker at ``depth - 1`` pre-sampled step indices.
  Finds depth-``d`` bugs with probability >= 1/(n * k^(d-1)) per schedule.
"""

from __future__ import annotations

import random

__all__ = ["Schedule", "ReplaySchedule", "RandomSchedule", "PCTSchedule"]


class Schedule:
    """Base class: pick a worker index from the runnable set."""

    label = "schedule"

    def pick(self, runnable: tuple[int, ...], decision_index: int) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        return self.label


class ReplaySchedule(Schedule):
    """Follow ``choices`` verbatim; afterwards run the lowest runnable index.

    A choice that is not currently runnable (the replayed run diverged,
    which only happens when the scenario itself changed) falls back to the
    lowest runnable index rather than failing, so stale traces degrade to
    an ordinary deterministic schedule.
    """

    label = "replay"

    def __init__(self, choices=()):
        self.choices = tuple(choices)

    def pick(self, runnable: tuple[int, ...], decision_index: int) -> int:
        if decision_index < len(self.choices):
            wanted = self.choices[decision_index]
            if wanted in runnable:
                return wanted
        return min(runnable)

    def describe(self) -> str:
        return f"replay{list(self.choices)}"


class RandomSchedule(Schedule):
    """Uniform random choice from a seeded PRNG — reproducible per seed."""

    label = "random"

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, runnable: tuple[int, ...], decision_index: int) -> int:
        return self._rng.choice(runnable)

    def describe(self) -> str:
        return f"random(seed={self.seed})"


class PCTSchedule(Schedule):
    """Priority-based probabilistic concurrency testing.

    Workers get distinct random priorities; the highest-priority runnable
    worker always runs.  At ``depth - 1`` change points (step indices
    sampled from ``[0, max_steps)``) the currently chosen worker's priority
    drops below everyone else's, forcing a context switch at an adversarial
    moment instead of a uniformly random one.
    """

    label = "pct"

    def __init__(self, seed: int, workers: int = 2, depth: int = 3, max_steps: int = 64):
        self.seed = seed
        rng = random.Random(seed)
        priorities = list(range(depth, depth + workers))
        rng.shuffle(priorities)
        self._priority = {i: priorities[i] for i in range(workers)}
        changes = max(0, depth - 1)
        self._change_points = set(rng.sample(range(max_steps), min(changes, max_steps)))
        self._next_low = 0  # demotion priorities count down below all initials

    def pick(self, runnable: tuple[int, ...], decision_index: int) -> int:
        chosen = max(runnable, key=lambda i: self._priority.get(i, 0))
        if decision_index in self._change_points:
            self._next_low -= 1
            self._priority[chosen] = self._next_low
            chosen = max(runnable, key=lambda i: self._priority.get(i, 0))
        return chosen

    def describe(self) -> str:
        return f"pct(seed={self.seed})"
