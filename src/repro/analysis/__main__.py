"""``python -m repro.analysis`` entry point."""

from .cli import main

raise SystemExit(main())
