"""Concurrency-invariant analysis for the TigerVector reproduction.

Two halves (see DESIGN.md for the rule catalog and paper mapping):

- a pluggable AST lint framework — ``python -m repro.analysis lint src/`` or
  the ``repro-lint`` console script — with project-specific rules R001–R007
  guarding the paper's MVCC/vacuum/HNSW invariants;
- a runtime lock-order :mod:`~repro.analysis.sanitizer` that instruments
  ``threading`` locks at test time (``REPRO_SANITIZE=1``) and reports
  lock-order inversions and held-across-commit violations.
"""

from .cli import LintResult, lint_paths, main
from .findings import Finding, SuppressionIndex
from .lockgraph import LockOrderGraph
from .rules import REGISTRY, Rule, lint_source, make_rules, register

__all__ = [
    "Finding",
    "LintResult",
    "LockOrderGraph",
    "REGISTRY",
    "Rule",
    "SuppressionIndex",
    "lint_paths",
    "lint_source",
    "main",
    "make_rules",
    "register",
]
