"""Runtime lock-order sanitizer for the MVCC/vacuum/HNSW core.

:class:`SanitizedLock` wraps ``threading.Lock``/``RLock`` and records, per
thread, the stack of held locks.  Every acquisition made while another lock
is held adds an edge to a process-global :class:`~.lockgraph.LockOrderGraph`
keyed by the lock's *creation site* (all ``DeltaStore._lock`` instances share
one node, lockdep-style).  Two violation kinds are detected:

- **lock-order-inversion** — acquiring B while holding A when a path
  B -> ... -> A already exists in the order graph (potential deadlock
  between e.g. the commit path and the two-stage vacuum);
- **held-across-commit** — entering the commit critical section
  (a lock whose name contains ``commit``) while already holding any other
  instrumented lock, which would let an arbitrary lock's critical section
  contain the globally-serialized commit.

:func:`patch_locks` monkey-patches ``threading.Lock``/``RLock`` so that locks
*created by repro code* (caller file under ``repro/`` but outside
``repro/analysis/``) come back instrumented; all other callers (stdlib,
pytest, numpy) get real locks.  ``tests/conftest.py`` enables this under
``REPRO_SANITIZE=1`` and fails the session if any violation was recorded; a
process-exit hook additionally prints the report for non-pytest runs.
"""

from __future__ import annotations

import atexit
import linecache
import os
import re
import sys
import threading
import traceback
from dataclasses import dataclass, field

from . import hooks
from .lockgraph import LockOrderGraph

__all__ = [
    "ENV_VAR",
    "SanitizedLock",
    "Violation",
    "enabled",
    "patch_locks",
    "unpatch_locks",
    "is_patched",
    "reset",
    "set_context",
    "current_context",
    "violations",
    "counters",
    "format_report",
    "summary_line",
]

ENV_VAR = "REPRO_SANITIZE"

# Real constructors captured at import time, before any patching.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_COMMIT_PAT = re.compile(r"commit", re.IGNORECASE)

_SELF_ATTR_ASSIGN_RE = re.compile(r"(self\.\w+)\s*[:=]")


def enabled() -> bool:
    """True when the sanitizer was requested via the environment."""
    return os.environ.get(ENV_VAR) == "1"


@dataclass(frozen=True)
class Violation:
    """One recorded lock-discipline violation."""

    kind: str  # "lock-order-inversion" | "held-across-commit"
    message: str
    stack: str = ""
    #: What was running when the violation fired (the pytest test id when
    #: run under the conftest fixture); "" outside any recorded context.
    context: str = ""

    def render(self) -> str:
        out = f"[{self.kind}] {self.message}"
        if self.context:
            out += f"\n    triggered by: {self.context}"
        if self.stack:
            out += f"\n{self.stack}"
        return out


class _State:
    """Process-global sanitizer state (serialized on a real lock)."""

    def __init__(self):
        self.mutex = _REAL_LOCK()
        self.graph = LockOrderGraph()
        self.violations: list[Violation] = []
        self.reported: set = set()
        self.locks_created = 0
        self.acquisitions = 0
        self.local = threading.local()
        self.context: str | None = None

    def held(self) -> list:
        held = getattr(self.local, "held", None)
        if held is None:
            held = []
            self.local.held = held
        return held


_state = _State()
_patched = False
_atexit_registered = False


def _short_stack(skip: int = 3, limit: int = 14) -> str:
    """A compact acquisition stack, with sanitizer frames dropped."""
    frames = traceback.extract_stack(limit=limit)
    lines = []
    for frame in frames[:-skip]:
        fname = frame.filename.replace(os.sep, "/")
        if fname.endswith("analysis/sanitizer.py"):
            continue
        tail = "/".join(fname.rsplit("/", 2)[-2:])
        lines.append(f"    {tail}:{frame.lineno} in {frame.name}")
    return "\n".join(lines[-6:])


def _site_name(frame) -> str:
    """Derive a stable lock name from its creation site.

    ``core/delta.py:108(self._lock)`` — path tail, line, and (when the
    source is available) the attribute being assigned.
    """
    fname = frame.f_code.co_filename
    tail = "/".join(fname.replace(os.sep, "/").rsplit("/", 2)[-2:])
    name = f"{tail}:{frame.f_lineno}"
    line = linecache.getline(fname, frame.f_lineno)
    match = _SELF_ATTR_ASSIGN_RE.search(line)
    if match:
        name += f"({match.group(1)})"
    return name


def _is_commit_lock(name: str) -> bool:
    return bool(_COMMIT_PAT.search(name))


def set_context(context: str | None) -> None:
    """Attribute subsequent violations to ``context`` (e.g. a pytest id).

    The conftest sets this per test so a session-end report can say which
    test actually produced each violation; ``None`` clears it.
    """
    with _state.mutex:
        _state.context = context


def current_context() -> str | None:
    with _state.mutex:
        return _state.context


def _record_acquire(lock: "SanitizedLock", held: list) -> None:
    """Record ordering edges and check invariants BEFORE blocking."""
    with _state.mutex:
        _state.acquisitions += 1
        if not held:
            return
        distinct = {h.name: h for h in held}
        for name in distinct:
            if name == lock.name:
                continue
            inversion = _state.graph.add_edge(name, lock.name, _short_stack())
            if inversion is not None:
                key = ("inv", frozenset((name, lock.name)))
                if key not in _state.reported:
                    _state.reported.add(key)
                    chain = " -> ".join(inversion + [lock.name])
                    _state.violations.append(
                        Violation(
                            kind="lock-order-inversion",
                            message=(
                                f"acquiring {lock.name} while holding {name} "
                                f"inverts the established order ({chain})"
                            ),
                            stack=_short_stack(),
                            context=_state.context or "",
                        )
                    )
        if _is_commit_lock(lock.name) and any(
            not _is_commit_lock(name) for name in distinct
        ):
            others = ", ".join(n for n in distinct if not _is_commit_lock(n))
            key = ("commit", lock.name, tuple(sorted(distinct)))
            if key not in _state.reported:
                _state.reported.add(key)
                _state.violations.append(
                    Violation(
                        kind="held-across-commit",
                        message=(
                            f"entering commit critical section {lock.name} "
                            f"while holding [{others}]; commits must not nest "
                            "inside other critical sections"
                        ),
                        stack=_short_stack(),
                        context=_state.context or "",
                    )
                )


class SanitizedLock:
    """Instrumented drop-in for ``threading.Lock`` / ``threading.RLock``."""

    def __init__(self, name: str | None = None, reentrant: bool = False):
        self._inner = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._reentrant = reentrant
        if name is None:
            name = _site_name(sys._getframe(1))
        self.name = name
        with _state.mutex:
            _state.locks_created += 1

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = _state.held()
        if not any(h is self for h in held):
            # Reentrant re-acquisition of the same instance adds no ordering.
            _record_acquire(self, held)
        controller = hooks.active()
        acquired = None
        if controller is not None:
            # Under the interleaving explorer a controlled worker's acquire
            # becomes a cooperative yield; uncontrolled threads fall through.
            acquired = controller.try_controlled_acquire(
                self._inner, self.name, blocking
            )
        if acquired is None:
            acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            held.append(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        held = _state.held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is self:
                del held[i]
                break
        controller = hooks.active()
        if controller is not None:
            controller.notify_release(self._inner, self.name)

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        if inner_locked is not None:
            return inner_locked()
        return bool(self._inner._is_owned())  # RLock on older Pythons

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SanitizedLock {self.name} reentrant={self._reentrant}>"

    # Pickle support mirrors the core classes: locks drop their runtime
    # state and come back fresh (see DeltaStore.__getstate__ et al.).
    def __getstate__(self) -> dict:
        return {"name": self.name, "_reentrant": self._reentrant}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self._reentrant = state["_reentrant"]
        self._inner = _REAL_RLOCK() if self._reentrant else _REAL_LOCK()


def _should_instrument(filename: str) -> bool:
    fname = filename.replace(os.sep, "/")
    return "/repro/" in fname and "/repro/analysis/" not in fname


def _factory(reentrant: bool):
    def make_lock():
        frame = sys._getframe(1)
        if _should_instrument(frame.f_code.co_filename):
            return SanitizedLock(name=_site_name(frame), reentrant=reentrant)
        return _REAL_RLOCK() if reentrant else _REAL_LOCK()

    return make_lock


def patch_locks() -> None:
    """Route ``threading.Lock``/``RLock`` creation through the sanitizer.

    Only locks created from repro source files (outside this package) are
    instrumented; everything else gets a real lock, so stdlib and test
    machinery are unaffected.  Idempotent.
    """
    global _patched, _atexit_registered
    if _patched:
        return
    threading.Lock = _factory(reentrant=False)
    threading.RLock = _factory(reentrant=True)
    _patched = True
    if not _atexit_registered:
        atexit.register(_report_at_exit)
        _atexit_registered = True


def unpatch_locks() -> None:
    """Restore the real lock constructors."""
    global _patched
    threading.Lock = _REAL_LOCK
    threading.RLock = _REAL_RLOCK
    _patched = False


def is_patched() -> bool:
    """True while the lock constructors are routed through the sanitizer."""
    return _patched


def reset() -> None:
    """Clear the order graph, counters, and recorded violations."""
    with _state.mutex:
        _state.graph = LockOrderGraph()
        _state.violations = []
        _state.reported = set()
        _state.locks_created = 0
        _state.acquisitions = 0


def violations() -> list[Violation]:
    with _state.mutex:
        return list(_state.violations)


def counters() -> dict:
    with _state.mutex:
        return {
            "locks_instrumented": _state.locks_created,
            "acquisitions": _state.acquisitions,
            "orderings": len(_state.graph),
        }


def order_graph() -> LockOrderGraph:
    """The live order graph (read-only use; synchronize for iteration)."""
    return _state.graph


def summary_line() -> str:
    stats = counters()
    found = violations()
    inversions = sum(1 for v in found if v.kind == "lock-order-inversion")
    across = sum(1 for v in found if v.kind == "held-across-commit")
    return (
        f"repro-sanitizer: {stats['locks_instrumented']} instrumented lock(s), "
        f"{stats['acquisitions']} acquisition(s), {stats['orderings']} "
        f"ordering(s), {inversions} lock-order inversion(s), "
        f"{across} held-across-commit violation(s)"
    )


def format_report() -> str:
    lines = [summary_line()]
    for violation in violations():
        lines.append(violation.render())
    return "\n".join(lines)


def _report_at_exit() -> None:  # pragma: no cover - exercised in subprocesses
    if enabled() and violations():
        print(format_report(), file=sys.stderr)
