"""Cooperative yield points for the interleaving explorer.

Production modules call :func:`schedule_point` at the concurrency-sensitive
transitions the paper's correctness story hinges on (commit publication,
snapshot pinning, watermark reads, cache get/put, HNSW insert/save).  With
no controller installed this is a module-global ``None`` check — cheap
enough to leave in the hot paths permanently, like the sanitizer's lock
instrumentation.

When :mod:`repro.analysis.explore` installs a controller, every call from a
*controlled* thread becomes a cooperative yield: the thread parks and the
scheduler decides who runs next.  Calls from uncontrolled threads (pytest's
main thread, background vacuum) always pass straight through, so a
controller installed by one test cannot perturb unrelated code.

This module deliberately imports nothing from the rest of ``repro`` so the
core packages can import it without cycles.
"""

from __future__ import annotations

__all__ = ["schedule_point", "active", "install", "uninstall"]

#: The installed scheduler, or None (the common case).  Writes are rare and
#: happen-before worker threads start, so a plain global read suffices.
_controller = None


def active():
    """The installed controller, or None when no exploration is running."""
    return _controller


def install(controller) -> None:
    """Install ``controller`` as the process-wide schedule-point sink."""
    global _controller
    _controller = controller


def uninstall() -> None:
    global _controller
    _controller = None


def schedule_point(name: str) -> None:
    """Mark a concurrency-sensitive program point.

    No-op unless an explorer controller is installed *and* the calling
    thread is one of its controlled workers.
    """
    controller = _controller
    if controller is not None:
        controller.schedule_point(name)
