"""Canned concurrency scenarios for the interleaving explorer.

Each scenario packages one cross-thread interaction the paper's
correctness story depends on (PAPER.md Sec. 4.3/4.5) into a
:class:`~repro.analysis.explore.Scenario`: deterministic setup, two
controlled workers, and a post-join invariant check.  ``MATRIX`` lists
the scenarios with the exploration strategy and *expected* outcome —
the intentionally-broken variants (the PR 4 cache race with its fix
disabled, the toy lost update) must be *found* within their budget,
which keeps the explorer itself honest in CI.

Scenario state must only share :class:`~.sanitizer.SanitizedLock`-guarded
structures between workers: the explorer can only deschedule a worker at
instrumented points, and a controlled worker blocking on an *uninstrumented*
primitive stalls the scheduler.  Production ``repro`` locks are instrumented
by ``patch_locks`` (run_schedule ensures it); toy scenarios instantiate
``SanitizedLock`` directly because ``repro/analysis/`` itself is exempt
from patching.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from .. import Attribute, AttrType, Metric, TigerVectorDB
from ..core.search import (
    merge_sharded_topk,
    vector_search_merged,
    vector_search_sharded,
)
from ..errors import SegmentOwnershipError
from ..core.service import EmbeddingStore
from ..index.hnsw import HNSWIndex
from ..index.pq import PQCodebook, PQCodes, PQSearchConfig
from ..tier import demote_segment
from ..serve.cache import ResultCache
from ..serve.batcher import MicroBatcher
from ..serve.tenancy import TenantRegistry, WeightedFairQueue
from .explore import Scenario
from .hooks import schedule_point
from .sanitizer import SanitizedLock

__all__ = ["MATRIX", "ScenarioSpec", "scenario_names", "make_scenario"]


class _Box:
    """Attribute bag for scenario state."""


# --------------------------------------------------------------------------
# toy lost update — the explorer's own regression fixture
# --------------------------------------------------------------------------


class LostUpdateScenario(Scenario):
    """Two workers increment a shared counter; the broken variant reads the
    current value *outside* the lock (classic lost update)."""

    threads = 2
    description = "toy read-modify-write; broken variant reads outside the lock"

    def __init__(self, guarded: bool = False):
        self.guarded = guarded
        self.name = "lost-update-guarded" if guarded else "lost-update"

    def setup(self):
        state = _Box()
        state.lock = SanitizedLock(name="toy.counter.lock")
        state.value = 0
        return state

    def worker(self, state, index: int) -> None:
        if self.guarded:
            with state.lock:
                observed = state.value
                schedule_point("toy.read")
                state.value = observed + 1
        else:
            observed = state.value
            schedule_point("toy.read")
            with state.lock:
                state.value = observed + 1

    def check(self, state) -> None:
        assert state.value == self.threads, (
            f"lost update: {self.threads} increments produced {state.value}"
        )


# --------------------------------------------------------------------------
# commit vs cached search — the PR 4 watermark/commit cache-poisoning race
# --------------------------------------------------------------------------

_ATTR = "Doc.vec"
_DIM = 4
_K = 2


def _make_doc_db(num_docs: int = 6) -> TigerVectorDB:
    db = TigerVectorDB(segment_size=8)
    db.schema.create_vertex_type(
        "Doc", [Attribute("id", AttrType.INT, primary_key=True)]
    )
    db.schema.add_embedding_attribute(
        "Doc", "vec", dimension=_DIM, model="GPT4", metric=Metric.L2
    )
    # Well-separated deterministic vectors: doc i sits at 10*(i+1) on axis
    # i % dim, so every pairwise distance is large and ties are impossible.
    with db.begin() as txn:
        for i in range(num_docs):
            txn.upsert_vertex("Doc", i, {})
            vec = np.zeros(_DIM, dtype=np.float32)
            vec[i % _DIM] = 10.0 * (i + 1)
            txn.set_embedding("Doc", i, "vec", vec)
    return db


def _search(db, query: np.ndarray, k: int = _K) -> tuple:
    with db.snapshot() as snapshot:
        return tuple(vector_search_merged(db.service, snapshot, [_ATTR], query, k))


class CommitVsCachedSearch(Scenario):
    """A commit racing a cache-filling search worker.

    Worker 0 commits a new embedding for doc 0 that becomes the query's
    nearest neighbor.  Worker 1 mimics the serve worker's cache path:
    read watermarks, probe the cache, pin a snapshot, search, cache.

    With ``validate=False`` (the PR 4 fix reverted) there is an
    interleaving — commit past its embedding hook but before publishing
    ``last_tid`` — where worker 1 reads a post-commit watermark, pins a
    pre-commit snapshot, and caches the stale top-k under the post-commit
    key.  ``check`` then finds a poisoned hit for a fresh watermark.
    With ``validate=True`` (the shipped server logic: serve but don't
    cache when ``watermark_tid(mark) > snapshot.tid``) every interleaving
    must pass.
    """

    threads = 2
    description = "commit vs watermark-keyed cached search (PR 4 race)"

    def __init__(self, validate: bool = True):
        self.validate = validate
        self.name = (
            "commit-vs-cached-search"
            if validate
            else "commit-vs-cached-search-unvalidated"
        )

    def setup(self):
        state = _Box()
        state.db = _make_doc_db()
        state.db.vacuum(num_threads=1)
        state.cache = ResultCache()
        state.query = np.zeros(_DIM, dtype=np.float32)
        state.query[0] = 100.0
        state.new_vector = np.zeros(_DIM, dtype=np.float32)
        state.new_vector[0] = 99.0  # post-commit nearest neighbor for query
        return state

    def worker(self, state, index: int) -> None:
        if index == 0:
            with state.db.begin() as txn:
                txn.set_embedding("Doc", 0, "vec", state.new_vector)
            return
        # Serve-worker cache path (see QueryServer._execute_vector).
        store = state.db.service.store("Doc", "vec")
        mark = store.watermark()
        key = ResultCache.key([_ATTR], state.query, _K, None, (mark,))
        if state.cache.get(key) is not None:
            return
        with state.db.snapshot() as snapshot:
            top = tuple(
                vector_search_merged(
                    state.db.service, snapshot, [_ATTR], state.query, _K
                )
            )
            if self.validate and EmbeddingStore.watermark_tid(mark) > snapshot.tid:
                return  # commit mid-publication: serve without caching
            state.cache.put(key, top)

    def check(self, state) -> None:
        store = state.db.service.store("Doc", "vec")
        fresh_mark = store.watermark()
        key = ResultCache.key([_ATTR], state.query, _K, None, (fresh_mark,))
        hit = state.cache.get(key)
        if hit is None:
            return
        truth = _search(state.db, state.query)
        hit_ids = [(vtype, vid) for _, vtype, vid in hit]
        truth_ids = [(vtype, vid) for _, vtype, vid in truth]
        assert hit_ids == truth_ids, (
            "cache poisoned: stale top-k cached under a post-commit "
            f"watermark key (cached {hit_ids}, fresh snapshot {truth_ids})"
        )

    def teardown(self, state) -> None:
        state.db.close()


# --------------------------------------------------------------------------
# read-your-writes session token vs commit publish
# --------------------------------------------------------------------------


class SessionTokenVsCommitPublish(Scenario):
    """A session token racing the commit that issued it.

    Worker 0 commits a new nearest-neighbor embedding for doc 0.  Worker 1
    models a client that just committed: it derives a session token from
    the store watermark — the embedding hook publishes the commit's TID
    there *before* ``GraphStore.last_tid`` — then asks to be served
    read-your-writes.

    With ``validate=False`` (no token check) there is an interleaving —
    token read post-hook, snapshot pinned pre-``last_tid`` — where the
    "serving snapshot" predates the very commit the token names, and the
    client reads a top-k missing its own write.  With ``validate=True``
    (the shipped ``QueryServer._execute_sla`` logic: only serve from a
    snapshot whose TID covers the token, bounded retries, fail typed
    otherwise) every interleaving must pass.
    """

    threads = 2
    description = "read-your-writes token vs commit publish window"

    #: Mirrors the server's bounded staleness_wait: give up (fail typed)
    #: rather than spin forever inside an adversarial schedule.
    _MAX_RETRIES = 8

    def __init__(self, validate: bool = True):
        self.validate = validate
        self.name = (
            "session-token-vs-commit"
            if validate
            else "session-token-vs-commit-unvalidated"
        )

    def setup(self):
        state = _Box()
        state.db = _make_doc_db()
        state.db.vacuum(num_threads=1)
        state.query = np.zeros(_DIM, dtype=np.float32)
        state.query[0] = 100.0
        state.new_vector = np.zeros(_DIM, dtype=np.float32)
        state.new_vector[0] = 99.0  # post-commit nearest neighbor for query
        state.token = None
        state.served = None
        return state

    def worker(self, state, index: int) -> None:
        if index == 0:
            with state.db.begin() as txn:
                txn.set_embedding("Doc", 0, "vec", state.new_vector)
            return
        store = state.db.service.store("Doc", "vec")
        state.token = EmbeddingStore.watermark_tid(store.watermark())
        for _ in range(self._MAX_RETRIES):
            with state.db.snapshot() as snapshot:
                if not self.validate or snapshot.tid >= state.token:
                    state.served = [
                        (vtype, vid)
                        for _, vtype, vid in vector_search_merged(
                            state.db.service, snapshot, [_ATTR], state.query, _K
                        )
                    ]
                    return
            schedule_point("serve.sla.retry")
        # Retry budget exhausted with the token still uncovered: the server
        # fails this request typed (StalenessBoundError), never stale.

    def check(self, state) -> None:
        if state.served is None:
            return
        commit_tid = state.db.store.last_tid
        if state.token is None or state.token < commit_tid:
            return  # token predates the commit: no read-your-writes claim
        truth = [
            (vtype, vid) for _, vtype, vid in _search(state.db, state.query)
        ]
        assert state.served == truth, (
            f"read-your-writes violated: token {state.token} was served "
            f"stale top-k {state.served} != {truth}"
        )

    def teardown(self, state) -> None:
        state.db.close()


# --------------------------------------------------------------------------
# vacuum delta_merge vs search
# --------------------------------------------------------------------------


class VacuumVsSearch(Scenario):
    """A full vacuum (delta merge + index merge) racing a snapshot search.

    The two-stage vacuum moves committed deltas into segment snapshots and
    rebuilds indexes, but never changes logical content: whatever snapshot
    the reader pins, its top-k ids must equal the pre-vacuum ground truth.
    """

    name = "vacuum-vs-search"
    threads = 2
    description = "two-stage vacuum vs snapshot-pinned search"

    def setup(self):
        state = _Box()
        state.db = _make_doc_db(num_docs=10)  # deltas left unmerged
        state.query = np.zeros(_DIM, dtype=np.float32)
        state.query[1] = 25.0
        state.truth_ids = [
            (vtype, vid) for _, vtype, vid in _search(state.db, state.query, k=3)
        ]
        state.result_ids = None
        return state

    def worker(self, state, index: int) -> None:
        if index == 0:
            state.db.vacuum(num_threads=1)
            return
        with state.db.snapshot() as snapshot:
            top = vector_search_merged(
                state.db.service, snapshot, [_ATTR], state.query, 3
            )
        state.result_ids = [(vtype, vid) for _, vtype, vid in top]

    def check(self, state) -> None:
        assert state.result_ids == state.truth_ids, (
            "vacuum changed logical search content: "
            f"{state.result_ids} != {state.truth_ids}"
        )

    def teardown(self, state) -> None:
        state.db.close()


# --------------------------------------------------------------------------
# tier demotion vs pinned-snapshot search
# --------------------------------------------------------------------------


class TierDemoteVsSearch(Scenario):
    """A hot→cold tier demotion racing a snapshot-pinned search.

    Worker 0 demotes the only segment to the cold (PQ) tier; worker 1 runs
    a top-k search.  Demotion never changes logical content, and with the
    default rerank inflation every cold search here reranks all rows
    exactly, so whatever snapshot the reader pins — the hot original, the
    retired hot twin, or the published cold twin — the top-k ids must
    equal the pre-demotion ground truth.

    With ``validate=False`` the demotion takes the tempting shortcut of
    mutating the live snapshot in place (clear the index, then attach the
    codes).  Between those two writes the snapshot is *half-demoted* —
    marked cold with neither an index nor codes — and a search landing at
    the ``tier.publish`` point observes it (the scan-kernel guard raises).
    With ``validate=True`` (the shipped two-phase build-aside +
    same-tid ``install_snapshot`` publish) every interleaving must pass.
    """

    threads = 2
    description = "tier demotion vs snapshot-pinned search (DESIGN §12)"

    def __init__(self, validate: bool = True):
        self.validate = validate
        self.name = (
            "tier-demote-vs-search" if validate else "tier-demote-vs-search-unvalidated"
        )

    def setup(self):
        state = _Box()
        state.db = _make_doc_db()
        state.db.vacuum(num_threads=1)  # fold deltas in so the segment is sealed
        state.store = state.db.service.store("Doc", "vec")
        state.config = PQSearchConfig(m=2, train_iterations=4, seed=5)
        state.store.pq_config = state.config
        state.query = np.zeros(_DIM, dtype=np.float32)
        state.query[0] = 100.0
        state.truth_ids = [
            (vtype, vid) for _, vtype, vid in _search(state.db, state.query)
        ]
        state.result_ids = None
        return state

    def worker(self, state, index: int) -> None:
        if index == 0:
            segment = state.store.segment(0)
            if self.validate:
                demote_segment(state.store, segment, state.config)
                return
            # The in-place shortcut: publish the transition by mutating the
            # snapshot readers already hold, no MVCC twin.
            snap = segment.current_snapshot()
            vectors = np.asarray(snap.vectors)
            codebook = PQCodebook.train(
                vectors[snap.present], 2, metric=Metric.L2, iterations=4, seed=5
            )
            pq = PQCodes.from_vectors(codebook, vectors, Metric.L2)
            snap.tier = "cold"
            snap.index = None
            snap._kernel = None
            schedule_point("tier.publish")
            snap.pq = pq
            return
        state.result_ids = [
            (vtype, vid) for _, vtype, vid in _search(state.db, state.query)
        ]

    def check(self, state) -> None:
        assert state.result_ids == state.truth_ids, (
            "tier demotion changed logical search content: "
            f"{state.result_ids} != {state.truth_ids}"
        )

    def teardown(self, state) -> None:
        state.db.close()


# --------------------------------------------------------------------------
# elastic rebalance vs pinned search
# --------------------------------------------------------------------------


class RebalanceVsSearch(Scenario):
    """A segment-group handoff racing a routed, snapshot-pinned search.

    Models the elastic tier's hot path (``repro.elastic``): worker 1 is a
    router thread — gate past a draining key, take an in-flight ref,
    resolve owners, pin a snapshot, then (after the shard-side ownership
    re-check) run the sharded search and merge.  Worker 0 moves group 1
    between servers.

    With ``validate=True`` the mover follows the shipped handoff
    protocol: close the gate, *wait for the in-flight count to drain to
    zero*, then transfer — so the shard-side re-check can never observe
    a revocation mid-flight, and every interleaving must produce either
    the exact merged top-k or a clean gated refusal.  With
    ``validate=False`` the mover revokes immediately (handoff without
    the watermark drain): an interleaving where the search has routed
    and pinned but not yet re-checked observes the revocation and raises
    :class:`SegmentOwnershipError` — the planted bug the explorer must
    find within budget.
    """

    threads = 2
    description = "segment-group handoff vs routed pinned search (DESIGN §13)"

    #: Bounded gate/drain retries, mirroring the tier's bounded waits:
    #: give up cleanly rather than spin forever in an adversarial schedule.
    _MAX_RETRIES = 8

    def __init__(self, validate: bool = True):
        self.validate = validate
        self.name = (
            "rebalance-vs-search" if validate else "rebalance-vs-search-unvalidated"
        )

    def setup(self):
        state = _Box()
        state.db = _make_doc_db(num_docs=10)  # 2 segments -> groups {0, 1}
        state.db.vacuum(num_threads=1)
        state.lock = SanitizedLock(name="elastic.ownership.lock")
        state.owner = {0: "a", 1: "a"}  # router's entry map: group -> server
        state.served_by = {"a": {0, 1}, "b": set()}  # shard ownership sets
        state.draining = False
        state.inflight = 0
        state.query = np.zeros(_DIM, dtype=np.float32)
        state.query[1] = 25.0
        state.truth_ids = [
            (vtype, vid) for _, vtype, vid in _search(state.db, state.query, k=3)
        ]
        state.result_ids = None
        return state

    def _move(self, state) -> None:
        if not self.validate:
            # Handoff without the drain: transfer under a live in-flight ref.
            with state.lock:
                state.served_by["a"].discard(1)
                state.served_by["b"].add(1)
                state.owner[1] = "b"
            return
        with state.lock:
            state.draining = True
        for _ in range(self._MAX_RETRIES):
            with state.lock:
                if state.inflight == 0:
                    state.served_by["a"].discard(1)
                    state.served_by["b"].add(1)
                    state.owner[1] = "b"
                    state.draining = False
                    return
            schedule_point("elastic.drain.wait")
        with state.lock:
            state.draining = False  # drain budget exhausted: abort the move

    def worker(self, state, index: int) -> None:
        if index == 0:
            self._move(state)
            return
        # Router thread: gate, acquire, route, pin, execute, merge.
        for _ in range(self._MAX_RETRIES):
            with state.lock:
                if not state.draining:
                    routed = dict(state.owner)
                    state.inflight += 1
                    break
            schedule_point("elastic.gate.wait")
        else:
            return  # gated out for the whole budget: clean refusal
        try:
            assignment: dict[str, list[int]] = {}
            for group, server in routed.items():
                assignment.setdefault(server, []).append(group)
            with state.db.snapshot() as snapshot:
                schedule_point("elastic.shard.pinned")
                parts = []
                for server, groups in sorted(assignment.items()):
                    # The shard-side execution-time ownership re-check.
                    with state.lock:
                        missing = [
                            g for g in groups if g not in state.served_by[server]
                        ]
                    if missing:
                        raise SegmentOwnershipError(
                            f"server '{server}' lost group {missing[0]} "
                            f"mid-flight (handoff did not drain)",
                            group=missing[0],
                        )
                    parts.append(
                        vector_search_sharded(
                            state.db.service,
                            snapshot,
                            [_ATTR],
                            state.query,
                            3,
                            groups=frozenset(groups),
                            group_size=1,
                        )
                    )
            merged = merge_sharded_topk(parts, 3)
            state.result_ids = [(vtype, vid) for _, vtype, vid in merged]
        finally:
            with state.lock:
                state.inflight -= 1

    def check(self, state) -> None:
        if state.result_ids is None:
            return  # cleanly refused at the gate: allowed, never wrong
        assert state.result_ids == state.truth_ids, (
            "handoff changed routed search content: "
            f"{state.result_ids} != {state.truth_ids}"
        )

    def teardown(self, state) -> None:
        state.db.close()


# --------------------------------------------------------------------------
# concurrent HNSW insert vs save
# --------------------------------------------------------------------------


class HnswInsertVsSave(Scenario):
    """Inserts racing a persistence snapshot.

    ``save`` deep-copies under ``_write_lock``; whatever interleaving
    runs, the saved file must load into a structurally valid index whose
    count is one of the states the insert sequence passed through.
    """

    name = "hnsw-insert-vs-save"
    threads = 2
    description = "HNSW update_items vs save/load round-trip"

    def setup(self):
        state = _Box()
        state.index = HNSWIndex(dim=_DIM, M=4, ef_construction=16, seed=7)
        rng = np.random.default_rng(11)
        base = rng.standard_normal((6, _DIM)).astype(np.float32)
        state.index.update_items(range(6), base, num_threads=1)
        state.extra = rng.standard_normal((3, _DIM)).astype(np.float32)
        state.dir = Path(tempfile.mkdtemp(prefix="repro-explore-"))
        state.path = state.dir / "hnsw.idx"
        return state

    def worker(self, state, index: int) -> None:
        if index == 0:
            state.index.update_items([6, 7, 8], state.extra, num_threads=1)
            return
        state.index.save(state.path)

    def check(self, state) -> None:
        loaded = HNSWIndex.load(state.path)
        count = loaded.stats.num_vectors
        assert 6 <= count <= 9, f"torn save: loaded count {count}"
        result = loaded.topk_search(state.extra[0], k=3)
        assert len(result.ids) == 3

    def teardown(self, state) -> None:
        shutil.rmtree(state.dir, ignore_errors=True)


# --------------------------------------------------------------------------
# batcher enqueue vs window close
# --------------------------------------------------------------------------


class _BatchReq:
    """Minimal batchable request (compare serve/server._Request)."""

    def __init__(self, rid: int):
        self.rid = rid

    def batch_key(self):
        return (_ATTR, _K, None)


class BatcherVsWindowClose(Scenario):
    """Enqueues racing a leader's batch-collection window.

    Whatever the interleaving, conservation must hold: every request ends
    up either in the collected batch or still queued — none lost, none
    duplicated — and the batch never exceeds ``max_batch``.
    """

    name = "batcher-vs-window"
    threads = 2
    description = "batcher enqueue vs collection-window close"

    def setup(self):
        state = _Box()
        state.queue = WeightedFairQueue(TenantRegistry())
        state.batcher = MicroBatcher(state.queue, window_seconds=0.2, max_batch=4)
        state.requests = [_BatchReq(i) for i in range(4)]
        state.batch = []
        return state

    def worker(self, state, index: int) -> None:
        if index == 0:
            for request in state.requests:
                state.queue.put(request, "default")
                schedule_point("batcher.enqueued")
            return
        leader = state.queue.take(timeout=0.05)
        if leader is None:
            return
        state.batch = state.batcher.collect(leader)

    def check(self, state) -> None:
        drained = state.queue.drain_matching(lambda _request: True, 16)
        seen = [r.rid for r in state.batch] + [r.rid for r in drained]
        assert sorted(seen) == [r.rid for r in state.requests], (
            f"requests lost or duplicated across batch/queue: {sorted(seen)}"
        )
        assert len(state.batch) <= state.batcher.max_batch


# --------------------------------------------------------------------------
# the CI matrix
# --------------------------------------------------------------------------


class ScenarioSpec:
    """One row of the exploration matrix.

    ``strategy`` is ``("exhaustive", max_decisions, max_schedules)`` or
    ``("pct", num_seeds)`` / ``("random", num_seeds)``; ``expect_failure``
    flips the CI assertion — broken-by-construction scenarios must be
    *found* within budget, fixed ones must stay clean.
    """

    def __init__(self, factory, strategy: tuple, expect_failure: bool):
        self.factory = factory
        self.strategy = strategy
        self.expect_failure = expect_failure
        self.name = factory().name


MATRIX: list[ScenarioSpec] = [
    ScenarioSpec(lambda: LostUpdateScenario(guarded=False), ("exhaustive", 8, 64), True),
    ScenarioSpec(lambda: LostUpdateScenario(guarded=True), ("exhaustive", 8, 64), False),
    ScenarioSpec(lambda: CommitVsCachedSearch(validate=False), ("pct", 256), True),
    ScenarioSpec(lambda: CommitVsCachedSearch(validate=True), ("pct", 64), False),
    ScenarioSpec(
        lambda: SessionTokenVsCommitPublish(validate=False), ("pct", 256), True
    ),
    ScenarioSpec(
        lambda: SessionTokenVsCommitPublish(validate=True), ("pct", 64), False
    ),
    ScenarioSpec(lambda: VacuumVsSearch(), ("pct", 12), False),
    ScenarioSpec(lambda: TierDemoteVsSearch(validate=False), ("pct", 256), True),
    ScenarioSpec(lambda: TierDemoteVsSearch(validate=True), ("pct", 64), False),
    ScenarioSpec(lambda: RebalanceVsSearch(validate=False), ("pct", 256), True),
    ScenarioSpec(lambda: RebalanceVsSearch(validate=True), ("pct", 64), False),
    ScenarioSpec(lambda: HnswInsertVsSave(), ("pct", 12), False),
    ScenarioSpec(lambda: BatcherVsWindowClose(), ("random", 8), False),
]


def scenario_names() -> list[str]:
    return [spec.name for spec in MATRIX]


def make_scenario(name: str) -> Scenario:
    for spec in MATRIX:
        if spec.name == name:
            return spec.factory()
    raise KeyError(f"unknown scenario {name!r} (known: {', '.join(scenario_names())})")
