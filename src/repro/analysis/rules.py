"""Project-specific concurrency-invariant lint rules.

Each rule guards one invariant the paper's correctness story depends on
(PAPER.md Sec. 4.3 is the anchor): atomic mixed graph/vector commits under a
shared TID, snapshot-pinned reads, and the two-stage vacuum swapping index
snapshots under live queries.  The rules are AST-based and pluggable: a rule
subclasses :class:`Rule`, registers with :func:`register`, and either emits
findings per module (``visit_module``) or accumulates cross-module state and
emits in ``finalize`` (R002 builds a whole-project lock-order graph).

Rule catalog
------------
- **R001** shared mutable attribute mutated outside the owning class's locks
- **R002** static lock-order inversion (cycle in the acquisition-order graph)
- **R003** query-layer code reaching into private MVCC state, bypassing
  Snapshot TID visibility
- **R004** wall-clock reads inside commit/vacuum decision paths
- **R005** float ``==``/``!=`` on distances or scores
- **R006** bare ``except:`` / silent ``except Exception: pass``
- **R007** mutable default arguments
- **R008** watermark read before snapshot pin without ``watermark_tid``
  validation (the commit-publication race class)
- **R009** lock ``.acquire()`` without a ``try``/``finally`` release
- **R010** thread created without ``daemon=`` and never joined
- **R011** raising bare ``Exception``/``RuntimeError`` instead of a
  :class:`~repro.errors.ReproError` subclass
- **R012** telemetry instrument name missing from the catalog
  (``repro.telemetry.instruments.INSTRUMENTS``)
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from .findings import Finding
from .lockgraph import LockOrderGraph

__all__ = [
    "ModuleInfo",
    "Rule",
    "REGISTRY",
    "register",
    "make_rules",
    "run_rules",
    "lint_source",
]


@dataclass
class ModuleInfo:
    """One parsed source file handed to every rule."""

    path: str  # display path (repo-relative when possible)
    source: str
    tree: ast.Module

    @property
    def posix_path(self) -> str:
        return self.path.replace("\\", "/")


class Rule:
    """Base class for lint rules.

    ``visit_module`` runs once per file and returns findings local to it;
    ``finalize`` runs after every file has been visited and returns findings
    that need whole-project state.  Stateful rules must be instantiated fresh
    per lint run (:func:`make_rules` does that).
    """

    rule_id: str = ""
    title: str = ""
    #: Paper section whose invariant this rule protects (see DESIGN.md).
    paper_ref: str = ""

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        return []

    def finalize(self) -> list[Finding]:
        return []


REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (plugin hook)."""
    if not cls.rule_id:
        raise ValueError("rule must define rule_id")
    if cls.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    REGISTRY[cls.rule_id] = cls
    return cls


def make_rules(rule_ids=None) -> list[Rule]:
    """Fresh rule instances, optionally restricted to ``rule_ids``."""
    selected = sorted(REGISTRY) if rule_ids is None else list(rule_ids)
    return [REGISTRY[rule_id]() for rule_id in selected]


def run_rules(modules, rules) -> list[Finding]:
    """Run ``rules`` over ``modules``; returns unsorted raw findings."""
    findings: list[Finding] = []
    for module in modules:
        for rule in rules:
            findings.extend(rule.visit_module(module))
    for rule in rules:
        findings.extend(rule.finalize())
    return findings


def lint_source(source: str, path: str = "<snippet>", rule_ids=None) -> list[Finding]:
    """Lint one source string (test/fixture helper); noqa is NOT applied."""
    module = ModuleInfo(path=path, source=source, tree=ast.parse(source))
    return sorted(
        run_rules([module], make_rules(rule_ids)), key=lambda f: (f.path, f.line, f.rule_id)
    )


# --------------------------------------------------------------------------
# shared AST helpers
# --------------------------------------------------------------------------

def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _self_attr(node: ast.AST) -> str | None:
    """Attribute name when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


_LOCK_CTOR_SUFFIXES = ("lock", "rlock", "condition", "semaphore")

_MUTABLE_CTOR_NAMES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "ordereddict",
    "counter",
}

_NDARRAY_CTOR_NAMES = {
    "zeros",
    "ones",
    "empty",
    "full",
    "array",
    "arange",
    "asarray",
    "zeros_like",
    "ones_like",
    "full_like",
    "eye",
}

_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
    "fill",
}


def _is_lock_ctor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    name = _dotted_name(value.func)
    if name is None:
        return False
    return name.split(".")[-1].lower().endswith(_LOCK_CTOR_SUFFIXES)


def _is_mutable_ctor(value: ast.AST) -> bool:
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(value, ast.Call):
        name = _dotted_name(value.func)
        if name is None:
            return False
        leaf = name.split(".")[-1].lower()
        return leaf in _MUTABLE_CTOR_NAMES or leaf in _NDARRAY_CTOR_NAMES
    return False


def _class_locks_and_mutables(
    cls: ast.ClassDef,
) -> tuple[dict[str, int], dict[str, int]]:
    """Lock attrs and shared-mutable attrs assigned in ``__init__``."""
    locks: dict[str, int] = {}
    mutables: dict[str, int] = {}
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            for node in ast.walk(item):
                targets: list[ast.AST] = []
                value: ast.AST | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if _is_lock_ctor(value):
                        locks[attr] = node.lineno
                    elif _is_mutable_ctor(value):
                        mutables[attr] = node.lineno
    return locks, mutables


def _methods(cls: ast.ClassDef):
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item


def _method_enters_lock(method: ast.AST, lock_attrs) -> bool:
    """True when the method enters ``with self.<lock>`` or calls acquire."""
    for node in ast.walk(method):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr in lock_attrs:
                    return True
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "acquire"
                and _self_attr(func.value) in lock_attrs
            ):
                return True
    return False


def _mutation_target(node: ast.AST, tracked) -> tuple[str, int] | None:
    """``(attr, line)`` when ``node`` mutates a tracked ``self.<attr>``."""

    def base_attr(target: ast.AST) -> str | None:
        attr = _self_attr(target)
        if attr is not None:
            return attr
        if isinstance(target, ast.Subscript):
            return _self_attr(target.value)
        return None

    if isinstance(node, ast.Assign):
        for target in node.targets:
            attr = base_attr(target)
            if attr in tracked:
                return attr, node.lineno
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        attr = base_attr(node.target)
        if attr in tracked:
            return attr, node.lineno
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = base_attr(target)
            if attr in tracked:
                return attr, node.lineno
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            owner = func.value
            attr = _self_attr(owner)
            if attr is None and isinstance(owner, ast.Subscript):
                # e.g. ``self._pk_index[vtype].pop(pk)`` mutates shared state
                # one subscript deep.
                attr = _self_attr(owner.value)
            if attr in tracked:
                return attr, node.lineno
    return None


# --------------------------------------------------------------------------
# R001
# --------------------------------------------------------------------------

_R001_EXEMPT_METHODS = {
    "__init__",
    "__getstate__",
    "__setstate__",
    "__reduce__",
    "__del__",
    "__repr__",
}


@register
class SharedMutableWithoutLock(Rule):
    """A lock-owning class mutates shared mutable state outside any lock."""

    rule_id = "R001"
    title = "shared mutable attribute mutated outside the owning class's locks"
    paper_ref = "Sec. 4.3 (atomic commits; vacuum/reader coexistence)"

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            locks, mutables = _class_locks_and_mutables(node)
            if not locks or not mutables:
                continue
            for method in _methods(node):
                if method.name in _R001_EXEMPT_METHODS:
                    continue
                if _method_enters_lock(method, locks):
                    continue
                reported: set[str] = set()
                for sub in ast.walk(method):
                    hit = _mutation_target(sub, mutables)
                    if hit is None or hit[0] in reported:
                        continue
                    attr, line = hit
                    reported.add(attr)
                    lock_names = ", ".join(sorted(locks))
                    findings.append(
                        Finding(
                            module.path,
                            line,
                            self.rule_id,
                            f"'{node.name}.{method.name}' mutates shared "
                            f"'self.{attr}' without entering any of the "
                            f"class's locks ({lock_names})",
                        )
                    )
        return findings


# --------------------------------------------------------------------------
# R002
# --------------------------------------------------------------------------


@register
class LockOrderInversionStatic(Rule):
    """Static lock-order graph over ``with self.<lock>`` nesting.

    Edges come from (a) syntactically nested ``with`` blocks and (b) one
    level of intra-class propagation: holding lock L while calling a method
    of the same class that acquires lock M adds ``L -> M``.  A cycle in the
    resulting whole-project graph is an ordering inversion.
    """

    rule_id = "R002"
    title = "lock acquisition order inverts an order established elsewhere"
    paper_ref = "Sec. 4.3 (commit vs. two-stage vacuum interleaving)"

    def __init__(self):
        self._graph = LockOrderGraph()
        # (class, holder_lock, callee_method, site) pending resolution
        self._pending: list[tuple[str, str, str, str]] = []
        # class -> method -> set of lock attrs it acquires
        self._acquires: dict[str, dict[str, set[str]]] = {}
        self._reported: set[frozenset[str]] = set()

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            locks, _ = _class_locks_and_mutables(cls)
            if not locks:
                continue
            per_method = self._acquires.setdefault(cls.name, {})
            for method in _methods(cls):
                acquired: set[str] = set()
                for stmt in method.body:
                    self._visit(module, cls.name, stmt, [], locks, acquired, findings)
                per_method[method.name] = acquired
        return findings

    def _visit(self, module, cls_name, node, held, locks, acquired, findings):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            entered: list[str] = []
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr in locks:
                    acquired.add(attr)
                    new = f"{cls_name}.{attr}"
                    site = f"{module.path}:{node.lineno}"
                    for holder in held + entered:
                        self._add_edge(
                            holder, new, site, findings, module.path, node.lineno
                        )
                    entered.append(new)
                else:
                    self._visit(
                        module, cls_name, item.context_expr, held, locks, acquired, findings
                    )
            for stmt in node.body:
                self._visit(
                    module, cls_name, stmt, held + entered, locks, acquired, findings
                )
            return
        if isinstance(node, ast.Call) and held:
            callee = _self_attr(node.func)
            if callee is not None:
                site = f"{module.path}:{node.lineno}"
                for holder in held:
                    self._pending.append((cls_name, holder, callee, site))
        for child in ast.iter_child_nodes(node):
            self._visit(module, cls_name, child, held, locks, acquired, findings)

    def _add_edge(self, holder, new, site, findings, path, lineno):
        inversion = self._graph.add_edge(holder, new, site)
        key = frozenset((holder, new))
        if inversion and key not in self._reported:
            self._reported.add(key)
            chain = " -> ".join(inversion + [new])
            findings.append(
                Finding(
                    path,
                    lineno,
                    self.rule_id,
                    f"acquiring {new} while holding {holder} inverts the "
                    f"order established elsewhere ({chain}; first seen at "
                    f"{self._graph.edge_info(inversion[0], inversion[1])})",
                )
            )
        return inversion

    def finalize(self) -> list[Finding]:
        findings: list[Finding] = []
        for cls_name, holder, callee, site in self._pending:
            for lock_attr in self._acquires.get(cls_name, {}).get(callee, ()):
                new = f"{cls_name}.{lock_attr}"
                if new == holder:
                    continue
                path, _, line = site.rpartition(":")
                self._add_edge(holder, new, site, findings, path, int(line))
        return findings


# --------------------------------------------------------------------------
# R003
# --------------------------------------------------------------------------

#: Private MVCC internals that query-layer code must reach through a
#: Snapshot (TID-pinned) instead of touching directly.
_R003_PRIVATE_STATE = {
    "_segments",
    "_current",
    "_retired",
    "_pk_index",
    "_next_vid",
    "_active_snapshots",
    "_records",
    "_tids",
    "delta_store",
    "delta_files",
    "retired_delta_files",
}


@register
class SnapshotVisibilityBypass(Rule):
    """Query-layer code reading segment/delta state without a Snapshot."""

    rule_id = "R003"
    title = "direct segment/delta state access bypassing Snapshot TID visibility"
    paper_ref = "Sec. 4.3 (snapshot-pinned reads / MVCC visibility)"

    def _applies(self, module: ModuleInfo) -> bool:
        path = module.posix_path
        return (
            "/gsql/" in path
            or path.startswith("gsql/")
            or path.endswith("core/search.py")
        )

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        if not self._applies(module):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in _R003_PRIVATE_STATE:
                continue
            # Touching your *own* private state is fine; reaching into
            # another object's MVCC internals is the bypass.
            if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
                continue
            findings.append(
                Finding(
                    module.path,
                    node.lineno,
                    self.rule_id,
                    f"direct access to '.{node.attr}' bypasses Snapshot TID "
                    "visibility; read through a Snapshot / store API instead",
                )
            )
        return findings


# --------------------------------------------------------------------------
# R004
# --------------------------------------------------------------------------

_R004_BAD_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "date.today",
}

_R004_FUNC_PAT = re.compile(r"commit|vacuum|merge|gc|recover|\bcut\b", re.IGNORECASE)

_R004_MODULES = ("vacuum.py", "storage.py", "txn.py", "delta.py", "wal.py")


@register
class WallClockInCommitPath(Rule):
    """Wall-clock reads inside commit or vacuum decision paths.

    Visibility and reclamation decisions must be driven by TIDs (or a
    monotonic clock for durations); wall-clock time goes backwards under
    NTP and is not comparable across machines.
    """

    rule_id = "R004"
    title = "wall-clock read inside a commit/vacuum decision path"
    paper_ref = "Sec. 4.3 (TID-ordered commits and vacuum reclamation)"

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        module_critical = module.posix_path.endswith(_R004_MODULES)
        findings: list[Finding] = []
        self._visit(module, module.tree, [], module_critical, findings)
        return findings

    def _visit(self, module, node, func_stack, module_critical, findings):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit(
                    module, child, func_stack + [child.name], module_critical, findings
                )
                continue
            if isinstance(child, ast.Call):
                name = _dotted_name(child.func)
                if name in _R004_BAD_CALLS and (
                    module_critical
                    or any(_R004_FUNC_PAT.search(f) for f in func_stack)
                ):
                    where = func_stack[-1] if func_stack else "<module>"
                    findings.append(
                        Finding(
                            module.path,
                            child.lineno,
                            self.rule_id,
                            f"'{name}()' in '{where}' is wall-clock; commit/"
                            "vacuum decisions must use TIDs or a monotonic "
                            "clock (time.monotonic / time.perf_counter)",
                        )
                    )
            self._visit(module, child, func_stack, module_critical, findings)


# --------------------------------------------------------------------------
# R005
# --------------------------------------------------------------------------

_R005_NAME_PAT = re.compile(r"dist|score|similarity|cosine", re.IGNORECASE)


def _distance_like(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id if _R005_NAME_PAT.search(node.id) else None
    if isinstance(node, ast.Attribute):
        return node.attr if _R005_NAME_PAT.search(node.attr) else None
    if isinstance(node, ast.Subscript):
        return _distance_like(node.value)
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        if name is not None:
            leaf = name.split(".")[-1]
            return leaf if _R005_NAME_PAT.search(leaf) else None
    return None


@register
class FloatEqualityOnDistance(Rule):
    """``==``/``!=`` on distances/scores: floating-point results differ
    across brute-force vs. index paths and across SIMD reductions."""

    rule_id = "R005"
    title = "float equality comparison on a distance/score value"
    paper_ref = "Sec. 4.4/5.1 (distance semantics across index and overlay paths)"

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            # `x is None` style never parses as Eq; `dist == None` would,
            # but comparing to None is identity, not float equality.
            if any(
                isinstance(o, ast.Constant) and o.value is None for o in operands
            ):
                continue
            for operand in operands:
                name = _distance_like(operand)
                if name is not None:
                    findings.append(
                        Finding(
                            module.path,
                            node.lineno,
                            self.rule_id,
                            f"float equality on '{name}'; use a tolerance "
                            "(math.isclose / np.isclose) — exact distance "
                            "bits differ between index and brute-force paths",
                        )
                    )
                    break
        return findings


# --------------------------------------------------------------------------
# R006
# --------------------------------------------------------------------------


@register
class SilentExceptionSwallow(Rule):
    """Bare ``except:`` or ``except Exception:`` whose body only passes."""

    rule_id = "R006"
    title = "bare except / silently swallowed exception"
    paper_ref = "general hygiene (background vacuum threads must not die silently)"

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    Finding(
                        module.path,
                        node.lineno,
                        self.rule_id,
                        "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                        "name the exception type",
                    )
                )
                continue
            type_name = _dotted_name(node.type)
            if type_name in ("Exception", "BaseException") and all(
                isinstance(stmt, ast.Pass)
                or isinstance(stmt, ast.Continue)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            ):
                findings.append(
                    Finding(
                        module.path,
                        node.lineno,
                        self.rule_id,
                        f"'except {type_name}: pass' swallows errors silently "
                        "(a dead vacuum thread would go unnoticed); handle or "
                        "log the failure",
                    )
                )
        return findings


# --------------------------------------------------------------------------
# R007
# --------------------------------------------------------------------------


@register
class MutableDefaultArgument(Rule):
    """Mutable default arguments are shared across calls."""

    rule_id = "R007"
    title = "mutable default argument"
    paper_ref = "general hygiene"

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_ctor(default):
                    findings.append(
                        Finding(
                            module.path,
                            default.lineno,
                            self.rule_id,
                            f"mutable default argument in '{node.name}' is "
                            "shared across calls; default to None and create "
                            "inside the body",
                        )
                    )
        return findings


# --------------------------------------------------------------------------
# R008
# --------------------------------------------------------------------------


@register
class WatermarkBeforeSnapshotUnvalidated(Rule):
    """Watermark read before snapshot pin without watermark_tid validation.

    Reading a store watermark and *then* pinning a snapshot is the
    cache-key idiom from ``repro.serve`` — and it races with commit
    publication: the embedding hooks bump watermark components before
    ``last_tid`` is published, so the pinned snapshot can be older than
    the watermark claims.  Any function that does the sequence must
    compare :meth:`EmbeddingStore.watermark_tid` against the snapshot's
    TID before trusting (in particular caching) the result.
    """

    rule_id = "R008"
    title = "watermark read before snapshot pin without watermark_tid validation"
    paper_ref = "Sec. 4.3 (snapshot-pinned reads vs. commit publication)"

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            watermark_line: int | None = None
            snapshot_line: int | None = None
            validated = False
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                    if sub.func.attr == "watermark" and (
                        watermark_line is None or sub.lineno < watermark_line
                    ):
                        watermark_line = sub.lineno
                    elif sub.func.attr == "snapshot" and (
                        snapshot_line is None or sub.lineno > snapshot_line
                    ):
                        snapshot_line = sub.lineno
                if isinstance(sub, ast.Attribute) and sub.attr == "watermark_tid":
                    validated = True
                elif isinstance(sub, ast.Name) and sub.id == "watermark_tid":
                    validated = True
            if (
                watermark_line is not None
                and snapshot_line is not None
                and watermark_line < snapshot_line
                and not validated
            ):
                findings.append(
                    Finding(
                        module.path,
                        snapshot_line,
                        self.rule_id,
                        f"'{node.name}' reads a watermark (line "
                        f"{watermark_line}) then pins a snapshot without "
                        "validating watermark_tid against the snapshot TID; "
                        "a mid-publication commit makes the snapshot older "
                        "than the watermark claims (serve cache-poisoning "
                        "race)",
                    )
                )
        return findings


# --------------------------------------------------------------------------
# R009
# --------------------------------------------------------------------------

_R009_EXEMPT_FUNCS = {"acquire", "release", "__enter__", "__exit__", "locked"}

_R009_RECEIVER_PAT = re.compile(r"lock|mutex", re.IGNORECASE)


@register
class AcquireWithoutTryFinally(Rule):
    """Blocking ``lock.acquire()`` with no ``try``/``finally`` release.

    An exception between acquire and release leaks the lock and deadlocks
    every later acquirer (including the vacuum).  ``with lock:`` is the
    preferred form; explicit acquire must be paired with a ``finally:``
    release on the same receiver.  Non-blocking ``acquire(False)`` probes
    are exempt — their failure path holds nothing.
    """

    rule_id = "R009"
    title = "lock.acquire() without try/finally release"
    paper_ref = "general hygiene (lock leaks stall commits and the vacuum)"

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in _R009_EXEMPT_FUNCS:
                continue
            released: set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Try):
                    for stmt in sub.finalbody:
                        for call in ast.walk(stmt):
                            if (
                                isinstance(call, ast.Call)
                                and isinstance(call.func, ast.Attribute)
                                and call.func.attr == "release"
                            ):
                                name = _dotted_name(call.func.value)
                                if name is not None:
                                    released.add(name)
            for sub in ast.walk(node):
                if not (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "acquire"
                ):
                    continue
                if sub.args or sub.keywords:  # non-blocking / timeout probe
                    continue
                receiver = _dotted_name(sub.func.value)
                if receiver is None:
                    continue
                leaf = receiver.split(".")[-1]
                if not _R009_RECEIVER_PAT.search(leaf):
                    continue
                if receiver in released:
                    continue
                findings.append(
                    Finding(
                        module.path,
                        sub.lineno,
                        self.rule_id,
                        f"'{receiver}.acquire()' in '{node.name}' has no "
                        "try/finally release; an exception before release "
                        "leaks the lock — use 'with' or pair with "
                        f"'finally: {receiver}.release()'",
                    )
                )
        return findings


# --------------------------------------------------------------------------
# R010
# --------------------------------------------------------------------------


@register
class ThreadWithoutDaemonOrJoin(Rule):
    """``threading.Thread`` created without ``daemon=`` and never joined.

    A non-daemon thread that is never joined keeps the process alive after
    main exits (hangs test runs and the CLI); either mark it ``daemon=``
    explicitly or join it in the enclosing scope.
    """

    rule_id = "R010"
    title = "Thread without daemon= and without a tracked join"
    paper_ref = "general hygiene (background vacuum/serve thread lifecycle)"

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            joins = any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "join"
                for sub in ast.walk(node)
            )
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                name = _dotted_name(sub.func)
                if name is None or name.split(".")[-1] != "Thread":
                    continue
                if any(kw.arg == "daemon" for kw in sub.keywords):
                    continue
                if joins:
                    continue
                findings.append(
                    Finding(
                        module.path,
                        sub.lineno,
                        self.rule_id,
                        f"Thread created in '{node.name}' without daemon= "
                        "and the function never joins; an unjoined "
                        "non-daemon thread keeps the process alive after "
                        "main exits",
                    )
                )
        return findings


# --------------------------------------------------------------------------
# R011
# --------------------------------------------------------------------------

_R011_GENERIC = {"Exception", "RuntimeError"}


@register
class GenericExceptionRaised(Rule):
    """``raise Exception``/``RuntimeError`` in repro code.

    Callers (the GSQL layer, the server's typed-failure path, tests)
    dispatch on :class:`~repro.errors.ReproError` subclasses; a generic
    exception escapes that taxonomy and turns a typed failure into a 500.
    """

    rule_id = "R011"
    title = "generic Exception/RuntimeError raised instead of a ReproError"
    paper_ref = "general hygiene (typed failures; serve error taxonomy)"

    def _applies(self, module: ModuleInfo) -> bool:
        path = module.posix_path
        return "repro/" in path or path.startswith("repro")

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        if not self._applies(module):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call):
                name = _dotted_name(exc.func)
            else:
                name = _dotted_name(exc)
            if name in _R011_GENERIC:
                findings.append(
                    Finding(
                        module.path,
                        node.lineno,
                        self.rule_id,
                        f"raise {name} in repro code; raise a ReproError "
                        "subclass from repro.errors so callers can dispatch "
                        "on the failure type",
                    )
                )
        return findings


# --------------------------------------------------------------------------
# R012
# --------------------------------------------------------------------------

_R012_METHODS = {"inc", "observe", "set_gauge", "counter", "gauge", "histogram"}


@register
class UnknownInstrumentName(Rule):
    """Telemetry instrument name absent from the canonical catalog.

    The catalog (``repro.telemetry.instruments.INSTRUMENTS``) is the one
    source of truth for dashboards and bucket presets; an uncatalogued
    name silently gets default latency buckets and never shows up in the
    stats CLI's descriptions.
    """

    rule_id = "R012"
    title = "telemetry instrument name missing from the INSTRUMENTS catalog"
    paper_ref = "general hygiene (observability catalog drift)"

    def __init__(self):
        try:
            from ..telemetry.instruments import INSTRUMENTS

            self._catalog = frozenset(INSTRUMENTS)
        except Exception:  # repro: noqa[R006] -- catalog optional when linting foreign trees
            self._catalog = None

    def visit_module(self, module: ModuleInfo) -> list[Finding]:
        if self._catalog is None or module.posix_path.endswith("instruments.py"):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _R012_METHODS
            ):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            name = first.value
            if "." not in name or name in self._catalog:
                continue
            findings.append(
                Finding(
                    module.path,
                    node.lineno,
                    self.rule_id,
                    f"instrument '{name}' is not in the INSTRUMENTS catalog "
                    "(repro/telemetry/instruments.py); add it there so "
                    "bucket presets and repro-stats descriptions cover it",
                )
            )
        return findings
