"""A directed lock-order graph shared by the static R002 rule and the
runtime sanitizer.

Nodes are lock *names* (static analysis uses ``Class.attr``; the sanitizer
uses creation sites such as ``core/delta.py:108(self._lock)``), and an edge
``a -> b`` records "``b`` was acquired while ``a`` was held".  An edge whose
reverse path already exists closes a cycle — a lock-order inversion, the
classic precondition for deadlock between the commit, vacuum, and query
paths.

The graph itself is not synchronized; callers that share one across threads
(the sanitizer) must serialize access.
"""

from __future__ import annotations

__all__ = ["LockOrderGraph"]


class LockOrderGraph:
    """Directed graph of observed/declared lock acquisition orderings."""

    def __init__(self):
        # a -> {b -> info recorded when the edge was first seen}
        self._edges: dict[str, dict[str, object]] = {}

    def __len__(self) -> int:
        return sum(len(out) for out in self._edges.values())

    def nodes(self) -> set[str]:
        out = set(self._edges)
        for targets in self._edges.values():
            out.update(targets)
        return out

    def edges(self):
        """Yield ``(a, b, info)`` for every recorded ordering."""
        for a, targets in self._edges.items():
            for b, info in targets.items():
                yield a, b, info

    def has_edge(self, a: str, b: str) -> bool:
        return b in self._edges.get(a, ())

    def edge_info(self, a: str, b: str):
        return self._edges.get(a, {}).get(b)

    def path(self, src: str, dst: str) -> list[str] | None:
        """A directed path ``src -> ... -> dst``, or None (iterative DFS)."""
        if src == dst:
            return [src]
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, trail = stack.pop()
            for nxt in self._edges.get(node, ()):
                if nxt == dst:
                    return trail + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, trail + [nxt]))
        return None

    def add_edge(self, a: str, b: str, info: object = None) -> list[str] | None:
        """Record ``a held while acquiring b``.

        Returns the pre-existing reverse path ``b -> ... -> a`` when adding
        this edge closes a cycle (an inversion), else None.  Self-edges are
        ignored: two locks sharing one creation site (e.g. the per-instance
        delta-store lock) have no defined order between instances.
        """
        if a == b:
            return None
        inversion = self.path(b, a)
        targets = self._edges.setdefault(a, {})
        if b not in targets:
            targets[b] = info
        return inversion

    def cycles(self) -> list[list[str]]:
        """All distinct cycles found by checking each edge's reverse path.

        Each cycle is reported once, as ``[a, b, ..., a]``, deduplicated by
        its set of participating nodes.
        """
        found: list[list[str]] = []
        seen_keys: set[frozenset[str]] = set()
        for a, b, _ in list(self.edges()):
            back = self.path(b, a)
            if back is None:
                continue
            cycle = [a] + back
            key = frozenset(cycle)
            if key not in seen_keys:
                seen_keys.add(key)
                found.append(cycle)
        return found
