"""FLAT (brute-force) index.

Serves three roles from the paper:

1. The fallback when a filter leaves too few valid points — scanning the
   valid vectors directly beats forcing HNSW to fight its way past an
   almost-all-invalid neighbourhood (Sec. 5.1).
2. The overlay search over unmerged vector deltas: queries combine index
   snapshot results with brute force over delta files (Sec. 4.3).
3. A recall oracle for tests and ground-truth generation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import VectorSearchError
from ..types import Metric
from .interface import IndexStats, SearchResult, VectorIndex
from .kernels import DistanceKernel

__all__ = ["BruteForceIndex"]


class BruteForceIndex(VectorIndex):
    """Exact nearest-neighbour search over a dense id->vector table."""

    def __init__(self, dim: int, metric: Metric = Metric.L2):
        if dim <= 0:
            raise VectorSearchError("dim must be positive")
        self.dim = dim
        self.metric = metric
        self._capacity = 16
        self._vectors = np.zeros((self._capacity, dim), dtype=np.float32)
        self._ids = np.empty(0, dtype=np.int64)
        self._id_to_row: dict[int, int] = {}
        self._stats = IndexStats()
        self._kernel = DistanceKernel(metric, self._vectors, precompute=False)

    # ------------------------------------------------------------- storage
    def _grow(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        new_capacity = max(needed, self._capacity * 2)
        grown = np.zeros((new_capacity, self.dim), dtype=np.float32)
        grown[: len(self._ids)] = self._vectors[: len(self._ids)]
        self._vectors = grown
        self._capacity = new_capacity
        self._kernel.attach(self._vectors, copy_rows=len(self._ids))

    def update_items(self, ids: Sequence[int], vectors: np.ndarray, num_threads: int = 1) -> None:
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.shape[1] != self.dim:
            raise VectorSearchError(
                f"expected dimension {self.dim}, got {vectors.shape[1]}"
            )
        if len(ids) != vectors.shape[0]:
            raise VectorSearchError("ids and vectors length mismatch")
        for ext_id, vector in zip(ids, vectors):
            ext_id = int(ext_id)
            row = self._id_to_row.get(ext_id)
            if row is None:
                row = len(self._ids)
                self._grow(row + 1)
                self._ids = np.append(self._ids, np.int64(ext_id))
                self._id_to_row[ext_id] = row
                self._stats.num_inserts += 1
            else:
                self._stats.num_updates += 1
            self._vectors[row] = vector
            self._kernel.set_row(row, self._vectors[row])
        self._stats.num_vectors = len(self._id_to_row)

    def delete_items(self, ids: Sequence[int]) -> None:
        """Swap-remove each id to keep the table dense."""
        for ext_id in ids:
            ext_id = int(ext_id)
            row = self._id_to_row.pop(ext_id, None)
            if row is None:
                continue
            last = len(self._ids) - 1
            if row != last:
                moved_id = int(self._ids[last])
                self._ids[row] = moved_id
                self._vectors[row] = self._vectors[last]
                self._kernel.set_row(row, self._vectors[row])
                self._id_to_row[moved_id] = row
            self._ids = self._ids[:last]
            self._stats.num_deleted += 1
        self._stats.num_vectors = len(self._id_to_row)

    # --------------------------------------------------------------- reads
    def get_embedding(self, external_id: int) -> np.ndarray:
        try:
            row = self._id_to_row[int(external_id)]
        except KeyError:
            raise VectorSearchError(f"id {external_id} not in index") from None
        return self._vectors[row].copy()

    def __contains__(self, external_id: int) -> bool:
        return int(external_id) in self._id_to_row

    def __len__(self) -> int:
        return len(self._id_to_row)

    # -------------------------------------------------------------- search
    def _distances(self, query: np.ndarray) -> np.ndarray:
        n = len(self._ids)
        if n == 0:
            return np.empty(0, dtype=np.float32)
        self._stats.num_distance_computations += n
        ctx = self._kernel.query(query)
        return self._kernel.distances_prefix(ctx, n)

    def topk_search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        if k <= 0:
            raise VectorSearchError("k must be positive")
        self._stats.num_searches += 1
        dists = self._distances(np.asarray(query, dtype=np.float32))
        if dists.size == 0:
            return SearchResult.empty()
        ids = self._ids
        if filter_fn is not None:
            keep = np.fromiter(
                (filter_fn(int(i)) for i in ids), dtype=bool, count=len(ids)
            )
            ids = ids[keep]
            dists = dists[keep]
            if dists.size == 0:
                return SearchResult.empty()
        k = min(k, dists.size)
        part = np.argpartition(dists, k - 1)[:k]
        order = part[np.argsort(dists[part], kind="stable")]
        return SearchResult(ids[order], dists[order])

    def range_search(
        self,
        query: np.ndarray,
        threshold: float,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        self._stats.num_searches += 1
        dists = self._distances(np.asarray(query, dtype=np.float32))
        if dists.size == 0:
            return SearchResult.empty()
        within = dists < threshold
        ids = self._ids[within]
        dists = dists[within]
        if filter_fn is not None and ids.size:
            keep = np.fromiter(
                (filter_fn(int(i)) for i in ids), dtype=bool, count=len(ids)
            )
            ids = ids[keep]
            dists = dists[keep]
        order = np.argsort(dists, kind="stable")
        return SearchResult(ids[order], dists[order])

    @property
    def stats(self) -> IndexStats:
        return self._stats
