"""Reference (pre-kernel) HNSW search path, kept in-tree as a baseline.

This module preserves the distance math and traversal loop the index used
before :mod:`repro.index.kernels` existed — L2 via an explicit ``diff``
matrix and einsum, COSINE recomputing ``sqrt(q·q)`` on every hop, and a
per-neighbour Python heap loop with no vectorized admission mask.  It exists
for two reasons:

- ``benchmarks/test_bench_kernels.py`` measures the kernelized
  :meth:`~repro.index.hnsw.HNSWIndex.topk_search` against this baseline and
  enforces the ≥1.5× throughput budget (BENCH_kernels.json);
- the equivalence suite checks that the kernel's distances agree with this
  straightforward formulation within tolerance.

It searches a live :class:`~repro.index.hnsw.HNSWIndex` *read-only* — graph
structure, ids, and tombstones are taken from the index; only the distance
evaluation and the layer-search inner loop differ.  Recall is therefore
determined by the same graph in both paths, which is what makes the
benchmark an apples-to-apples kernel comparison.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from ..types import Metric
from .hnsw import HNSWIndex
from .interface import IndexStats, SearchResult

__all__ = ["ReferenceKernel", "reference_topk_search"]


class ReferenceKernel:
    """The pre-optimization distance math: no caches, no query context."""

    def __init__(self, metric: Metric, vectors: np.ndarray):
        self.metric = metric
        self._vectors = vectors
        # The old code cached row norms for COSINE (but still recomputed the
        # query norm every hop); reproduce that exactly.
        self._norms = np.sqrt(np.einsum("ij,ij->i", vectors, vectors))
        # The old _dist_to/_dist_one charged the index's cumulative stats on
        # every call — part of the per-hop cost being benchmarked, kept here
        # on a scratch stats object so the live index is untouched.
        self._stats = IndexStats()

    def dist_to(self, query: np.ndarray, rows) -> np.ndarray:
        vecs = self._vectors[rows]
        self._stats.num_distance_computations += vecs.shape[0]
        metric = self.metric
        if metric is Metric.L2:
            diff = vecs - query
            return np.einsum("ij,ij->i", diff, diff)
        if metric is Metric.IP:
            return 1.0 - vecs @ query
        qn = float(np.sqrt(query @ query))
        if qn == 0.0:
            return np.ones(vecs.shape[0], dtype=np.float32)
        denom = self._norms[rows] * qn
        denom = np.where(denom <= 0.0, 1.0, denom)
        return 1.0 - (vecs @ query) / denom

    def dist_one(self, query: np.ndarray, row: int) -> float:
        self._stats.num_distance_computations += 1
        vec = self._vectors[row]
        metric = self.metric
        if metric is Metric.L2:
            diff = vec - query
            return float(diff @ diff)
        if metric is Metric.IP:
            return float(1.0 - vec @ query)
        qn = float(np.sqrt(query @ query))
        denom = float(self._norms[row]) * qn
        if denom == 0.0:
            return 1.0
        return float(1.0 - (vec @ query) / denom)

    def pairwise(self, rows) -> np.ndarray:
        vecs = self._vectors[rows]
        metric = self.metric
        if metric is Metric.L2:
            sq = np.einsum("ij,ij->i", vecs, vecs)
            return np.maximum(sq[:, None] + sq[None, :] - 2.0 * (vecs @ vecs.T), 0.0)
        if metric is Metric.IP:
            return 1.0 - vecs @ vecs.T
        norms = self._norms[rows].copy()
        norms[norms == 0.0] = 1.0
        return 1.0 - (vecs @ vecs.T) / (norms[:, None] * norms[None, :])


def _greedy_descend(
    index: HNSWIndex, kernel: ReferenceKernel, query: np.ndarray,
    start_row: int, from_level: int, to_level: int,
) -> int:
    current = start_row
    current_dist = kernel.dist_one(query, current)
    for level in range(from_level, to_level, -1):
        improved = True
        while improved:
            improved = False
            neighbors = index._neighbors(current, level)
            if neighbors.size == 0:
                continue
            kernel._stats.num_hops += 1
            dists = kernel.dist_to(query, neighbors)
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = int(neighbors[best])
                current_dist = float(dists[best])
                improved = True
    return current


def _search_layer(
    index: HNSWIndex, kernel: ReferenceKernel, query: np.ndarray,
    entry_row: int, ef: int, level: int,
    collect_filter: Callable[[int], bool] | None,
    visited: np.ndarray, generation: int,
) -> list[tuple[float, int]]:
    """The old per-neighbour layer search: one Python admission per edge."""
    visited[entry_row] = generation
    entry_dist = kernel.dist_one(query, entry_row)
    candidates: list[tuple[float, int]] = [(entry_dist, entry_row)]
    results: list[tuple[float, int]] = []
    deleted = index._deleted

    if not deleted[entry_row] and (collect_filter is None or collect_filter(entry_row)):
        heapq.heappush(results, (-entry_dist, entry_row))

    while candidates:
        dist, row = heapq.heappop(candidates)
        if len(results) >= ef and dist > -results[0][0]:
            break
        neighbors = index._neighbors(row, level)
        if neighbors.size:
            fresh = neighbors[visited[neighbors] != generation]
        else:
            fresh = neighbors
        if fresh.size == 0:
            continue
        kernel._stats.num_hops += 1
        visited[fresh] = generation
        dists = kernel.dist_to(query, fresh)
        worst = -results[0][0] if results else np.inf
        full = len(results) >= ef
        for n_dist, n_row in zip(dists.tolist(), fresh.tolist()):
            if not full or n_dist < worst:
                heapq.heappush(candidates, (n_dist, n_row))
                if not deleted[n_row] and (
                    collect_filter is None or collect_filter(n_row)
                ):
                    heapq.heappush(results, (-n_dist, n_row))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = -results[0][0]
                    full = len(results) >= ef
    return sorted((-d, row) for d, row in results)


def reference_topk_search(
    index: HNSWIndex,
    query: np.ndarray,
    k: int,
    ef: int | None = None,
    filter_fn: Callable[[int], bool] | None = None,
    _scratch: dict | None = None,
) -> SearchResult:
    """Search ``index`` with the pre-kernel math and inner loop.

    Traverses the same graph as :meth:`HNSWIndex.topk_search` so recall is
    identical up to floating-point wobble; only the distance evaluation and
    admission loop are the old formulation.  ``_scratch`` (an empty dict the
    caller reuses across queries) holds the visited-mark array and the
    reference kernel so repeated benchmark queries pay the same per-search
    costs the old index did — not a per-call rebuild.
    """
    query = np.asarray(query, dtype=np.float32).reshape(-1)
    if index._entry_point is None:
        return SearchResult.empty()
    ef = max(ef or index.DEFAULT_EF, k)
    scratch = _scratch if _scratch is not None else {}
    kernel = scratch.get("kernel")
    if kernel is None or kernel._vectors is not index._vectors:
        kernel = ReferenceKernel(index.metric, index._vectors)
        scratch["kernel"] = kernel
        scratch["visited"] = np.zeros(index._capacity, dtype=np.int64)
        scratch["generation"] = 0
    visited = scratch["visited"]
    scratch["generation"] += 1
    generation = scratch["generation"]

    collect = None
    if filter_fn is not None:
        ids = index._ids

        def collect(row: int) -> bool:
            return filter_fn(int(ids[row]))

    entry = _greedy_descend(index, kernel, query, index._entry_point, index._max_level, 0)
    found = _search_layer(
        index, kernel, query, entry, ef, 0, collect, visited, generation
    )
    top = found[:k]
    if not top:
        return SearchResult.empty()
    dists, rows = zip(*top)
    return SearchResult(index._ids[list(rows)], np.asarray(dists, dtype=np.float32))
