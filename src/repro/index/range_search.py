"""Range search built from repeated top-k searches (paper Sec. 4.4).

HNSW has no native range-search operation, so TigerVector adapts the
DiskANN approach: run top-k searches with geometrically growing ``k`` until
the given threshold is smaller than the median of the returned distances —
at that point at least half of the last result set lies beyond the radius,
so the within-radius set has been covered.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import VectorSearchError
from .interface import SearchResult, VectorIndex

__all__ = ["range_search_via_topk"]


def range_search_via_topk(
    index: VectorIndex,
    query: np.ndarray,
    threshold: float,
    initial_k: int = 16,
    growth: int = 2,
    ef: int | None = None,
    filter_fn: Callable[[int], bool] | None = None,
    max_k: int | None = None,
) -> SearchResult:
    """All valid vectors with distance < ``threshold``, sorted ascending.

    ``initial_k`` and ``growth`` control the doubling schedule; ``max_k``
    caps the search (defaults to the index size).
    """
    if threshold <= 0 and index.metric.value == "L2":
        return SearchResult.empty()
    if initial_k <= 0 or growth < 2:
        raise VectorSearchError("initial_k must be positive and growth >= 2")
    size = len(index)
    if size == 0:
        return SearchResult.empty()
    cap = min(max_k or size, size)
    k = min(initial_k, cap)
    while True:
        # ef must keep up with k or the beam cannot return k results.
        search_ef = max(ef or 0, k)
        result = index.topk_search(query, k, ef=search_ef, filter_fn=filter_fn)
        if len(result) == 0:
            return SearchResult.empty()
        exhausted = len(result) < k or k >= cap
        median = float(np.median(result.distances))
        if threshold <= median or exhausted:
            within = result.distances < threshold
            return SearchResult(result.ids[within], result.distances[within])
        k = min(k * growth, cap)
