"""Product quantization: codebooks, ADC kernels, and the IVF_PQ index.

The kernel layer (:mod:`repro.index.kernels`) was built so new distance
representations drop in behind one contract.  This module adds the first
non-float representation: vectors are split into ``m`` subspaces, each
subspace is vector-quantized against a 256-entry codebook (one byte per
subspace), and distances are computed by **asymmetric distance computation
(ADC)** — a per-query ``(m, 256)`` lookup table built once per
:class:`~repro.index.kernels.QueryContext`, after which the distance to any
code is ``m`` table gathers and a sum, never touching float rows.

Distance semantics mirror the float kernels exactly:

- **L2** — ``LUT[j, c] = |q_j - C[j, c]|²``; the rank distance *is* the true
  squared distance to the reconstruction (``q_sq`` is folded into the table,
  so the context carries ``q_sq = 0`` and the inherited rank→true conversion
  degenerates to the clamp).
- **IP** — ``LUT[j, c] = -(q_j · C[j, c])``; true distance is ``1 + rank``.
- **COSINE** — rows are L2-normalized *before encoding* (mirroring the float
  kernel's prenormalized augmented rows) and the table is built from the
  normalized query, reducing cosine to IP on unit rows.

Because :class:`PQKernel` subclasses :class:`DistanceKernel` and preserves
the full contract — ``query``/``queries`` contexts, ``block`` +
``rank_from_block`` for fused lockstep traversal, ``distances_multi`` for
the serving micro-batcher, ``pairwise``/``cross`` for neighbour selection
and k-means — every consumer (brute-force scans, IVF probes, delta
overlays, fused multi-query batches) runs over codes without modification.

Scalar quantization is the degenerate case ``m == dim`` with affine
single-dimension codebooks (``lo[j] + scale[j]·c``), which is how
:class:`~repro.index.sq8.SQ8FlatIndex` shares this kernel instead of
decoding to a float scratch matrix.

:class:`IVFPQIndex` combines the coarse IVF quantizer with PQ codes in the
lists and an optional exact **rerank** phase (quantized candidate
generation with inflated k, then exact distances on raw rows), the
two-phase search the tiered storage layer exposes store-wide.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import VectorSearchError
from ..types import Metric, normalize
from .interface import IndexStats, SearchResult, VectorIndex
from .kernels import DistanceKernel, MultiQueryContext, QueryContext
from .ivf import kmeans

__all__ = [
    "IVFPQIndex",
    "PQCodebook",
    "PQCodes",
    "PQKernel",
    "PQQueryContext",
    "PQSearchConfig",
]

#: Codebook entries per subspace — one uint8 code.
CODEBOOK_SIZE = 256


def _prepare_rows(vectors: np.ndarray, metric: Metric) -> np.ndarray:
    """Rows as the kernel stores them: prenormalized for COSINE, else as-is."""
    vectors = np.asarray(vectors, dtype=np.float32)
    if metric is Metric.COSINE:
        return normalize(vectors)
    return vectors


class PQCodebook:
    """``m`` per-subspace codebooks of up to 256 centroids each.

    Subspaces are contiguous dimension ranges (``np.array_split`` of the
    axis, so ``dim % m != 0`` is allowed).  Centroid tables are always
    padded to 256 rows (repeating trained rows) so codes index without
    bounds checks; :meth:`encode` only ever emits trained codes.
    """

    __slots__ = ("dim", "m", "splits", "centroids", "_c_sq", "_affine", "_stacked")

    def __init__(self, dim: int, splits: list[tuple[int, int]],
                 centroids: list[np.ndarray], affine: tuple | None = None):
        self.dim = dim
        self.m = len(splits)
        self.splits = splits
        self.centroids = centroids  # m tables, each (256, sub_dim) float32
        #: per-centroid squared norms, (m, 256) — the constant L2 LUT term
        self._c_sq = np.stack(
            [np.einsum("ij,ij->i", c, c) for c in centroids]
        ).astype(np.float32)
        #: (lo, scale) when this is an affine (scalar-quantizer) codebook;
        #: enables the O(n·dim) encode/decode fast paths.
        self._affine = affine
        #: (m, 256, w) stack when all subspaces share width w — the LUT
        #: builder then runs one einsum instead of m Python-level matvecs
        #: (vital for the SQ8 case, where m == dim).
        widths = {stop - start for start, stop in splits}
        self._stacked = np.stack(centroids) if len(widths) == 1 else None

    # ------------------------------------------------------------- builders
    @classmethod
    def train(
        cls,
        vectors: np.ndarray,
        m: int,
        metric: Metric = Metric.L2,
        iterations: int = 8,
        seed: int = 17,
    ) -> "PQCodebook":
        """Seeded k-means codebook per subspace (COSINE rows prenormalized)."""
        vectors = _prepare_rows(vectors, metric)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise VectorSearchError("PQ training needs a non-empty 2-d matrix")
        dim = int(vectors.shape[1])
        if not 1 <= m <= dim:
            raise VectorSearchError(f"m must be in [1, dim]; got m={m}, dim={dim}")
        bounds = np.array_split(np.arange(dim), m)
        splits = [(int(b[0]), int(b[-1]) + 1) for b in bounds]
        centroids = []
        for j, (start, stop) in enumerate(splits):
            trained = kmeans(
                np.ascontiguousarray(vectors[:, start:stop]),
                CODEBOOK_SIZE,
                iterations=iterations,
                seed=seed + j,
            )
            centroids.append(_pad_table(trained))
        return cls(dim, splits, centroids)

    @classmethod
    def affine(cls, lo: np.ndarray, scale: np.ndarray) -> "PQCodebook":
        """Scalar-quantizer codebook: ``dim`` subspaces of width one with
        centroids ``lo[j] + scale[j]·c`` — SQ8 as degenerate PQ."""
        lo = np.asarray(lo, dtype=np.float32).reshape(-1)
        scale = np.asarray(scale, dtype=np.float32).reshape(-1)
        if lo.shape != scale.shape:
            raise VectorSearchError("lo and scale must have matching shapes")
        dim = lo.shape[0]
        levels = np.arange(CODEBOOK_SIZE, dtype=np.float32)
        centroids = [
            (lo[j] + scale[j] * levels).reshape(CODEBOOK_SIZE, 1) for j in range(dim)
        ]
        return cls(dim, [(j, j + 1) for j in range(dim)], centroids,
                   affine=(lo, scale))

    # ------------------------------------------------------------ transforms
    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest-centroid codes, ``(n, m)`` uint8.

        Callers own metric preparation (:func:`_prepare_rows`) so encode is
        metric-agnostic nearest-centroid assignment.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.shape[1] != self.dim:
            raise VectorSearchError(
                f"expected dimension {self.dim}, got {vectors.shape[1]}"
            )
        if self._affine is not None:
            lo, scale = self._affine
            quantized = np.clip((vectors - lo) / scale, 0, CODEBOOK_SIZE - 1)
            return np.round(quantized).astype(np.uint8)
        codes = np.empty((vectors.shape[0], self.m), dtype=np.uint8)
        for j, (start, stop) in enumerate(self.splits):
            sub = np.ascontiguousarray(vectors[:, start:stop])
            kernel = DistanceKernel.for_matrix(self.centroids[j], Metric.L2)
            codes[:, j] = np.argmin(kernel.cross(sub), axis=1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstructions, ``(n, dim)`` float32."""
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.ndim == 1:
            codes = codes.reshape(1, -1)
        if self._affine is not None:
            lo, scale = self._affine
            return codes.astype(np.float32) * scale + lo
        out = np.empty((codes.shape[0], self.dim), dtype=np.float32)
        for j, (start, stop) in enumerate(self.splits):
            out[:, start:stop] = self.centroids[j][codes[:, j]]
        return out

    def lut(self, query: np.ndarray, metric: Metric) -> np.ndarray:
        """The per-query ADC table, ``(m, 256)`` float32 (see module doc)."""
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self.dim:
            raise VectorSearchError(
                f"expected dimension {self.dim}, got {query.shape[0]}"
            )
        if self._stacked is not None:
            subs = query.reshape(self.m, -1)
            dot = np.einsum("mkw,mw->mk", self._stacked, subs)
            if metric is Metric.L2:
                table = self._c_sq - 2.0 * dot
                table += np.einsum("mw,mw->m", subs, subs)[:, None]
                np.maximum(table, 0.0, out=table)
                return table.astype(np.float32, copy=False)
            return (-dot).astype(np.float32, copy=False)
        table = np.empty((self.m, CODEBOOK_SIZE), dtype=np.float32)
        for j, (start, stop) in enumerate(self.splits):
            sub = query[start:stop]
            dot = self.centroids[j] @ sub
            if metric is Metric.L2:
                table[j] = self._c_sq[j] - 2.0 * dot
                table[j] += float(sub @ sub)
            else:
                table[j] = -dot
        if metric is Metric.L2:
            np.maximum(table, 0.0, out=table)
        return table

    @property
    def memory_bytes(self) -> int:
        return sum(int(c.nbytes) for c in self.centroids)


def _pad_table(trained: np.ndarray) -> np.ndarray:
    """Pad a trained (k, sub_dim) table to 256 rows by repeating rows."""
    k = trained.shape[0]
    if k == CODEBOOK_SIZE:
        return np.ascontiguousarray(trained, dtype=np.float32)
    reps = -(-CODEBOOK_SIZE // k)  # ceil division
    return np.ascontiguousarray(
        np.tile(trained, (reps, 1))[:CODEBOOK_SIZE], dtype=np.float32
    )


class PQCodes:
    """One matrix of PQ codes bound to its codebook (a segment's cold rows)."""

    __slots__ = ("codebook", "codes")

    def __init__(self, codebook: PQCodebook, codes: np.ndarray):
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        if codes.ndim != 2 or codes.shape[1] != codebook.m:
            raise VectorSearchError("codes must be (n, m) uint8")
        self.codebook = codebook
        self.codes = codes

    @classmethod
    def from_vectors(
        cls, codebook: PQCodebook, vectors: np.ndarray, metric: Metric
    ) -> "PQCodes":
        return cls(codebook, codebook.encode(_prepare_rows(vectors, metric)))

    def kernel(self, metric: Metric) -> "PQKernel":
        return PQKernel(self.codebook, self.codes, metric)

    def decode(self) -> np.ndarray:
        return self.codebook.decode(self.codes)

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    @property
    def memory_bytes(self) -> int:
        """Resident bytes: codes plus the (shared) codebook tables."""
        return int(self.codes.nbytes) + self.codebook.memory_bytes


class PQQueryContext(QueryContext):
    """Per-search state for ADC: the flat LUT rides in ``aug_query``.

    ``aug_query`` holds the raveled ``(m·256,)`` table so the inherited
    :meth:`DistanceKernel.queries` stacking works unchanged and every rank
    evaluation is one fancy-index gather + row sum.
    """

    __slots__ = ("lut",)

    def __init__(self, query: np.ndarray, q_sq: float, unit: np.ndarray,
                 lut: np.ndarray):
        super().__init__(query, q_sq, unit, lut.reshape(-1))
        self.lut = lut


class PQKernel(DistanceKernel):
    """ADC distance kernel over uint8 PQ codes.

    Implements the full :class:`DistanceKernel` contract without ever
    materializing float rows: ``rank`` gathers LUT entries addressed by
    ``code + 256·subspace`` and sums per row.  The code matrix is treated
    as immutable (cold snapshots / rebuilt-on-mutation scan kernels), so
    the incremental-binding methods raise.
    """

    __slots__ = ("codebook", "_codes", "_flat_offsets")

    def __init__(self, codebook: PQCodebook, codes: np.ndarray, metric: Metric):
        if not isinstance(metric, Metric):
            raise VectorSearchError(f"unsupported metric: {metric}")
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        if codes.ndim != 2 or codes.shape[1] != codebook.m:
            raise VectorSearchError("PQKernel expects (n, m) uint8 codes")
        # Deliberately no super().__init__: the base constructor exists to
        # build the float augmented-row cache, which PQ replaces with codes.
        self.metric = metric
        self.dim = codebook.dim
        self._vectors = None
        self._aug = None
        self.codebook = codebook
        self._codes = codes
        self._flat_offsets = np.arange(codebook.m, dtype=np.intp) * CODEBOOK_SIZE

    # ------------------------------------------------------------- binding
    def attach(self, vectors, copy_rows):  # pragma: no cover - contract guard
        raise VectorSearchError("PQKernel is bound to immutable codes")

    def set_row(self, row, vector):  # pragma: no cover - contract guard
        raise VectorSearchError("PQKernel is bound to immutable codes")

    def set_rows(self, rows, vectors):  # pragma: no cover - contract guard
        raise VectorSearchError("PQKernel is bound to immutable codes")

    # ------------------------------------------------------------- queries
    def query(self, query: np.ndarray) -> PQQueryContext:
        query = np.ascontiguousarray(query, dtype=np.float32).reshape(-1)
        metric = self.metric
        if metric is Metric.COSINE:
            norm = float(np.sqrt(query @ query))
            unit = query if norm == 0.0 else query / norm
        else:
            unit = query
        lut = self.codebook.lut(unit if metric is Metric.COSINE else query, metric)
        # q_sq = 0: the L2 LUT already contains |q_j|² per subspace, so the
        # rank distance IS the true distance and the inherited rank→true
        # conversion reduces to the cancellation clamp (L2) / +1 (IP/COS).
        return PQQueryContext(query, 0.0, unit, lut)

    # `queries()` is inherited: it builds per-row contexts through
    # :meth:`query` and stacks `aug_query` — which here stacks flat LUTs.

    # ------------------------------------------------------ rank distances
    def _rank_codes(self, ctx: QueryContext, codes: np.ndarray) -> np.ndarray:
        flat = codes + self._flat_offsets
        ctx.num_distances += codes.shape[0]
        return ctx.aug_query[flat].sum(axis=1, dtype=np.float32)

    def block(self, rows) -> np.ndarray:
        """Gather code rows (the fused traversal's shared gather)."""
        return self._codes.take(rows, axis=0)

    def rank(self, ctx: QueryContext, rows) -> np.ndarray:
        return self._rank_codes(ctx, self._codes.take(rows, axis=0))

    def rank_from_block(self, ctx: QueryContext, block: np.ndarray) -> np.ndarray:
        return self._rank_codes(ctx, block)

    def rank_one(self, ctx: QueryContext, row: int) -> float:
        ctx.num_distances += 1
        return float(ctx.aug_query[self._codes[row] + self._flat_offsets].sum())

    # `to_true`, `distances`, `distance_one` are inherited — correct given
    # the q_sq = 0 convention above.

    def distances_prefix(self, ctx: QueryContext, n: int) -> np.ndarray:
        return self.to_true(ctx, self._rank_codes(ctx, self._codes[:n]))

    # ------------------------------------------------------- fused queries
    def _multi_from_codes(
        self, mctx: MultiQueryContext, codes: np.ndarray
    ) -> np.ndarray:
        # Per-context gather+sum — the same evaluation the solo path runs —
        # so fused results are bit-identical to per-query, not merely close.
        flat = codes + self._flat_offsets
        count = codes.shape[0]
        rows = []
        for ctx in mctx.contexts:
            ctx.num_distances += count
            rows.append(ctx.aug_query[flat].sum(axis=1, dtype=np.float32))
        out = (
            np.stack(rows)
            if rows
            else np.zeros((0, count), dtype=np.float32)
        )
        if self.metric is Metric.L2:
            np.maximum(out, 0.0, out=out)
        else:
            out += 1.0
        return out

    def distances_multi(self, mctx: MultiQueryContext, rows) -> np.ndarray:
        return self._multi_from_codes(mctx, self._codes.take(rows, axis=0))

    def distances_multi_prefix(self, mctx: MultiQueryContext, n: int) -> np.ndarray:
        return self._multi_from_codes(mctx, self._codes[:n])

    # ----------------------------------------------- candidate-to-candidate
    def pairwise(self, rows, ctx: QueryContext | None = None) -> np.ndarray:
        """Symmetric distances between reconstructions (HNSW selection)."""
        decoded = self.codebook.decode(self._codes.take(rows, axis=0))
        n = decoded.shape[0]
        if ctx is not None:
            ctx.num_distances += n * n
        if self.metric is Metric.L2:
            sq = np.einsum("ij,ij->i", decoded, decoded)
            out = sq[:, None] + sq[None, :] - 2.0 * (decoded @ decoded.T)
            np.maximum(out, 0.0, out=out)
            return out
        # COSINE rows were prenormalized before encoding, matching the
        # float kernel's no-per-call-norm contract.
        return 1.0 - decoded @ decoded.T

    def cross(self, queries: np.ndarray, n: int | None = None) -> np.ndarray:
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if queries.ndim != 2:
            raise VectorSearchError("cross() expects a (Q, d) matrix")
        stop = self._codes.shape[0] if n is None else n
        codes = self._codes[:stop]
        flat = codes + self._flat_offsets
        out = np.empty((queries.shape[0], codes.shape[0]), dtype=np.float32)
        for qi in range(queries.shape[0]):
            ctx = self.query(queries[qi])
            out[qi] = self.to_true(ctx, ctx.aug_query[flat].sum(axis=1, dtype=np.float32))
        return out


@dataclass(frozen=True)
class PQSearchConfig:
    """Store-wide PQ / two-phase-search policy (``None`` on a store = off).

    ``rerank_factor`` inflates the quantized candidate set: phase one takes
    the top ``k · rerank_factor`` codes by ADC distance, phase two computes
    exact distances on those raw rows only.
    """

    m: int = 8
    train_iterations: int = 8
    seed: int = 17
    rerank: bool = True
    rerank_factor: int = 4
    #: Training subsample cap — codebooks converge long before full-segment
    #: sample sizes, and k-means is the dominant demotion cost.
    train_sample: int = 4096

    def candidates(self, k: int) -> int:
        return max(k, k * self.rerank_factor) if self.rerank else k


class IVFPQIndex(VectorIndex):
    """IVF coarse quantizer over PQ-coded lists with optional exact rerank.

    Structure mirrors :class:`~repro.index.ivf.IVFFlatIndex` — k-means
    coarse centroids, per-centroid row lists, swap-free deletes via a
    tombstone set — but in-list distances are ADC over uint8 codes.  With
    ``refine=True`` (default) raw rows are retained and each search
    reranks the inflated quantized candidate set exactly, the classic
    IndexRefineFlat arrangement; ``refine=False`` drops raw rows entirely
    for the full memory saving at quantized-only recall.
    """

    def __init__(
        self,
        dim: int,
        metric: Metric = Metric.L2,
        nlist: int = 64,
        nprobe: int = 8,
        m: int = 8,
        train_iterations: int = 10,
        seed: int = 17,
        refine: bool = True,
        rerank_factor: int = 4,
    ):
        if dim <= 0:
            raise VectorSearchError("dim must be positive")
        if nlist <= 0 or nprobe <= 0:
            raise VectorSearchError("nlist and nprobe must be positive")
        if not 1 <= m <= dim:
            raise VectorSearchError(f"m must be in [1, dim]; got m={m}")
        if rerank_factor < 1:
            raise VectorSearchError("rerank_factor must be at least 1")
        self.dim = dim
        self.metric = metric
        self.nlist = nlist
        self.nprobe = nprobe
        self.m = m
        self.train_iterations = train_iterations
        self.seed = seed
        self.refine = refine
        self.rerank_factor = rerank_factor
        self._centroids: np.ndarray | None = None
        self._codebook: PQCodebook | None = None
        self._lists: list[list[int]] = []
        self._codes = np.zeros((0, m), dtype=np.uint8)
        #: raw rows, kept only when ``refine`` (the rerank phase's source)
        self._vectors = np.zeros((0, dim), dtype=np.float32)
        self._ids = np.zeros(0, dtype=np.int64)
        self._id_to_row: dict[int, int] = {}
        self._deleted: set[int] = set()
        self._stats = IndexStats()
        self._centroid_kernel: DistanceKernel | None = None
        self._scan_kernel: PQKernel | None = None

    # ------------------------------------------------------------- training
    @property
    def is_trained(self) -> bool:
        return self._codebook is not None

    def _train(self, vectors: np.ndarray) -> None:
        start = time.perf_counter()
        nlist = min(self.nlist, max(1, len(vectors)))
        self._centroids = kmeans(
            vectors, nlist, iterations=self.train_iterations, seed=self.seed
        )
        self._lists = [[] for _ in range(len(self._centroids))]
        self._centroid_kernel = DistanceKernel.for_matrix(self._centroids, Metric.L2)
        self._codebook = PQCodebook.train(
            vectors, self.m, metric=self.metric,
            iterations=self.train_iterations, seed=self.seed,
        )
        self._stats.build_seconds += time.perf_counter() - start

    def _assign(self, vectors: np.ndarray) -> np.ndarray:
        return np.argmin(self._centroid_kernel.cross(vectors), axis=1)

    def _pq_kernel(self) -> PQKernel:
        kernel = self._scan_kernel
        if kernel is None:
            kernel = PQKernel(self._codebook, self._codes, self.metric)
            self._scan_kernel = kernel
        return kernel

    # ------------------------------------------------------------- updates
    def update_items(self, ids: Sequence[int], vectors: np.ndarray, num_threads: int = 1) -> None:
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.shape[1] != self.dim:
            raise VectorSearchError(f"expected dimension {self.dim}, got {vectors.shape[1]}")
        if len(ids) != vectors.shape[0]:
            raise VectorSearchError("ids and vectors length mismatch")
        if not self.is_trained:
            self._train(vectors)
        start_row = len(self._ids)
        codes = self._codebook.encode(_prepare_rows(vectors, self.metric))
        self._codes = np.vstack([self._codes, codes])
        if self.refine:
            self._vectors = np.vstack([self._vectors, vectors])
        self._ids = np.concatenate([self._ids, np.asarray(ids, dtype=np.int64)])
        self._scan_kernel = None
        assignments = self._assign(vectors)
        for offset, (ext_id, centroid) in enumerate(zip(ids, assignments)):
            ext_id = int(ext_id)
            row = start_row + offset
            old = self._id_to_row.get(ext_id)
            if old is not None:
                self._deleted.add(old)
                self._stats.num_updates += 1
            else:
                self._stats.num_inserts += 1
            self._id_to_row[ext_id] = row
            self._lists[int(centroid)].append(row)
        self._stats.num_vectors = len(self._id_to_row)

    def delete_items(self, ids: Sequence[int]) -> None:
        for ext_id in ids:
            row = self._id_to_row.pop(int(ext_id), None)
            if row is not None:
                self._deleted.add(row)
                self._stats.num_deleted += 1
        self._stats.num_vectors = len(self._id_to_row)

    # --------------------------------------------------------------- reads
    def get_embedding(self, external_id: int) -> np.ndarray:
        """Raw row when refining; the PQ reconstruction otherwise."""
        row = self._id_to_row.get(int(external_id))
        if row is None:
            raise VectorSearchError(f"id {external_id} not in index")
        if self.refine:
            return self._vectors[row].copy()
        return self._codebook.decode(self._codes[row])[0]

    def __contains__(self, external_id: int) -> bool:
        return int(external_id) in self._id_to_row

    def __len__(self) -> int:
        return len(self._id_to_row)

    @property
    def memory_bytes(self) -> int:
        """Quantized-representation bytes (codes + coarse + PQ tables).

        Raw rows retained for reranking are deliberately excluded: in the
        tiered design they live on disk (memmapped), not in memory.
        """
        coarse = 0 if self._centroids is None else int(self._centroids.nbytes)
        tables = 0 if self._codebook is None else self._codebook.memory_bytes
        return int(self._codes.nbytes) + coarse + tables

    # -------------------------------------------------------------- search
    def _probe_rows(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        self._stats.num_distance_computations += len(self._centroids)
        ck = self._centroid_kernel
        c_dists = ck.distances_prefix(ck.query(query), len(self._centroids))
        nprobe = min(nprobe, len(self._centroids))
        order = np.argpartition(c_dists, nprobe - 1)[:nprobe]
        rows = [r for c in order for r in self._lists[int(c)] if r not in self._deleted]
        return np.asarray(rows, dtype=np.int64)

    def topk_search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        """Two-phase probe: ADC over the probed lists, exact rerank on raw.

        ``ef`` maps to nprobe (the accuracy knob slot, as for IVF_FLAT).
        """
        if k <= 0:
            raise VectorSearchError("k must be positive")
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self.dim:
            raise VectorSearchError(f"expected dimension {self.dim}, got {query.shape[0]}")
        self._stats.num_searches += 1
        if not self.is_trained or not len(self._ids):
            return SearchResult.empty()
        rows = self._probe_rows(query, ef or self.nprobe)
        if rows.size == 0:
            return SearchResult.empty()
        kernel = self._pq_kernel()
        ctx = kernel.query(query)
        dists = kernel.distances(ctx, rows)
        self._stats.num_distance_computations += ctx.num_distances
        if self.refine:
            take = min(k * self.rerank_factor, rows.size)
            part = np.argpartition(dists, take - 1)[:take] if take < rows.size else np.arange(rows.size)
            cand_rows = rows[part]
            raw = DistanceKernel.for_matrix(self._vectors[cand_rows], self.metric)
            dists = raw.distances_prefix(raw.query(query), cand_rows.size)
            self._stats.num_distance_computations += cand_rows.size
            rows = cand_rows
        ids = self._ids[rows]
        if filter_fn is not None:
            keep = np.fromiter((filter_fn(int(i)) for i in ids), dtype=bool, count=len(ids))
            ids, dists = ids[keep], dists[keep]
        if ids.size == 0:
            return SearchResult.empty()
        # One external id may appear twice (stale row after update); keep best.
        order = np.argsort(dists, kind="stable")
        seen: set[int] = set()
        out_ids, out_dists = [], []
        for i in order:
            ext = int(ids[i])
            if ext in seen:
                continue
            if self._id_to_row.get(ext) is None:
                continue
            seen.add(ext)
            out_ids.append(ext)
            out_dists.append(float(dists[i]))
            if len(out_ids) >= k:
                break
        return SearchResult(np.asarray(out_ids), np.asarray(out_dists, dtype=np.float32))

    def range_search(
        self,
        query: np.ndarray,
        threshold: float,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        from .range_search import range_search_via_topk

        return range_search_via_topk(self, query, threshold, ef=ef, filter_fn=filter_fn)

    @property
    def stats(self) -> IndexStats:
        return self._stats
