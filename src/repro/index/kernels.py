"""Metric-specialized distance kernels shared by every search path.

Every hot loop in the repo — HNSW hops, brute-force segment scans, delta
overlays, IVF probes, SQ8 decode-and-scan, the serving micro-batcher — bottoms
out in the same computation: distances from one or more queries to rows of a
float32 matrix.  Before this module each call site recomputed per-query norms
on *every* hop and allocated a ``diff`` matrix per L2 call.  A
:class:`DistanceKernel` is instead bound once to a matrix and precomputes an
*augmented* row matrix holding everything a distance evaluation needs:

- **L2** — augmented rows ``[v, |v|²]`` and augmented query ``[-2q, 1]``, so
  ``aug[rows] @ aug_q = |v|² - 2·v·q`` — the squared distance shifted by the
  per-search constant ``q·q`` — in **one gather + one matvec** with no diff
  allocation.  True distances add ``q·q`` back and clamp at zero against
  floating-point cancellation.
- **COSINE** — augmented rows ``[v/|v|, 0]`` (zero rows stay zero) and query
  ``[-q/|q|, 0]``, reducing cosine distance to IP on prenormalized rows:
  the matvec yields ``-cos`` and the true distance is ``1 + rank``.
- **IP** — augmented rows ``[v, 0]``, query ``[-q, 0]``; true ``1 + rank``.

The shifted matvec output is a *rank distance*: an order-preserving surrogate
(the shift is constant per query) that graph traversal compares directly,
converting to true distances only when materializing results.  Per-query
state (``q·q``, the normalized/augmented query) is computed **once** per
search in a :class:`QueryContext` instead of once per hop, and the context
carries the per-search distance/hop counters so telemetry attribution never
reads the shared cumulative :class:`~repro.index.interface.IndexStats`
counters (which concurrent searches would misattribute).

Two binding modes:

- **static** (:meth:`DistanceKernel.for_matrix`) — caches computed for every
  row up front; used for immutable matrices (segment snapshots, decoded SQ8
  scratch, overlay stacks).
- **incremental** (``precompute=False``) — caches allocated but filled row by
  row via :meth:`set_row` as the owner inserts; used by the mutable HNSW /
  brute-force tables.  :meth:`attach` rebinds after the owner reallocates its
  matrix on growth.

Numerical note: the shifted-matvec L2 form differs from a diff-based kernel
by cancellation on the order of ``eps · (|q|² + |v|²)`` — well inside 1e-4
*relative* tolerance at any scale, which is what the equivalence suite and
the kernel bench assert against :func:`repro.types.batch_distances`.
"""

from __future__ import annotations

import numpy as np

from ..errors import VectorSearchError
from ..types import Metric

__all__ = ["DistanceKernel", "MultiQueryContext", "QueryContext"]


class QueryContext:
    """Per-search query state: precomputed vectors/scalars + counters.

    Created once per search via :meth:`DistanceKernel.query`; every kernel
    call for the search threads through it, so ``q·q`` / query normalization
    / the augmented query are computed exactly once instead of per hop, and
    ``num_distances`` / ``num_hops`` attribute this search's work without
    touching shared cumulative counters.
    """

    __slots__ = ("query", "q_sq", "unit", "aug_query", "num_distances", "num_hops")

    def __init__(self, query: np.ndarray, q_sq: float, unit: np.ndarray,
                 aug_query: np.ndarray):
        self.query = query  # float32, contiguous
        self.q_sq = q_sq  # q·q (the L2 rank→true shift)
        self.unit = unit  # normalized query (COSINE); == query otherwise
        self.aug_query = aug_query  # (d+1,) float32, see module docstring
        self.num_distances = 0
        self.num_hops = 0


class MultiQueryContext:
    """Stacked per-query contexts for fused multi-query kernels."""

    __slots__ = ("queries", "aug_queries", "q_sq", "contexts")

    def __init__(self, queries: np.ndarray, aug_queries: np.ndarray,
                 q_sq: np.ndarray, contexts: list[QueryContext]):
        self.queries = queries  # (Q, d) float32
        self.aug_queries = aug_queries  # (Q, d+1) stacked ctx.aug_query rows
        self.q_sq = q_sq  # (Q,) float64 rank→true shifts
        self.contexts = contexts  # one QueryContext per row


class DistanceKernel:
    """A metric-specialized distance kernel bound to one vector matrix."""

    __slots__ = ("metric", "dim", "_vectors", "_aug")

    def __init__(self, metric: Metric, vectors: np.ndarray, precompute: bool = True):
        if not isinstance(metric, Metric):
            raise VectorSearchError(f"unsupported metric: {metric}")
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise VectorSearchError("DistanceKernel expects a 2-d vector matrix")
        self.metric = metric
        self.dim = int(vectors.shape[1])
        self._vectors = vectors
        n = vectors.shape[0]
        self._aug = np.zeros((n, self.dim + 1), dtype=np.float32)
        if precompute and n:
            self.set_rows(slice(0, n), vectors[:n])

    # ------------------------------------------------------------- binding
    @classmethod
    def for_matrix(cls, vectors: np.ndarray, metric: Metric) -> "DistanceKernel":
        """Bind to an immutable matrix, precomputing caches for every row."""
        return cls(metric, vectors, precompute=True)

    def attach(self, vectors: np.ndarray, copy_rows: int) -> None:
        """Rebind after the owner reallocated its matrix (capacity growth).

        Cache entries for the first ``copy_rows`` rows are preserved; the
        owner fills later rows via :meth:`set_row` as it inserts them.
        """
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        aug = np.zeros((vectors.shape[0], self.dim + 1), dtype=np.float32)
        aug[:copy_rows] = self._aug[:copy_rows]
        self._aug = aug
        self._vectors = vectors

    def set_row(self, row: int, vector: np.ndarray) -> None:
        """Refresh caches after the owner wrote ``vector`` at ``row``.

        Delegates to :meth:`set_rows` so an incrementally built cache is
        bit-identical to one rebuilt in bulk (e.g. after save/load) — the
        row reductions must share one summation order or near-zero L2
        distances drift by an ulp of ``|v|²``.
        """
        vector = np.ascontiguousarray(vector, dtype=np.float32).reshape(1, -1)
        self.set_rows(slice(row, row + 1), vector)

    def set_rows(self, rows, vectors: np.ndarray) -> None:
        """Vectorized :meth:`set_row` for bulk loads and matrix extension."""
        metric = self.metric
        if metric is Metric.L2:
            self._aug[rows, : self.dim] = vectors
            self._aug[rows, self.dim] = np.einsum("ij,ij->i", vectors, vectors)
        elif metric is Metric.COSINE:
            norms = np.sqrt(np.einsum("ij,ij->i", vectors, vectors))
            norms[norms == 0.0] = 1.0
            self._aug[rows, : self.dim] = vectors / norms[:, None]
        else:
            self._aug[rows, : self.dim] = vectors

    # ------------------------------------------------------------- queries
    def query(self, query: np.ndarray) -> QueryContext:
        """Build the per-search context: norms/augmentation computed once."""
        query = np.ascontiguousarray(query, dtype=np.float32).reshape(-1)
        metric = self.metric
        dim = self.dim
        aug_query = np.zeros(dim + 1, dtype=np.float32)
        if metric is Metric.L2:
            # ×(−2) is exact in binary floating point, so the augmented
            # matvec equals |v|² − 2·(v·q) with no extra rounding.
            aug_query[:dim] = query
            aug_query[:dim] *= -2.0
            aug_query[dim] = 1.0
            return QueryContext(query, float(query @ query), query, aug_query)
        if metric is Metric.COSINE:
            norm = float(np.sqrt(query @ query))
            unit = query if norm == 0.0 else query / norm
            aug_query[:dim] = unit
            aug_query[:dim] *= -1.0
            return QueryContext(query, 0.0, unit, aug_query)
        aug_query[:dim] = query
        aug_query[:dim] *= -1.0
        return QueryContext(query, 0.0, query, aug_query)

    def queries(self, queries: np.ndarray) -> MultiQueryContext:
        """Stacked contexts for a (Q, d) query matrix (fused paths).

        Each context is built through the same scalar :meth:`query` path a
        solo search uses (not a row-wise einsum), so its ``q_sq`` / augmented
        query are bit-identical to the per-query values — the fused HNSW
        traversal needs that for result identity with solo searches.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if queries.ndim != 2:
            raise VectorSearchError("queries() expects a (Q, d) matrix")
        contexts = [self.query(queries[i]) for i in range(queries.shape[0])]
        if contexts:
            aug_queries = np.stack([ctx.aug_query for ctx in contexts])
        else:
            aug_queries = np.zeros((0, self.dim + 1), dtype=np.float32)
        q_sq = np.asarray([ctx.q_sq for ctx in contexts], dtype=np.float64)
        return MultiQueryContext(queries, aug_queries, q_sq, contexts)

    # ------------------------------------------------------ rank distances
    def block(self, rows) -> np.ndarray:
        """Gather augmented rows (one shared gather for fused lockstep
        traversals; see :meth:`rank_from_block`)."""
        return self._aug.take(rows, axis=0)

    def rank(self, ctx: QueryContext, rows) -> np.ndarray:
        """Order-preserving rank distances to ``rows``: one gather + matvec."""
        block = self._aug.take(rows, axis=0)
        ctx.num_distances += block.shape[0]
        return block @ ctx.aug_query

    def rank_from_block(self, ctx: QueryContext, block: np.ndarray) -> np.ndarray:
        """Like :meth:`rank` over a pre-gathered augmented block.

        ``block`` must be ``self.block(rows)`` or a contiguous slice of a
        concatenated gather; the matvec is then bit-identical to
        :meth:`rank` on the same rows — the fused traversal relies on that
        for result identity with the per-query path.
        """
        ctx.num_distances += block.shape[0]
        return block @ ctx.aug_query

    def rank_one(self, ctx: QueryContext, row: int) -> float:
        """Scalar rank distance (greedy-descend entry points)."""
        ctx.num_distances += 1
        return float(self._aug[row] @ ctx.aug_query)

    def to_true(self, ctx: QueryContext, rank_values) -> np.ndarray:
        """Convert rank distances back to true distances (vectorized)."""
        out = np.asarray(rank_values, dtype=np.float32)
        if out is rank_values:
            out = out.copy()
        if self.metric is Metric.L2:
            out += ctx.q_sq
            np.maximum(out, 0.0, out=out)
        else:
            out += 1.0
        return out

    # ------------------------------------------------------ true distances
    def distances(self, ctx: QueryContext, rows) -> np.ndarray:
        """True distances from the context's query to ``rows``."""
        return self.to_true(ctx, self.rank(ctx, rows))

    def distance_one(self, ctx: QueryContext, row: int) -> float:
        """Scalar true distance."""
        rank = self.rank_one(ctx, row)
        if self.metric is Metric.L2:
            d = rank + ctx.q_sq
            return d if d > 0.0 else 0.0
        return 1.0 + rank

    def distances_prefix(self, ctx: QueryContext, n: int) -> np.ndarray:
        """True distances to rows ``[0, n)`` without a gather (dense scans)."""
        ctx.num_distances += n
        return self.to_true(ctx, self._aug[:n] @ ctx.aug_query)

    def distances_multi(self, mctx: MultiQueryContext, rows) -> np.ndarray:
        """Fused ``(Q, len(rows))`` true-distance matrix: one matmul for Q
        queries (equal to per-query :meth:`distances` up to summation order)."""
        block = self._aug[rows]
        return self._multi_from_block(mctx, block)

    def distances_multi_prefix(self, mctx: MultiQueryContext, n: int) -> np.ndarray:
        """Fused ``(Q, n)`` true distances over rows ``[0, n)``, no gather."""
        return self._multi_from_block(mctx, self._aug[:n])

    def _multi_from_block(self, mctx: MultiQueryContext, block: np.ndarray) -> np.ndarray:
        count = block.shape[0]
        for ctx in mctx.contexts:
            ctx.num_distances += count
        out = mctx.aug_queries @ block.T
        if self.metric is Metric.L2:
            out += mctx.q_sq[:, None]
            np.maximum(out, 0.0, out=out)
        else:
            out += 1.0
        return out

    def pairwise(self, rows, ctx: QueryContext | None = None) -> np.ndarray:
        """Candidate-to-candidate true-distance matrix (HNSW neighbour
        selection).  COSINE rows are already prenormalized in the cache, so
        no per-call norm handling is needed."""
        aug = self._aug[rows]
        vecs = aug[:, : self.dim]
        n = vecs.shape[0]
        if ctx is not None:
            ctx.num_distances += n * n
        if self.metric is Metric.L2:
            sq = aug[:, self.dim]
            out = sq[:, None] + sq[None, :] - 2.0 * (vecs @ vecs.T)
            np.maximum(out, 0.0, out=out)
            return out
        return 1.0 - vecs @ vecs.T

    def cross(self, queries: np.ndarray, n: int | None = None) -> np.ndarray:
        """``(Q, n)`` true distances for a query *matrix*, fully vectorized.

        Unlike :meth:`queries` + :meth:`distances_multi` this builds no
        per-query contexts (no Python loop over Q), so it suits bulk
        matrix-vs-matrix work like k-means assignment where Q is large and
        nobody needs per-query counters.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if queries.ndim != 2:
            raise VectorSearchError("cross() expects a (Q, d) matrix")
        stop = self._aug.shape[0] if n is None else n
        aug = self._aug[:stop]
        metric = self.metric
        if metric is Metric.L2:
            out = -2.0 * (queries @ aug[:, : self.dim].T)
            out += aug[:, self.dim][None, :]
            out += np.einsum("ij,ij->i", queries, queries)[:, None]
            np.maximum(out, 0.0, out=out)
            return out
        if metric is Metric.COSINE:
            norms = np.sqrt(np.einsum("ij,ij->i", queries, queries))
            norms[norms == 0.0] = 1.0
            units = queries / norms[:, None]
            return 1.0 - units @ aug[:, : self.dim].T
        return 1.0 - queries @ aug[:, : self.dim].T
