"""HNSW (Hierarchical Navigable Small World) index, implemented from scratch.

Follows Malkov & Yashunin (TPAMI 2020) — the index the paper uses for every
embedding segment — with the features TigerVector relies on:

- tunable ``M`` / ``ef_construction`` at build time and ``ef`` per query
  (the knob Neo4j/Neptune lack, which drives Figures 7–8),
- a *filter function* applied at result-collection time while traversal still
  routes through filtered nodes (the bitmap pre-filter of Sec. 5.1–5.2),
- ``update_items`` for incremental vacuum merges (Sec. 4.3), including
  in-place replacement of an existing id's vector,
- soft deletion (deleted nodes keep navigating but never appear in results),
- statistics reporting (distance computations, hops) per Sec. 4.4,
- ``save``/``load`` so vacuum can persist index snapshots.

Performance notes (this is pure Python + numpy):

- layer-0 adjacency lives in one preallocated ``(capacity, 2M)`` int32 matrix
  so neighbour expansion, visited-filtering, and visited-marking are each a
  single vectorized operation;
- neighbour selection uses the diversity heuristic (Algorithm 4) with one
  pairwise-distance matrix per call and an incrementally maintained
  min-distance-to-selected vector — the heuristic is *required* for recall on
  clustered data (simple distance pruning disconnects clusters);
- visited marks are generation counters, so no per-search allocation.
"""

from __future__ import annotations

import heapq
import pickle
import threading
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..errors import IndexPersistenceError, VectorSearchError
from ..telemetry import get_telemetry
from ..types import Metric
from .interface import IndexStats, SearchResult, VectorIndex

__all__ = ["FORMAT_VERSION", "HNSWIndex"]

#: On-disk snapshot format version.  Bump whenever the ``save()`` payload
#: layout changes; ``load()`` refuses other versions with
#: :class:`~repro.errors.IndexPersistenceError` rather than guessing.
FORMAT_VERSION = 1


class HNSWIndex(VectorIndex):
    """A single HNSW graph over one embedding segment's vectors."""

    DEFAULT_EF = 64

    def __init__(
        self,
        dim: int,
        metric: Metric = Metric.L2,
        M: int = 16,
        ef_construction: int = 128,
        seed: int = 100,
        prune_heuristic: bool = True,
    ):
        if dim <= 0:
            raise VectorSearchError("dim must be positive")
        if M < 2:
            raise VectorSearchError("M must be at least 2")
        self.dim = dim
        self.metric = metric
        self.M = M
        self.M0 = 2 * M  # layer-0 degree bound, per the original paper
        self.ef_construction = max(ef_construction, M)
        self.prune_heuristic = prune_heuristic
        self._ml = 1.0 / np.log(M)
        self._rng = np.random.default_rng(seed)
        self._capacity = 64
        self._vectors = np.zeros((self._capacity, dim), dtype=np.float32)
        self._norms = np.zeros(self._capacity, dtype=np.float32)  # for COSINE
        self._ids = np.zeros(self._capacity, dtype=np.int64)
        self._id_to_row: dict[int, int] = {}
        self._count = 0
        self._levels: list[int] = []
        # Layer 0: dense adjacency matrix + per-row degree.  Lists may
        # temporarily exceed M0 by up to PRUNE_SLACK entries; pruning then
        # shrinks them back to M0 in one heuristic call, amortizing the
        # (expensive) diversity selection over several backlink additions.
        self.PRUNE_SLACK = 8
        self._links0_width = self.M0 + self.PRUNE_SLACK
        self._links0 = np.full((self._capacity, self._links0_width), -1, dtype=np.int32)
        self._links0_cnt = np.zeros(self._capacity, dtype=np.int32)
        # Layers 1..max: sparse (few nodes reach them).
        self._links_upper: list[dict[int, list[int]]] = []
        self._deleted = np.zeros(self._capacity, dtype=bool)
        self._entry_point: int | None = None
        self._max_level = -1
        self._stats = IndexStats()
        self._write_lock = threading.RLock()
        # Generation-stamped visited marks: no per-search allocation.
        self._visited = np.zeros(self._capacity, dtype=np.int64)
        self._visit_generation = 0

    # ------------------------------------------------------------ plumbing
    def _grow(self, needed: int) -> None:
        with self._write_lock:  # reentrant: usually already held by _insert
            if needed <= self._capacity:
                return
            new_capacity = max(needed, self._capacity * 2)

            def grown(arr: np.ndarray, fill=0) -> np.ndarray:
                shape = (new_capacity,) + arr.shape[1:]
                out = np.full(shape, fill, dtype=arr.dtype) if fill else np.zeros(shape, arr.dtype)
                out[: self._count] = arr[: self._count]
                return out

            self._vectors = grown(self._vectors)
            self._norms = grown(self._norms)
            self._ids = grown(self._ids)
            self._deleted = grown(self._deleted)
            self._visited = grown(self._visited)
            self._links0 = grown(self._links0, fill=-1)
            self._links0_cnt = grown(self._links0_cnt)
            self._capacity = new_capacity

    def _neighbors(self, row: int, level: int) -> np.ndarray:
        if level == 0:
            return self._links0[row, : self._links0_cnt[row]]
        layer = self._links_upper[level - 1]
        return np.asarray(layer.get(row, ()), dtype=np.int32)

    def _set_neighbors(self, row: int, level: int, neighbors: Sequence[int]) -> None:  # repro: noqa[R001] -- link-repair internal; every caller (_insert/_append_link) holds _write_lock
        if level == 0:
            n = len(neighbors)
            self._links0[row, :n] = neighbors
            self._links0_cnt[row] = n
        else:
            self._links_upper[level - 1][row] = list(neighbors)

    # ------------------------------------------------------------- kernels
    def _dist_to(self, query: np.ndarray, rows) -> np.ndarray:
        """Distances from ``query`` to stored rows (lean, unchecked)."""
        vecs = self._vectors[rows]
        self._stats.num_distance_computations += vecs.shape[0]
        metric = self.metric
        if metric is Metric.L2:
            diff = vecs - query
            return np.einsum("ij,ij->i", diff, diff)
        if metric is Metric.IP:
            return 1.0 - vecs @ query
        # COSINE via precomputed row norms: one matvec per call.
        qn = float(np.sqrt(query @ query))
        if qn == 0.0:
            return np.ones(vecs.shape[0], dtype=np.float32)
        denom = self._norms[rows] * qn
        denom[denom == 0.0] = 1.0
        return 1.0 - (vecs @ query) / denom

    def _dist_one(self, query: np.ndarray, row: int) -> float:
        self._stats.num_distance_computations += 1
        vec = self._vectors[row]
        metric = self.metric
        if metric is Metric.L2:
            diff = vec - query
            return float(diff @ diff)
        if metric is Metric.IP:
            return float(1.0 - vec @ query)
        qn = float(np.sqrt(query @ query))
        denom = float(self._norms[row]) * qn
        if denom == 0.0:
            return 1.0
        return float(1.0 - (vec @ query) / denom)

    def _pairwise(self, rows: np.ndarray) -> np.ndarray:
        """Candidate-to-candidate distance matrix for neighbour selection."""
        vecs = self._vectors[rows]
        n = vecs.shape[0]
        self._stats.num_distance_computations += n * n
        metric = self.metric
        if metric is Metric.L2:
            sq = np.einsum("ij,ij->i", vecs, vecs)
            return np.maximum(sq[:, None] + sq[None, :] - 2.0 * (vecs @ vecs.T), 0.0)
        if metric is Metric.IP:
            return 1.0 - vecs @ vecs.T
        norms = self._norms[rows].copy()
        norms[norms == 0.0] = 1.0
        return 1.0 - (vecs @ vecs.T) / (norms[:, None] * norms[None, :])

    # -------------------------------------------------------------- search
    def _greedy_descend(
        self, query: np.ndarray, start_row: int, from_level: int, to_level: int
    ) -> int:
        """Single-entry greedy search from ``from_level`` down to ``to_level`` (exclusive)."""
        current = start_row
        current_dist = self._dist_one(query, current)
        for level in range(from_level, to_level, -1):
            improved = True
            while improved:
                improved = False
                neighbors = self._neighbors(current, level)
                if neighbors.size == 0:
                    continue
                self._stats.num_hops += 1
                dists = self._dist_to(query, neighbors)
                best = int(np.argmin(dists))
                if dists[best] < current_dist:
                    current = int(neighbors[best])
                    current_dist = float(dists[best])
                    improved = True
        return current

    def _search_layer(
        self,
        query: np.ndarray,
        entry_row: int,
        ef: int,
        level: int,
        collect_filter: Callable[[int], bool] | None = None,
    ) -> list[tuple[float, int]]:
        """Best-first beam search on one layer.

        Returns up to ``ef`` ``(distance, row)`` pairs sorted ascending.
        Nodes failing ``collect_filter`` (or soft-deleted ones) are traversed
        but never collected — the filtered-search semantics of Sec. 5.1.
        """
        self._visit_generation += 1
        generation = self._visit_generation
        visited = self._visited
        visited[entry_row] = generation
        entry_dist = self._dist_one(query, entry_row)
        candidates: list[tuple[float, int]] = [(entry_dist, entry_row)]  # min-heap
        results: list[tuple[float, int]] = []  # max-heap via negated distance
        deleted = self._deleted

        if not deleted[entry_row] and (collect_filter is None or collect_filter(entry_row)):
            heapq.heappush(results, (-entry_dist, entry_row))

        while candidates:
            dist, row = heapq.heappop(candidates)
            if len(results) >= ef and dist > -results[0][0]:
                break
            neighbors = self._neighbors(row, level)
            if neighbors.size:
                fresh = neighbors[visited[neighbors] != generation]
            else:
                fresh = neighbors
            if fresh.size == 0:
                continue
            self._stats.num_hops += 1
            visited[fresh] = generation
            dists = self._dist_to(query, fresh)
            worst = -results[0][0] if results else np.inf
            full = len(results) >= ef
            for n_dist, n_row in zip(dists.tolist(), fresh.tolist()):
                if not full or n_dist < worst:
                    heapq.heappush(candidates, (n_dist, n_row))
                    if not deleted[n_row] and (
                        collect_filter is None or collect_filter(n_row)
                    ):
                        heapq.heappush(results, (-n_dist, n_row))
                        if len(results) > ef:
                            heapq.heappop(results)
                        worst = -results[0][0]
                        full = len(results) >= ef
        return sorted((-d, row) for d, row in results)

    def topk_search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        if k <= 0:
            raise VectorSearchError("k must be positive")
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self.dim:
            raise VectorSearchError(f"expected dimension {self.dim}, got {query.shape[0]}")
        self._stats.num_searches += 1
        if self._entry_point is None:
            return SearchResult.empty()
        ef = max(ef or self.DEFAULT_EF, k)
        tel = get_telemetry()
        if tel.enabled:
            # Per-search instrument deltas ride on the cumulative IndexStats
            # so the disabled path pays nothing beyond this branch.
            dist_before = self._stats.num_distance_computations
            hops_before = self._stats.num_hops
            search_started = time.perf_counter()
        collect = None
        if filter_fn is not None:
            ids = self._ids

            def collect(row: int) -> bool:
                return filter_fn(int(ids[row]))

        entry = self._greedy_descend(query, self._entry_point, self._max_level, 0)
        found = self._search_layer(query, entry, ef, 0, collect_filter=collect)
        top = found[:k]
        if tel.enabled:
            tel.inc("hnsw.searches")
            tel.observe("hnsw.search_seconds", time.perf_counter() - search_started)
            tel.observe(
                "hnsw.distance_computations",
                self._stats.num_distance_computations - dist_before,
            )
            tel.observe("hnsw.hops", self._stats.num_hops - hops_before)
            tel.observe("hnsw.ef_expansions", ef)
        if not top:
            return SearchResult.empty()
        dists, rows = zip(*top)
        return SearchResult(self._ids[list(rows)], np.asarray(dists, dtype=np.float32))

    def range_search(
        self,
        query: np.ndarray,
        threshold: float,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        """Range search via the DiskANN repeated-top-k adaptation (Sec. 4.4)."""
        from .range_search import range_search_via_topk

        return range_search_via_topk(self, query, threshold, ef=ef, filter_fn=filter_fn)

    # -------------------------------------------------------------- insert
    def _select_neighbors(self, candidates: list[tuple[float, int]], M: int) -> list[int]:
        """Heuristic neighbour selection (Algorithm 4 of the HNSW paper).

        Keeps a candidate only if it is closer to the query than to every
        already-selected neighbour, which preserves graph navigability on
        clustered data.
        """
        if len(candidates) <= M:
            return [row for _, row in candidates]
        rows = np.fromiter((row for _, row in candidates), dtype=np.int64, count=len(candidates))
        dists = [d for d, _ in candidates]
        pair = self._pairwise(rows)  # one vectorized call instead of one per check
        n = len(rows)
        # min_to_selected[i] = distance from candidate i to its nearest
        # already-selected neighbour; one vectorized minimum per selection.
        min_to_selected = np.full(n, np.inf)
        selected: list[int] = []  # indexes into `rows`
        for i in range(n):  # candidates arrive sorted ascending
            if len(selected) >= M:
                break
            if min_to_selected[i] < dists[i]:
                continue
            selected.append(i)
            np.minimum(min_to_selected, pair[i], out=min_to_selected)
        # Backfill with nearest remaining if the heuristic was too aggressive.
        if len(selected) < M:
            chosen = set(selected)
            for i in range(n):
                if len(selected) >= M:
                    break
                if i not in chosen:
                    selected.append(i)
                    chosen.add(i)
        return [int(rows[i]) for i in selected]

    def _append_link(self, node: int, level: int, new_row: int) -> None:  # repro: noqa[R001] -- backlink hot path; only reachable from _insert, which holds _write_lock
        """Add a backlink, pruning with the diversity heuristic on overflow."""
        bound = self.M0 if level == 0 else self.M
        if level == 0:
            cnt = int(self._links0_cnt[node])
            if cnt < self._links0_width:
                self._links0[node, cnt] = new_row
                self._links0_cnt[node] = cnt + 1
                return
            links = self._links0[node, :cnt].tolist() + [new_row]
        else:
            layer = self._links_upper[level - 1]
            links = layer.get(node, [])
            if len(links) < bound:
                links.append(new_row)
                layer[node] = links
                return
            links = links + [new_row]
        dists = self._dist_to(self._vectors[node], np.asarray(links, dtype=np.int64))
        if self.prune_heuristic:
            ranked = sorted(zip(dists.tolist(), links))
            self._set_neighbors(node, level, self._select_neighbors(ranked, bound))
        else:
            keep = np.argpartition(dists, bound - 1)[:bound]
            self._set_neighbors(node, level, [links[i] for i in keep])

    def _insert(self, external_id: int, vector: np.ndarray) -> None:
        self._write_lock.acquire()  # reentrant under update_items' batch lock
        try:
            self._insert_locked(external_id, vector)
        finally:
            self._write_lock.release()

    def _insert_locked(self, external_id: int, vector: np.ndarray) -> None:  # repro: noqa[R001] -- body of _insert, entered only with _write_lock held
        existing = self._id_to_row.get(external_id)
        if existing is not None:
            # Replacing a vector in place would leave the graph links stale
            # (they were chosen for the old value), so updates tombstone the
            # old row and reinsert fresh — the row stays navigable but can no
            # longer be returned.  This is also why incremental updates cost
            # more than build-time inserts, producing the update-vs-rebuild
            # crossover of the paper's Figure 11.
            self._deleted[existing] = True
            self._stats.num_updates += 1
        row = self._count
        self._grow(row + 1)
        self._vectors[row] = vector
        self._norms[row] = np.sqrt(vector @ vector)
        self._ids[row] = external_id
        self._id_to_row[external_id] = row
        self._count += 1
        level = int(-np.log(max(self._rng.random(), 1e-12)) * self._ml)
        self._levels.append(level)
        while len(self._links_upper) < level:
            self._links_upper.append({})
        for l in range(1, level + 1):
            self._links_upper[l - 1][row] = []
        self._stats.num_inserts += 1
        self._stats.num_vectors = self._count

        if self._entry_point is None:
            self._entry_point = row
            self._max_level = level
            return

        entry = self._entry_point
        if level < self._max_level:
            entry = self._greedy_descend(vector, entry, self._max_level, level)
        for l in range(min(level, self._max_level), -1, -1):
            found = self._search_layer(vector, entry, self.ef_construction, l)
            if not found:
                continue
            M = self.M0 if l == 0 else self.M
            neighbors = self._select_neighbors(found, M)
            self._set_neighbors(row, l, neighbors)
            for neighbor in neighbors:
                self._append_link(neighbor, l, row)
            entry = found[0][1]
        if level > self._max_level:
            self._max_level = level
            self._entry_point = row

    def update_items(self, ids: Sequence[int], vectors: np.ndarray, num_threads: int = 1) -> None:
        """Insert-or-replace a batch (UpdateItems, Sec. 4.4).

        ``num_threads > 1`` partitions the batch into per-thread id subsets
        (each thread keeps its subset in record order, as the paper
        describes); inserts themselves serialize on the write lock because
        the graph structure is shared — in this Python port the win is
        overlap with numpy kernels, not full parallelism.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.shape[1] != self.dim:
            raise VectorSearchError(f"expected dimension {self.dim}, got {vectors.shape[1]}")
        if len(ids) != vectors.shape[0]:
            raise VectorSearchError("ids and vectors length mismatch")
        start = time.perf_counter()
        if num_threads <= 1 or len(ids) < 4:
            with self._write_lock:
                for ext_id, vector in zip(ids, vectors):
                    self._insert(int(ext_id), vector)
        else:
            chunks = np.array_split(np.arange(len(ids)), num_threads)

            def worker(chunk: np.ndarray) -> None:
                for i in chunk:
                    with self._write_lock:
                        self._insert(int(ids[i]), vectors[i])

            threads = [
                threading.Thread(target=worker, args=(chunk,), name=f"hnsw-update-{t}")
                for t, chunk in enumerate(chunks)
                if chunk.size
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        self._stats.build_seconds += time.perf_counter() - start

    def delete_items(self, ids: Sequence[int]) -> None:
        """Soft-delete: rows stay navigable but never surface in results."""
        with self._write_lock:
            for ext_id in ids:
                row = self._id_to_row.get(int(ext_id))
                if row is not None and not self._deleted[row]:
                    self._deleted[row] = True
                    self._stats.num_deleted += 1

    # --------------------------------------------------------------- reads
    def get_embedding(self, external_id: int) -> np.ndarray:
        row = self._id_to_row.get(int(external_id))
        if row is None or self._deleted[row]:
            raise VectorSearchError(f"id {external_id} not in index")
        return self._vectors[row].copy()

    def __contains__(self, external_id: int) -> bool:
        row = self._id_to_row.get(int(external_id))
        return row is not None and not self._deleted[row]

    def __len__(self) -> int:
        return self._count - int(np.count_nonzero(self._deleted[: self._count]))

    @property
    def stats(self) -> IndexStats:
        self._stats.num_vectors = self._count
        return self._stats

    # --------------------------------------------------------- persistence
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_write_lock"]  # locks are not picklable; recreate on load
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._write_lock = threading.RLock()

    def save(self, path) -> None:
        """Persist the index snapshot (vectors + graph) to one file."""
        path = Path(path)
        payload = {
            "format_version": FORMAT_VERSION,
            "dim": self.dim,
            "metric": self.metric.value,
            "M": self.M,
            "ef_construction": self.ef_construction,
            "prune_heuristic": self.prune_heuristic,
            "count": self._count,
            "vectors": self._vectors[: self._count],
            "ids": self._ids[: self._count],
            "levels": self._levels,
            "links0": self._links0[: self._count],
            "links0_cnt": self._links0_cnt[: self._count],
            "links_upper": self._links_upper,
            "deleted": self._deleted[: self._count],
            "entry_point": self._entry_point,
            "max_level": self._max_level,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "HNSWIndex":
        """Load a saved index, validating format and structure.

        A corrupt, truncated, or incompatible file raises
        :class:`~repro.errors.IndexPersistenceError` (never a raw pickle /
        key / attribute error); the caller should rebuild from the
        segment's vectors instead of trusting the snapshot.
        """
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except OSError:
            raise
        except Exception as exc:  # pickle raises many unrelated types
            raise IndexPersistenceError(
                f"cannot read index snapshot '{path}': {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise IndexPersistenceError(
                f"index snapshot '{path}' is not a payload dict "
                f"(got {type(payload).__name__})"
            )
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise IndexPersistenceError(
                f"index snapshot '{path}' has format version {version!r}, "
                f"this build reads version {FORMAT_VERSION}; rebuild the "
                f"index (vacuum index_merge) instead of loading it"
            )
        required = (
            "dim", "metric", "M", "ef_construction", "count", "vectors",
            "ids", "levels", "links0", "links0_cnt", "links_upper",
            "deleted", "entry_point", "max_level",
        )
        missing = [key for key in required if key not in payload]
        if missing:
            raise IndexPersistenceError(
                f"index snapshot '{path}' is missing fields: {', '.join(missing)}"
            )
        try:
            metric = Metric(payload["metric"])
        except ValueError as exc:
            raise IndexPersistenceError(
                f"index snapshot '{path}' has unknown metric "
                f"{payload['metric']!r}"
            ) from exc
        dim = int(payload["dim"])
        count = int(payload["count"])
        if dim <= 0 or count < 0:
            raise IndexPersistenceError(
                f"index snapshot '{path}' has invalid dim/count ({dim}, {count})"
            )
        vectors = np.asarray(payload["vectors"])
        if vectors.shape != (count, dim):
            raise IndexPersistenceError(
                f"index snapshot '{path}': vector matrix shape "
                f"{vectors.shape} disagrees with recorded (count, dim) "
                f"({count}, {dim})"
            )
        for name in ("ids", "links0", "links0_cnt", "deleted"):
            rows = np.asarray(payload[name]).shape[0]
            if rows != count:
                raise IndexPersistenceError(
                    f"index snapshot '{path}': '{name}' has {rows} rows, "
                    f"expected {count}"
                )
        if len(payload["levels"]) != count:
            raise IndexPersistenceError(
                f"index snapshot '{path}': 'levels' has "
                f"{len(payload['levels'])} entries, expected {count}"
            )
        entry_point = payload["entry_point"]
        if entry_point is not None and not 0 <= int(entry_point) < max(count, 1):
            raise IndexPersistenceError(
                f"index snapshot '{path}': entry point {entry_point} is out "
                f"of range for {count} vectors"
            )
        index = cls(
            dim=dim,
            metric=metric,
            M=payload["M"],
            ef_construction=payload["ef_construction"],
            prune_heuristic=payload.get("prune_heuristic", True),
        )
        index._grow(max(count, 1))
        index._count = count
        index._vectors[:count] = payload["vectors"]
        if count:
            index._norms[:count] = np.sqrt(
                np.einsum("ij,ij->i", index._vectors[:count], index._vectors[:count])
            )
        index._ids[:count] = payload["ids"]
        index._deleted[:count] = payload["deleted"]
        index._levels = list(payload["levels"])
        index._links0[:count] = payload["links0"]
        index._links0_cnt[:count] = payload["links0_cnt"]
        index._links_upper = [dict(layer) for layer in payload["links_upper"]]
        index._id_to_row = {int(index._ids[row]): row for row in range(count)}
        index._entry_point = payload["entry_point"]
        index._max_level = payload["max_level"]
        index._stats.num_vectors = count
        return index
