"""HNSW (Hierarchical Navigable Small World) index, implemented from scratch.

Follows Malkov & Yashunin (TPAMI 2020) — the index the paper uses for every
embedding segment — with the features TigerVector relies on:

- tunable ``M`` / ``ef_construction`` at build time and ``ef`` per query
  (the knob Neo4j/Neptune lack, which drives Figures 7–8),
- a *filter function* applied at result-collection time while traversal still
  routes through filtered nodes (the bitmap pre-filter of Sec. 5.1–5.2),
- ``update_items`` for incremental vacuum merges (Sec. 4.3), including
  in-place replacement of an existing id's vector,
- soft deletion (deleted nodes keep navigating but never appear in results),
- statistics reporting (distance computations, hops) per Sec. 4.4,
- ``save``/``load`` so vacuum can persist index snapshots.

Performance notes (this is pure Python + numpy):

- all distance math routes through a metric-specialized
  :class:`~repro.index.kernels.DistanceKernel` bound to the row matrix:
  squared-norm caches make L2 one gather + one matvec (no diff allocation),
  a prenormalized row copy reduces COSINE to IP, and per-search
  :class:`~repro.index.kernels.QueryContext` state computes ``q·q`` / query
  normalization once per search instead of once per hop;
- ``_search_layer`` admits neighbour batches through one vectorized
  ``dists < worst`` mask before the Python heap loop, so full-beam rounds
  skip interpreter work for neighbours that cannot enter the result set;
- ``topk_search_multi`` runs many queries as lockstep beams that share one
  stacked row gather per round (each beam then takes its own contiguous
  slice, keeping per-beam distances bit-identical to a solo search);
- layer-0 adjacency lives in one preallocated ``(capacity, 2M)`` int32 matrix
  so neighbour expansion, visited-filtering, and visited-marking are each a
  single vectorized operation;
- neighbour selection uses the diversity heuristic (Algorithm 4) with one
  pairwise-distance matrix per call and an incrementally maintained
  min-distance-to-selected vector — the heuristic is *required* for recall on
  clustered data (simple distance pruning disconnects clusters);
- visited marks are generation counters, so no per-search allocation
  (fused searches use a private per-call bitmask instead, one uint64 lane
  per beam).
"""

from __future__ import annotations

import copy
import heapq
import pickle
import threading
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..analysis.hooks import schedule_point
from ..errors import IndexPersistenceError, VectorSearchError
from ..telemetry import get_telemetry
from ..types import Metric
from .interface import IndexStats, SearchResult, VectorIndex
from .kernels import DistanceKernel, MultiQueryContext, QueryContext

__all__ = ["FORMAT_VERSION", "HNSWIndex"]

#: On-disk snapshot format version.  Bump whenever the ``save()`` payload
#: layout changes; ``load()`` refuses other versions with
#: :class:`~repro.errors.IndexPersistenceError` rather than guessing.
FORMAT_VERSION = 1

#: Fused searches pack per-beam visited marks into uint64 lanes; batches
#: larger than this are chunked so every beam keeps a private bit.
FUSED_CHUNK = 64


class _Beam:
    """Per-query traversal state for the fused lockstep layer search."""

    __slots__ = ("ctx", "candidates", "results", "bit", "collect", "pending", "finished")

    def __init__(self, ctx: QueryContext, candidates: list, results: list,
                 bit: np.uint64, collect) -> None:
        self.ctx = ctx
        self.candidates = candidates  # min-heap of (distance, row)
        self.results = results  # max-heap via negated distance
        self.bit = bit  # this beam's visited-mask lane
        self.collect = collect
        self.pending: np.ndarray | None = None  # fresh rows awaiting distances
        self.finished = False


class HNSWIndex(VectorIndex):
    """A single HNSW graph over one embedding segment's vectors."""

    DEFAULT_EF = 64

    def __init__(
        self,
        dim: int,
        metric: Metric = Metric.L2,
        M: int = 16,
        ef_construction: int = 128,
        seed: int = 100,
        prune_heuristic: bool = True,
    ):
        if dim <= 0:
            raise VectorSearchError("dim must be positive")
        if M < 2:
            raise VectorSearchError("M must be at least 2")
        self.dim = dim
        self.metric = metric
        self.M = M
        self.M0 = 2 * M  # layer-0 degree bound, per the original paper
        self.ef_construction = max(ef_construction, M)
        self.prune_heuristic = prune_heuristic
        self._ml = 1.0 / np.log(M)
        self._rng = np.random.default_rng(seed)
        self._capacity = 64
        self._vectors = np.zeros((self._capacity, dim), dtype=np.float32)
        self._ids = np.zeros(self._capacity, dtype=np.int64)
        self._id_to_row: dict[int, int] = {}
        self._count = 0
        self._levels: list[int] = []
        # Layer 0: dense adjacency matrix + per-row degree.  Lists may
        # temporarily exceed M0 by up to PRUNE_SLACK entries; pruning then
        # shrinks them back to M0 in one heuristic call, amortizing the
        # (expensive) diversity selection over several backlink additions.
        self.PRUNE_SLACK = 8
        self._links0_width = self.M0 + self.PRUNE_SLACK
        self._links0 = np.full((self._capacity, self._links0_width), -1, dtype=np.int32)
        self._links0_cnt = np.zeros(self._capacity, dtype=np.int32)
        # Layers 1..max: sparse (few nodes reach them).
        self._links_upper: list[dict[int, list[int]]] = []
        self._deleted = np.zeros(self._capacity, dtype=bool)
        self._entry_point: int | None = None
        self._max_level = -1
        self._stats = IndexStats()
        self._write_lock = threading.RLock()
        # Pooled generation-stamped visited marks: each search checks out an
        # exclusive [array, generation] pair (no per-search allocation once
        # the pool is warm).  A single shared array with a racy generation
        # bump let two colliding concurrent searches skip each other's
        # frontier and return truncated top-k.
        self._scratch_lock = threading.Lock()
        self._visited_pool: list[list] = []
        # Incremental kernel: caches are filled row by row as we insert.
        self._kernel = DistanceKernel(metric, self._vectors, precompute=False)

    # ------------------------------------------------------------ plumbing
    def _grow(self, needed: int) -> None:
        with self._write_lock:  # reentrant: usually already held by _insert
            if needed <= self._capacity:
                return
            new_capacity = max(needed, self._capacity * 2)

            def grown(arr: np.ndarray, fill=0) -> np.ndarray:
                shape = (new_capacity,) + arr.shape[1:]
                out = np.full(shape, fill, dtype=arr.dtype) if fill else np.zeros(shape, arr.dtype)
                out[: self._count] = arr[: self._count]
                return out

            self._vectors = grown(self._vectors)
            self._ids = grown(self._ids)
            self._deleted = grown(self._deleted)
            self._links0 = grown(self._links0, fill=-1)
            self._links0_cnt = grown(self._links0_cnt)
            self._capacity = new_capacity
            self._kernel.attach(self._vectors, copy_rows=self._count)

    def _checkout_visited(self) -> list:
        """Exclusive ``[visited_array, generation]`` scratch for one search.

        Undersized entries (pooled before a ``_grow``) are dropped and
        replaced; a fresh array starts at generation 1 so its zeros never
        read as visited.
        """
        with self._scratch_lock:
            entry = self._visited_pool.pop() if self._visited_pool else None
        if entry is None or entry[0].shape[0] < self._capacity:
            return [np.zeros(self._capacity, dtype=np.int64), 1]
        entry[1] += 1
        return entry

    def _checkin_visited(self, entry: list) -> None:
        with self._scratch_lock:
            self._visited_pool.append(entry)

    def _neighbors(self, row: int, level: int) -> np.ndarray:
        if level == 0:
            return self._links0[row, : self._links0_cnt[row]]
        layer = self._links_upper[level - 1]
        return np.asarray(layer.get(row, ()), dtype=np.int32)

    def _set_neighbors(self, row: int, level: int, neighbors: Sequence[int]) -> None:  # repro: noqa[R001] -- link-repair internal; every caller (_insert/_append_link) holds _write_lock
        if level == 0:
            n = len(neighbors)
            self._links0[row, :n] = neighbors
            self._links0_cnt[row] = n
        else:
            self._links_upper[level - 1][row] = list(neighbors)

    # ------------------------------------------------------------- kernels
    def _pairwise(self, rows: np.ndarray) -> np.ndarray:
        """Candidate-to-candidate distance matrix for neighbour selection."""
        self._stats.num_distance_computations += int(rows.shape[0]) ** 2
        return self._kernel.pairwise(rows)

    # -------------------------------------------------------------- search
    def _greedy_descend(
        self, ctx: QueryContext, start_row: int, from_level: int, to_level: int
    ) -> int:
        """Single-entry greedy search from ``from_level`` down to ``to_level`` (exclusive).

        Compares *rank* distances (the kernel's order-preserving shifted
        form) — greedy descent only needs ordering, never true values.
        """
        aug = self._kernel._aug
        aug_query = ctx.aug_query
        links_upper = self._links_upper
        dot = np.dot
        current = start_row
        current_dist = float(aug[current] @ aug_query)
        num_distances = 1
        for level in range(from_level, to_level, -1):
            layer = links_upper[level - 1] if level > 0 else None
            improved = True
            while improved:
                improved = False
                if layer is None:
                    neighbors = self._links0[current, : self._links0_cnt[current]]
                else:
                    neighbors = np.asarray(layer.get(current, ()), dtype=np.int32)
                if neighbors.size == 0:
                    continue
                ctx.num_hops += 1
                num_distances += neighbors.shape[0]
                dists = dot(aug.take(neighbors, 0), aug_query)
                best = int(np.argmin(dists))
                if dists[best] < current_dist:
                    current = int(neighbors[best])
                    current_dist = float(dists[best])
                    improved = True
        ctx.num_distances += num_distances
        return current

    def _search_layer(
        self,
        ctx: QueryContext,
        entry_row: int,
        ef: int,
        level: int,
        collect_filter: Callable[[int], bool] | None = None,
    ) -> list[tuple[float, int]]:
        """Best-first beam search on one layer.

        Returns up to ``ef`` ``(rank_distance, row)`` pairs sorted ascending
        — callers materialize true distances via ``kernel.to_true``.  Nodes
        failing ``collect_filter`` (or soft-deleted ones) are traversed but
        never collected — the filtered-search semantics of Sec. 5.1.

        Once the result heap is full, each neighbour batch is admitted
        through one vectorized ``dists < worst`` mask before the Python heap
        loop — correct because ``worst`` only tightens within a batch, so a
        neighbour rejected against the batch-start bound would also be
        rejected against any later bound.
        """
        scratch = self._checkout_visited()
        try:
            return self._search_layer_scratch(
                ctx, entry_row, ef, level, collect_filter, scratch
            )
        finally:
            self._checkin_visited(scratch)

    def _search_layer_scratch(
        self,
        ctx: QueryContext,
        entry_row: int,
        ef: int,
        level: int,
        collect_filter: Callable[[int], bool] | None,
        scratch: list,
    ) -> list[tuple[float, int]]:
        visited, generation = scratch
        visited[entry_row] = generation
        # Inlined kernel.rank(): the gemv below is the same `aug[rows] @
        # aug_query` the fused path computes from its stacked gather, so
        # solo and fused stay bit-identical while skipping a method call
        # per hop (this loop runs tens of thousands of times per query set).
        aug = self._kernel._aug
        aug_query = ctx.aug_query
        dot = np.dot
        not_equal = np.not_equal
        num_distances = 1
        entry_dist = float(aug[entry_row] @ aug_query)
        candidates: list[tuple[float, int]] = [(entry_dist, entry_row)]  # min-heap
        results: list[tuple[float, int]] = []  # max-heap via negated distance
        deleted = self._deleted
        push = heapq.heappush
        pop = heapq.heappop
        pushpop = heapq.heappushpop
        if level == 0:
            links0 = self._links0
            links0_cnt = self._links0_cnt
            upper = None
        else:
            upper = self._links_upper[level - 1]

        if not deleted[entry_row] and (collect_filter is None or collect_filter(entry_row)):
            results.append((-entry_dist, entry_row))
        full = len(results) >= ef
        worst = -results[0][0] if full else np.inf

        while candidates:
            dist, row = pop(candidates)
            if full and dist > -results[0][0]:
                break
            if upper is None:
                neighbors = links0[row, : links0_cnt[row]]
            else:
                neighbors = np.asarray(upper.get(row, ()), dtype=np.int32)
            if neighbors.size:
                # .take/.put beat fancy indexing by ~1µs each at frontier
                # sizes (≤2M rows) — measurable at tens of thousands of hops.
                fresh = neighbors[not_equal(visited.take(neighbors), generation)]
            else:
                fresh = neighbors
            if fresh.size == 0:
                continue
            ctx.num_hops += 1
            visited.put(fresh, generation)
            num_distances += fresh.shape[0]
            dists = dot(aug.take(fresh, 0), aug_query)
            if full:
                worst = -results[0][0]
                admit = dists < worst
                dist_list = dists[admit].tolist()
                if not dist_list:
                    continue
                row_list = fresh[admit].tolist()
            else:
                dist_list = dists.tolist()
                row_list = fresh.tolist()
            for n_dist, n_row in zip(dist_list, row_list):
                if not full or n_dist < worst:
                    push(candidates, (n_dist, n_row))
                    if not deleted[n_row] and (
                        collect_filter is None or collect_filter(n_row)
                    ):
                        if full:
                            pushpop(results, (-n_dist, n_row))
                            worst = -results[0][0]
                        else:
                            push(results, (-n_dist, n_row))
                            if len(results) >= ef:
                                full = True
                                worst = -results[0][0]
        ctx.num_distances += num_distances
        return sorted((-d, row) for d, row in results)

    def topk_search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        if k <= 0:
            raise VectorSearchError("k must be positive")
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        if query.shape[0] != self.dim:
            raise VectorSearchError(f"expected dimension {self.dim}, got {query.shape[0]}")
        self._stats.num_searches += 1
        if self._entry_point is None:
            return SearchResult.empty()
        ef = max(ef or self.DEFAULT_EF, k)
        tel = get_telemetry()
        if tel.enabled:
            search_started = time.perf_counter()
        collect = None
        if filter_fn is not None:
            ids = self._ids

            def collect(row: int) -> bool:
                return filter_fn(int(ids[row]))

        # The query context carries this search's distance/hop counters, so
        # concurrent searches never misattribute each other's work (the old
        # code subtracted before/after values of the shared cumulative
        # IndexStats counters, which raced).
        ctx = self._kernel.query(query)
        entry = self._greedy_descend(ctx, self._entry_point, self._max_level, 0)
        found = self._search_layer(ctx, entry, ef, 0, collect_filter=collect)
        top = found[:k]
        self._stats.num_distance_computations += ctx.num_distances
        self._stats.num_hops += ctx.num_hops
        if tel.enabled:
            tel.inc("hnsw.searches")
            tel.observe("hnsw.search_seconds", time.perf_counter() - search_started)
            tel.observe("hnsw.distance_computations", ctx.num_distances)
            tel.observe("hnsw.hops", ctx.num_hops)
            tel.observe("hnsw.ef_expansions", ef)
        if not top:
            return SearchResult.empty()
        dists, rows = zip(*top)
        return SearchResult(
            self._ids[list(rows)],
            self._kernel.to_true(ctx, np.asarray(dists, dtype=np.float32)),
        )

    # -------------------------------------------------- fused multi-query
    def topk_search_multi(
        self,
        queries: np.ndarray,
        k: int,
        ef: int | None = None,
        filter_fn=None,
    ) -> list[SearchResult]:
        """Fused multi-query top-k: lockstep beams over one shared gather.

        Returns exactly ``[topk_search(q, k, ef, fn) for q, fn in
        zip(queries, filters)]`` — each beam's distances are computed on its
        own contiguous slice of the round's stacked row gather, so they are
        bit-identical to a solo search and every heap decision matches.  The
        win is one ``take`` + far fewer interpreter round trips per hop
        round instead of per query.

        ``filter_fn`` may be ``None``, one callable applied to every query,
        or a sequence of per-query callables/``None``.  Unlike
        :meth:`topk_search`, visited marks live in a private per-call bitmask
        (one uint64 lane per beam), so fused searches running on different
        threads never share scratch state.
        """
        if k <= 0:
            raise VectorSearchError("k must be positive")
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries.reshape(1, -1)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise VectorSearchError(
                f"expected queries of dimension {self.dim}, got shape {queries.shape}"
            )
        num_queries = queries.shape[0]
        if num_queries == 0:
            return []
        if filter_fn is None or callable(filter_fn):
            filters = [filter_fn] * num_queries
        else:
            filters = list(filter_fn)
            if len(filters) != num_queries:
                raise VectorSearchError("filter_fn sequence length must match query count")
        self._stats.num_searches += num_queries
        if self._entry_point is None:
            return [SearchResult.empty() for _ in range(num_queries)]
        ef = max(ef or self.DEFAULT_EF, k)
        tel = get_telemetry()
        if tel.enabled:
            search_started = time.perf_counter()
        out: list[SearchResult] = []
        total_distances = 0
        total_hops = 0
        for start in range(0, num_queries, FUSED_CHUNK):
            stop = min(start + FUSED_CHUNK, num_queries)
            mctx = self._kernel.queries(queries[start:stop])
            out.extend(self._fused_chunk(mctx, k, ef, filters[start:stop]))
            for ctx in mctx.contexts:
                total_distances += ctx.num_distances
                total_hops += ctx.num_hops
                if tel.enabled:
                    tel.observe("hnsw.distance_computations", ctx.num_distances)
                    tel.observe("hnsw.hops", ctx.num_hops)
                    tel.observe("hnsw.ef_expansions", ef)
        self._stats.num_distance_computations += total_distances
        self._stats.num_hops += total_hops
        if tel.enabled:
            tel.inc("hnsw.searches", num_queries)
            tel.inc("hnsw.fused_searches", num_queries)
            tel.observe("hnsw.search_seconds", time.perf_counter() - search_started)
        return out

    def _fused_chunk(
        self, mctx: MultiQueryContext, k: int, ef: int, filters: list
    ) -> list[SearchResult]:
        """Run one ≤64-beam lockstep search chunk."""
        kernel = self._kernel
        ids = self._ids
        deleted = self._deleted
        entries = self._greedy_descend_multi(mctx, self._entry_point, self._max_level, 0)
        # Private visited marks: one uint64 lane per beam.
        vmask = np.zeros(self._capacity, dtype=np.uint64)
        beams: list[_Beam] = []
        for qi, ctx in enumerate(mctx.contexts):
            fn = filters[qi]
            if fn is None:
                collect = None
            else:
                def collect(row: int, _fn=fn) -> bool:
                    return _fn(int(ids[row]))
            entry = entries[qi]
            bit = np.uint64(1 << qi)
            vmask[entry] |= bit
            entry_dist = kernel.rank_one(ctx, entry)
            results: list[tuple[float, int]] = []
            if not deleted[entry] and (collect is None or collect(entry)):
                results.append((-entry_dist, entry))
            beams.append(_Beam(ctx, [(entry_dist, entry)], results, bit, collect))
        self._search_layer_multi(beams, ef, vmask)
        out = []
        for beam in beams:
            top = sorted((-d, row) for d, row in beam.results)[:k]
            if not top:
                out.append(SearchResult.empty())
                continue
            dists, rows = zip(*top)
            out.append(SearchResult(
                ids[list(rows)],
                kernel.to_true(beam.ctx, np.asarray(dists, dtype=np.float32)),
            ))
        return out

    def _greedy_descend_multi(
        self, mctx: MultiQueryContext, start_row: int, from_level: int, to_level: int
    ) -> list[int]:
        """Lockstep greedy descend: one stacked gather per improvement round."""
        kernel = self._kernel
        contexts = mctx.contexts
        current = [start_row] * len(contexts)
        cur_dist = [kernel.rank_one(ctx, start_row) for ctx in contexts]
        for level in range(from_level, to_level, -1):
            improved = [True] * len(contexts)
            while True:
                rows_parts: list[np.ndarray] = []
                active: list[int] = []
                for qi, still in enumerate(improved):
                    if not still:
                        continue
                    neighbors = self._neighbors(current[qi], level)
                    if neighbors.size == 0:
                        improved[qi] = False
                        continue
                    rows_parts.append(neighbors)
                    active.append(qi)
                if not active:
                    break
                rows_cat = (
                    np.concatenate(rows_parts) if len(rows_parts) > 1 else rows_parts[0]
                )
                block = kernel.block(rows_cat)
                offset = 0
                for qi, neighbors in zip(active, rows_parts):
                    ctx = contexts[qi]
                    ctx.num_hops += 1
                    size = neighbors.size
                    dists = kernel.rank_from_block(ctx, block[offset : offset + size])
                    offset += size
                    best = int(np.argmin(dists))
                    if dists[best] < cur_dist[qi]:
                        current[qi] = int(neighbors[best])
                        cur_dist[qi] = float(dists[best])
                    else:
                        improved[qi] = False
        return current

    def _search_layer_multi(self, beams: list[_Beam], ef: int, vmask: np.ndarray) -> None:
        """Lockstep layer-0 beam search sharing one stacked gather per round.

        Each round, every live beam pops candidates exactly as
        :meth:`_search_layer` would until it finds a node with unvisited
        neighbours (or finishes); all beams' fresh rows are then gathered in
        one ``take`` and each beam computes distances on its own contiguous
        slice, followed by the same vectorized-admission heap loop.
        """
        aug = self._kernel._aug
        deleted = self._deleted
        links0 = self._links0
        links0_cnt = self._links0_cnt
        dot = np.dot
        push = heapq.heappush
        pop = heapq.heappop
        pushpop = heapq.heappushpop
        live = [beam for beam in beams if not beam.finished]
        while live:
            rows_parts: list[np.ndarray] = []
            active: list[_Beam] = []
            for beam in live:
                candidates = beam.candidates
                results = beam.results
                bit = beam.bit
                fresh = None
                while candidates:
                    dist, row = pop(candidates)
                    if len(results) >= ef and dist > -results[0][0]:
                        beam.finished = True
                        break
                    neighbors = links0[row, : links0_cnt[row]]
                    if neighbors.size:
                        unvisited = neighbors[(vmask.take(neighbors) & bit) == 0]
                    else:
                        unvisited = neighbors
                    if unvisited.size == 0:
                        continue
                    fresh = unvisited
                    break
                else:
                    beam.finished = True
                if beam.finished or fresh is None:
                    continue
                vmask.put(fresh, vmask.take(fresh) | bit)
                beam.pending = fresh
                rows_parts.append(fresh)
                active.append(beam)
            if not active:
                break
            rows_cat = np.concatenate(rows_parts) if len(rows_parts) > 1 else rows_parts[0]
            # One shared gather per round; each beam's gemv runs on its own
            # contiguous slice, bit-identical to the solo `dot(aug.take(fresh),
            # aug_query)` (see rank_from_block).
            block = aug.take(rows_cat, 0)
            offset = 0
            for beam in active:
                fresh = beam.pending
                beam.pending = None
                size = fresh.size
                ctx = beam.ctx
                ctx.num_hops += 1
                ctx.num_distances += size
                dists = dot(block[offset : offset + size], ctx.aug_query)
                offset += size
                candidates = beam.candidates
                results = beam.results
                collect = beam.collect
                # Admission below mirrors _search_layer exactly (same heap ops
                # in the same order) so fused results are bit-identical to solo.
                full = len(results) >= ef
                if full:
                    worst = -results[0][0]
                    admit = dists < worst
                    dist_list = dists[admit].tolist()
                    if not dist_list:
                        continue
                    row_list = fresh[admit].tolist()
                else:
                    worst = np.inf
                    dist_list = dists.tolist()
                    row_list = fresh.tolist()
                for n_dist, n_row in zip(dist_list, row_list):
                    if not full or n_dist < worst:
                        push(candidates, (n_dist, n_row))
                        if not deleted[n_row] and (collect is None or collect(n_row)):
                            if full:
                                pushpop(results, (-n_dist, n_row))
                                worst = -results[0][0]
                            else:
                                push(results, (-n_dist, n_row))
                                if len(results) >= ef:
                                    full = True
                                    worst = -results[0][0]
            live = [beam for beam in live if not beam.finished]

    def range_search(
        self,
        query: np.ndarray,
        threshold: float,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        """Range search via the DiskANN repeated-top-k adaptation (Sec. 4.4)."""
        from .range_search import range_search_via_topk

        return range_search_via_topk(self, query, threshold, ef=ef, filter_fn=filter_fn)

    # -------------------------------------------------------------- insert
    def _select_neighbors(self, candidates: list[tuple[float, int]], M: int) -> list[int]:
        """Heuristic neighbour selection (Algorithm 4 of the HNSW paper).

        Keeps a candidate only if it is closer to the query than to every
        already-selected neighbour, which preserves graph navigability on
        clustered data.
        """
        if len(candidates) <= M:
            return [row for _, row in candidates]
        rows = np.fromiter((row for _, row in candidates), dtype=np.int64, count=len(candidates))
        dists = [d for d, _ in candidates]
        pair = self._pairwise(rows)  # one vectorized call instead of one per check
        n = len(rows)
        # min_to_selected[i] = distance from candidate i to its nearest
        # already-selected neighbour; one vectorized minimum per selection.
        min_to_selected = np.full(n, np.inf)
        selected: list[int] = []  # indexes into `rows`
        for i in range(n):  # candidates arrive sorted ascending
            if len(selected) >= M:
                break
            if min_to_selected[i] < dists[i]:
                continue
            selected.append(i)
            np.minimum(min_to_selected, pair[i], out=min_to_selected)
        # Backfill with nearest remaining if the heuristic was too aggressive.
        if len(selected) < M:
            chosen = set(selected)
            for i in range(n):
                if len(selected) >= M:
                    break
                if i not in chosen:
                    selected.append(i)
                    chosen.add(i)
        return [int(rows[i]) for i in selected]

    def _append_link(self, node: int, level: int, new_row: int) -> None:  # repro: noqa[R001] -- backlink hot path; only reachable from _insert, which holds _write_lock
        """Add a backlink, pruning with the diversity heuristic on overflow."""
        bound = self.M0 if level == 0 else self.M
        if level == 0:
            cnt = int(self._links0_cnt[node])
            if cnt < self._links0_width:
                self._links0[node, cnt] = new_row
                self._links0_cnt[node] = cnt + 1
                return
            links = self._links0[node, :cnt].tolist() + [new_row]
        else:
            layer = self._links_upper[level - 1]
            links = layer.get(node, [])
            if len(links) < bound:
                links.append(new_row)
                layer[node] = links
                return
            links = links + [new_row]
        ctx = self._kernel.query(self._vectors[node])
        dists = self._kernel.distances(ctx, np.asarray(links, dtype=np.int64))
        self._stats.num_distance_computations += ctx.num_distances
        if self.prune_heuristic:
            ranked = sorted(zip(dists.tolist(), links))
            self._set_neighbors(node, level, self._select_neighbors(ranked, bound))
        else:
            keep = np.argpartition(dists, bound - 1)[:bound]
            self._set_neighbors(node, level, [links[i] for i in keep])

    def _insert(self, external_id: int, vector: np.ndarray) -> None:
        schedule_point("hnsw.insert")
        self._write_lock.acquire()  # reentrant under update_items' batch lock
        try:
            self._insert_locked(external_id, vector)
        finally:
            self._write_lock.release()

    def _insert_locked(self, external_id: int, vector: np.ndarray) -> None:  # repro: noqa[R001] -- body of _insert, entered only with _write_lock held
        existing = self._id_to_row.get(external_id)
        if existing is not None:
            # Replacing a vector in place would leave the graph links stale
            # (they were chosen for the old value), so updates tombstone the
            # old row and reinsert fresh — the row stays navigable but can no
            # longer be returned.  This is also why incremental updates cost
            # more than build-time inserts, producing the update-vs-rebuild
            # crossover of the paper's Figure 11.
            self._deleted[existing] = True
            self._stats.num_updates += 1
        row = self._count
        self._grow(row + 1)
        self._vectors[row] = vector
        self._kernel.set_row(row, self._vectors[row])
        self._ids[row] = external_id
        self._id_to_row[external_id] = row
        self._count += 1
        level = int(-np.log(max(self._rng.random(), 1e-12)) * self._ml)
        self._levels.append(level)
        while len(self._links_upper) < level:
            self._links_upper.append({})
        for l in range(1, level + 1):
            self._links_upper[l - 1][row] = []
        self._stats.num_inserts += 1
        self._stats.num_vectors = self._count

        if self._entry_point is None:
            self._entry_point = row
            self._max_level = level
            return

        ctx = self._kernel.query(vector)
        entry = self._entry_point
        if level < self._max_level:
            entry = self._greedy_descend(ctx, entry, self._max_level, level)
        for l in range(min(level, self._max_level), -1, -1):
            found = self._search_layer(ctx, entry, self.ef_construction, l)
            if not found:
                continue
            M = self.M0 if l == 0 else self.M
            # _search_layer returns rank distances (true minus a per-query
            # constant); the selection heuristic compares them against TRUE
            # pairwise distances, so materialize true distances first.
            true_dists = self._kernel.to_true(
                ctx, np.asarray([d for d, _ in found], dtype=np.float32)
            )
            found = [(float(d), row) for d, (_, row) in zip(true_dists, found)]
            neighbors = self._select_neighbors(found, M)
            self._set_neighbors(row, l, neighbors)
            for neighbor in neighbors:
                self._append_link(neighbor, l, row)
            entry = found[0][1]
        if level > self._max_level:
            self._max_level = level
            self._entry_point = row
        self._stats.num_distance_computations += ctx.num_distances
        self._stats.num_hops += ctx.num_hops

    def update_items(self, ids: Sequence[int], vectors: np.ndarray, num_threads: int = 1) -> None:
        """Insert-or-replace a batch (UpdateItems, Sec. 4.4).

        ``num_threads > 1`` partitions the batch into per-thread id subsets
        (each thread keeps its subset in record order, as the paper
        describes); inserts themselves serialize on the write lock because
        the graph structure is shared — in this Python port the win is
        overlap with numpy kernels, not full parallelism.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.shape[1] != self.dim:
            raise VectorSearchError(f"expected dimension {self.dim}, got {vectors.shape[1]}")
        if len(ids) != vectors.shape[0]:
            raise VectorSearchError("ids and vectors length mismatch")
        start = time.perf_counter()
        if num_threads <= 1 or len(ids) < 4:
            with self._write_lock:
                for ext_id, vector in zip(ids, vectors):
                    self._insert(int(ext_id), vector)
        else:
            chunks = np.array_split(np.arange(len(ids)), num_threads)

            def worker(chunk: np.ndarray) -> None:
                for i in chunk:
                    with self._write_lock:
                        self._insert(int(ids[i]), vectors[i])

            threads = [
                threading.Thread(target=worker, args=(chunk,), name=f"hnsw-update-{t}")
                for t, chunk in enumerate(chunks)
                if chunk.size
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        self._stats.build_seconds += time.perf_counter() - start

    def delete_items(self, ids: Sequence[int]) -> None:
        """Soft-delete: rows stay navigable but never surface in results."""
        with self._write_lock:
            for ext_id in ids:
                row = self._id_to_row.get(int(ext_id))
                if row is not None and not self._deleted[row]:
                    self._deleted[row] = True
                    self._stats.num_deleted += 1

    # --------------------------------------------------------------- reads
    def get_embedding(self, external_id: int) -> np.ndarray:
        row = self._id_to_row.get(int(external_id))
        if row is None or self._deleted[row]:
            raise VectorSearchError(f"id {external_id} not in index")
        return self._vectors[row].copy()

    def __contains__(self, external_id: int) -> bool:
        row = self._id_to_row.get(int(external_id))
        return row is not None and not self._deleted[row]

    def __len__(self) -> int:
        return self._count - int(np.count_nonzero(self._deleted[: self._count]))

    @property
    def stats(self) -> IndexStats:
        self._stats.num_vectors = self._count
        return self._stats

    # --------------------------------------------------------- persistence
    def __getstate__(self) -> dict:
        # Deep-copy every mutable structure *under the write lock*: pickle
        # serializes the returned state only after this method exits, so
        # handing out live array references would let a concurrent
        # update_items tear the snapshot mid-dump.
        with self._write_lock:
            state = self.__dict__.copy()
            del state["_write_lock"]  # locks are not picklable; recreate on load
            del state["_scratch_lock"]
            del state["_kernel"]  # rebound to the copied matrix in __setstate__
            for name in ("_vectors", "_ids", "_deleted", "_links0", "_links0_cnt"):
                state[name] = state[name].copy()
            state["_levels"] = list(self._levels)
            state["_links_upper"] = [
                {node: list(nbrs) for node, nbrs in layer.items()}
                for layer in self._links_upper
            ]
            state["_id_to_row"] = dict(self._id_to_row)
            state["_stats"] = IndexStats(**self._stats.snapshot())
            state["_rng"] = copy.deepcopy(self._rng)
            # Searches stamp visited marks without the write lock; ship an
            # empty scratch pool instead of potentially checked-out entries.
            state["_visited_pool"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        # Drop legacy shared-scratch fields from pre-pool pickles.
        state.pop("_visited", None)
        state.pop("_visit_generation", None)
        self.__dict__.update(state)
        self._write_lock = threading.RLock()
        self._scratch_lock = threading.Lock()
        self._visited_pool = []
        kernel = DistanceKernel(self.metric, self._vectors, precompute=False)
        if self._count:
            kernel.set_rows(slice(0, self._count), self._vectors[: self._count])
        self._kernel = kernel

    def save(self, path) -> None:
        """Persist the index snapshot (vectors + graph) to one file.

        The payload is deep-copied under ``_write_lock`` (concurrent
        ``update_items`` cannot tear it), then pickled outside the lock so
        file I/O never blocks writers.
        """
        path = Path(path)
        schedule_point("hnsw.save")
        with self._write_lock:
            count = self._count
            payload = {
                "format_version": FORMAT_VERSION,
                "dim": self.dim,
                "metric": self.metric.value,
                "M": self.M,
                "ef_construction": self.ef_construction,
                "prune_heuristic": self.prune_heuristic,
                "count": count,
                "vectors": self._vectors[:count].copy(),
                "ids": self._ids[:count].copy(),
                "levels": list(self._levels),
                "links0": self._links0[:count].copy(),
                "links0_cnt": self._links0_cnt[:count].copy(),
                "links_upper": [
                    {node: list(nbrs) for node, nbrs in layer.items()}
                    for layer in self._links_upper
                ],
                "deleted": self._deleted[:count].copy(),
                "entry_point": self._entry_point,
                "max_level": self._max_level,
            }
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "HNSWIndex":
        """Load a saved index, validating format and structure.

        A corrupt, truncated, or incompatible file raises
        :class:`~repro.errors.IndexPersistenceError` (never a raw pickle /
        key / attribute error); the caller should rebuild from the
        segment's vectors instead of trusting the snapshot.
        """
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except OSError:
            raise
        except Exception as exc:  # pickle raises many unrelated types
            raise IndexPersistenceError(
                f"cannot read index snapshot '{path}': {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise IndexPersistenceError(
                f"index snapshot '{path}' is not a payload dict "
                f"(got {type(payload).__name__})"
            )
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise IndexPersistenceError(
                f"index snapshot '{path}' has format version {version!r}, "
                f"this build reads version {FORMAT_VERSION}; rebuild the "
                f"index (vacuum index_merge) instead of loading it"
            )
        required = (
            "dim", "metric", "M", "ef_construction", "count", "vectors",
            "ids", "levels", "links0", "links0_cnt", "links_upper",
            "deleted", "entry_point", "max_level",
        )
        missing = [key for key in required if key not in payload]
        if missing:
            raise IndexPersistenceError(
                f"index snapshot '{path}' is missing fields: {', '.join(missing)}"
            )
        try:
            metric = Metric(payload["metric"])
        except ValueError as exc:
            raise IndexPersistenceError(
                f"index snapshot '{path}' has unknown metric "
                f"{payload['metric']!r}"
            ) from exc
        dim = int(payload["dim"])
        count = int(payload["count"])
        if dim <= 0 or count < 0:
            raise IndexPersistenceError(
                f"index snapshot '{path}' has invalid dim/count ({dim}, {count})"
            )
        vectors = np.asarray(payload["vectors"])
        if vectors.shape != (count, dim):
            raise IndexPersistenceError(
                f"index snapshot '{path}': vector matrix shape "
                f"{vectors.shape} disagrees with recorded (count, dim) "
                f"({count}, {dim})"
            )
        for name in ("ids", "links0", "links0_cnt", "deleted"):
            rows = np.asarray(payload[name]).shape[0]
            if rows != count:
                raise IndexPersistenceError(
                    f"index snapshot '{path}': '{name}' has {rows} rows, "
                    f"expected {count}"
                )
        if len(payload["levels"]) != count:
            raise IndexPersistenceError(
                f"index snapshot '{path}': 'levels' has "
                f"{len(payload['levels'])} entries, expected {count}"
            )
        entry_point = payload["entry_point"]
        if entry_point is not None and not 0 <= int(entry_point) < max(count, 1):
            raise IndexPersistenceError(
                f"index snapshot '{path}': entry point {entry_point} is out "
                f"of range for {count} vectors"
            )
        index = cls(
            dim=dim,
            metric=metric,
            M=payload["M"],
            ef_construction=payload["ef_construction"],
            prune_heuristic=payload.get("prune_heuristic", True),
        )
        index._grow(max(count, 1))
        index._count = count
        index._vectors[:count] = payload["vectors"]
        if count:
            index._kernel.set_rows(slice(0, count), index._vectors[:count])
        index._ids[:count] = payload["ids"]
        index._deleted[:count] = payload["deleted"]
        index._levels = list(payload["levels"])
        index._links0[:count] = payload["links0"]
        index._links0_cnt[:count] = payload["links0_cnt"]
        index._links_upper = [dict(layer) for layer in payload["links_upper"]]
        index._id_to_row = {int(index._ids[row]): row for row in range(count)}
        index._entry_point = payload["entry_point"]
        index._max_level = payload["max_level"]
        index._stats.num_vectors = count
        return index
