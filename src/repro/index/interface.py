"""The generic vector-index interface (paper Sec. 4.4).

TigerVector integrates vector indexes behind four generic functions:
``GetEmbedding``, ``TopKSearch``, ``RangeSearch``, and ``UpdateItems``;
implementing these is all a new index needs.  We mirror that contract in
:class:`VectorIndex` (snake_case), add deletion and statistics reporting
(the paper enhances its indexes to report stats), and provide
:func:`create_index` as the factory the embedding service uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import VectorSearchError
from ..types import IndexType, Metric

__all__ = ["IndexStats", "SearchResult", "VectorIndex", "create_index"]


@dataclass
class SearchResult:
    """Top-k (or range) search output: parallel id/distance arrays, best first."""

    ids: np.ndarray  # int64 external ids
    distances: np.ndarray  # float32

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.distances = np.asarray(self.distances, dtype=np.float32)

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def __iter__(self):
        return iter(zip(self.ids.tolist(), self.distances.tolist()))

    @classmethod
    def empty(cls) -> "SearchResult":
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32))

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "SearchResult":
        pairs = sorted(pairs, key=lambda p: p[1])
        if not pairs:
            return cls.empty()
        ids, dists = zip(*pairs)
        return cls(np.asarray(ids), np.asarray(dists))

    def truncated(self, k: int) -> "SearchResult":
        return SearchResult(self.ids[:k], self.distances[:k])


@dataclass
class IndexStats:
    """Counters the index reports for performance measurement (Sec. 4.4)."""

    num_vectors: int = 0
    num_deleted: int = 0
    num_searches: int = 0
    num_distance_computations: int = 0
    num_hops: int = 0
    num_inserts: int = 0
    num_updates: int = 0
    build_seconds: float = 0.0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class VectorIndex:
    """Abstract base: the four generic functions plus deletion and stats."""

    metric: Metric
    dim: int

    # -- GetEmbedding ---------------------------------------------------
    def get_embedding(self, external_id: int) -> np.ndarray:
        raise NotImplementedError

    def __contains__(self, external_id: int) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- TopKSearch ------------------------------------------------------
    def topk_search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        """Return up to ``k`` valid nearest neighbours, best first.

        ``filter_fn(external_id)`` excludes ids from results while still
        allowing graph traversal through them, exactly like the bitmap filter
        TigerVector passes to HNSW.
        """
        raise NotImplementedError

    # -- RangeSearch -----------------------------------------------------
    def range_search(
        self,
        query: np.ndarray,
        threshold: float,
        ef: int | None = None,
        filter_fn: Callable[[int], bool] | None = None,
    ) -> SearchResult:
        raise NotImplementedError

    # -- UpdateItems -----------------------------------------------------
    def update_items(
        self,
        ids: Sequence[int],
        vectors: np.ndarray,
        num_threads: int = 1,
    ) -> None:
        """Insert-or-replace vectors; the incremental vacuum path (Sec. 4.3)."""
        raise NotImplementedError

    def delete_items(self, ids: Sequence[int]) -> None:
        raise NotImplementedError

    # -- stats -----------------------------------------------------------
    @property
    def stats(self) -> IndexStats:
        raise NotImplementedError


def create_index(
    index_type: IndexType,
    dim: int,
    metric: Metric,
    index_params: dict | None = None,
) -> VectorIndex:
    """Factory used by embedding segments to build their per-segment index."""
    from .bruteforce import BruteForceIndex
    from .hnsw import HNSWIndex
    from .ivf import IVFFlatIndex
    from .sq8 import SQ8FlatIndex

    params = dict(index_params or {})
    if index_type is IndexType.HNSW:
        return HNSWIndex(
            dim=dim,
            metric=metric,
            M=params.get("M", 16),
            ef_construction=params.get("ef_construction", 128),
            seed=params.get("seed", 100),
        )
    if index_type is IndexType.FLAT:
        return BruteForceIndex(dim=dim, metric=metric)
    if index_type is IndexType.IVF_FLAT:
        return IVFFlatIndex(
            dim=dim,
            metric=metric,
            nlist=params.get("nlist", 64),
            nprobe=params.get("nprobe", 8),
            seed=params.get("seed", 17),
        )
    if index_type is IndexType.SQ8:
        return SQ8FlatIndex(dim=dim, metric=metric)
    if index_type is IndexType.IVF_PQ:
        from .pq import IVFPQIndex

        return IVFPQIndex(
            dim=dim,
            metric=metric,
            nlist=params.get("nlist", 64),
            nprobe=params.get("nprobe", 8),
            m=params.get("m", min(8, dim)),
            train_iterations=params.get("train_iterations", 10),
            seed=params.get("seed", 17),
            refine=params.get("refine", True),
            rerank_factor=params.get("rerank_factor", 4),
        )
    raise VectorSearchError(f"unsupported index type: {index_type}")
