"""Validity bitmaps used as vector-search filters (paper Sec. 5.1–5.2).

TigerVector passes a filter function backed by a bitmap into the vector
index: deleted and unauthorized vertices are invalid, and pre-filter queries
additionally restrict to predicate-qualified vertices.  A key optimization in
the paper is *reusing* the engine's global vertex-status structure for pure
vector searches instead of materializing a fresh bitmap; :class:`Bitmap`
supports that by wrapping an existing boolean mask without copying.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

__all__ = ["Bitmap"]


class Bitmap:
    """A boolean validity mask over local segment offsets.

    ``Bitmap.wrap(mask)`` shares the underlying array (the status-structure
    reuse optimization); ``Bitmap.from_offsets`` materializes a new one (the
    pre-filter path).  Intersection composes the two.
    """

    __slots__ = ("mask", "_count")

    def __init__(self, mask: np.ndarray, copy: bool = True):
        arr = np.asarray(mask, dtype=bool)
        self.mask = arr.copy() if copy else arr
        self._count: int | None = None

    # ------------------------------------------------------------ builders
    @classmethod
    def wrap(cls, mask: np.ndarray) -> "Bitmap":
        """Wrap an existing status mask without copying (Sec. 5.1 reuse)."""
        return cls(mask, copy=False)

    @classmethod
    def full(cls, size: int) -> "Bitmap":
        return cls(np.ones(size, dtype=bool), copy=False)

    @classmethod
    def empty(cls, size: int) -> "Bitmap":
        return cls(np.zeros(size, dtype=bool), copy=False)

    @classmethod
    def from_offsets(cls, size: int, offsets: Iterable[int]) -> "Bitmap":
        mask = np.zeros(size, dtype=bool)
        for off in offsets:
            mask[off] = True
        return cls(mask, copy=False)

    # ------------------------------------------------------------ operations
    def intersect(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self.mask & other.mask, copy=False)

    def union(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self.mask | other.mask, copy=False)

    def count(self) -> int:
        """Number of valid entries (cached; drives the brute-force threshold)."""
        if self._count is None:
            self._count = int(np.count_nonzero(self.mask))
        return self._count

    def is_valid(self, offset: int) -> bool:
        return offset < self.mask.shape[0] and bool(self.mask[offset])

    def as_filter(self) -> Callable[[int], bool]:
        """The filter function handed to the vector index."""
        mask = self.mask
        size = mask.shape[0]

        def fn(offset: int) -> bool:
            return offset < size and bool(mask[offset])

        return fn

    def valid_offsets(self) -> np.ndarray:
        return np.flatnonzero(self.mask)

    def __len__(self) -> int:
        return int(self.mask.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bitmap(valid={self.count()}/{len(self)})"
