"""Vector indexes: the HNSW implementation and supporting machinery.

The paper wires an open-source HNSW library into TigerVector behind four
generic functions — GetEmbedding, TopKSearch, RangeSearch, UpdateItems
(Sec. 4.4).  faiss/hnswlib are unavailable offline, so :mod:`repro.index.hnsw`
implements HNSW from scratch on numpy kernels; :mod:`repro.index.bruteforce`
provides the FLAT fallback used below the valid-point threshold; and
:mod:`repro.index.range_search` adapts the DiskANN repeated-top-k approach
for range queries, since HNSW has no native range search.
"""

from .bitmap import Bitmap
from .bruteforce import BruteForceIndex
from .hnsw import HNSWIndex
from .ivf import IVFFlatIndex, kmeans
from .pq import IVFPQIndex, PQCodebook, PQCodes, PQKernel, PQSearchConfig
from .sq8 import SQ8FlatIndex
from .interface import IndexStats, SearchResult, VectorIndex, create_index
from .range_search import range_search_via_topk

__all__ = [
    "Bitmap",
    "BruteForceIndex",
    "HNSWIndex",
    "IVFFlatIndex",
    "IVFPQIndex",
    "PQCodebook",
    "PQCodes",
    "PQKernel",
    "PQSearchConfig",
    "SQ8FlatIndex",
    "kmeans",
    "IndexStats",
    "SearchResult",
    "VectorIndex",
    "create_index",
    "range_search_via_topk",
]
